#!/usr/bin/env python
"""Calibration driver: prints the Fig. 3 / Fig. 4 shapes for tuning.

Not a benchmark -- a development tool used to check that the simulated
cluster reproduces the paper's qualitative results (see DESIGN.md §4)
while tuning parameters.  Run directly::

    python scripts/calibrate.py [--quick]
"""

import argparse
import time

from repro.analysis import Table
from repro.fs import ClusterConfig, RedbudCluster, build_cluster
from repro.workloads import (
    FileserverWorkload,
    NpbBtIoWorkload,
    VarmailWorkload,
    WebproxyWorkload,
    XcdnWorkload,
)


def workloads(quick):
    scale = 0.5 if quick else 1.0
    return {
        "fileserver": lambda: FileserverWorkload(
            seed_files_per_client=int(20 * scale) or 10
        ),
        "varmail": lambda: VarmailWorkload(
            seed_files_per_client=int(20 * scale) or 10
        ),
        "webproxy": lambda: WebproxyWorkload(
            seed_files_per_client=int(30 * scale) or 10
        ),
        "xcdn-32K": lambda: XcdnWorkload(
            file_size=32 * 1024, seed_files_per_client=int(40 * scale) or 10
        ),
        "xcdn-1M": lambda: XcdnWorkload(
            file_size=1024 * 1024,
            seed_files_per_client=int(15 * scale) or 5,
        ),
        "npb-bt": lambda: NpbBtIoWorkload(),
    }


def fig3(quick=False, num_clients=7, duration=3.0):
    systems = ["pvfs2", "nfs3", "redbud-original", "redbud-delayed"]
    table = Table(
        ["workload"] + systems + ["delayed/original"],
        title="Fig. 3 shape: ops/s (normalised to original Redbud)",
    )
    for wl_name, make in workloads(quick).items():
        row = [wl_name]
        results = {}
        for system in systems:
            t0 = time.time()
            cluster = build_cluster(system, num_clients=num_clients, seed=11)
            res = cluster.run_workload(make(), duration=duration, warmup=0.3)
            results[system] = res
            lat = " ".join(
                f"{op}={res.latency(op).mean * 1000:.2f}ms"
                for op in res.metrics.op_types()
            )
            util = res.extras.get("array_utilization", "")
            util = f" util={util:.2f}" if util != "" else ""
            print(
                f"  [{wl_name}/{system}] ops/s={res.ops_per_second:9.1f} "
                f"wall={time.time() - t0:5.1f}s{util}\n      {lat}"
            )
        # NPB issues different op granularities per system (strided vs
        # collective), so normalise it by data throughput instead.
        metric = (
            (lambda r: r.bytes_per_second)
            if wl_name.startswith("npb")
            else (lambda r: r.ops_per_second)
        )
        base = metric(results["redbud-original"]) or 1.0
        for system in systems:
            row.append(metric(results[system]) / base)
        row.append(metric(results["redbud-delayed"]) / base)
        table.add_row(*row)
    table.print()


def fig4(num_clients=7, duration=3.0):
    configs = {
        "original": ClusterConfig.original_redbud,
        "delayed": ClusterConfig.delayed_commit,
        "delegation": ClusterConfig.space_delegation_config,
    }
    table = Table(
        ["file size", "original", "delayed", "delegation", "deleg/delayed"],
        title="Fig. 4 shape: I/O merge ratio",
    )
    for size in (32 * 1024, 64 * 1024, 1024 * 1024):
        row = [f"{size // 1024}KB"]
        ratios = {}
        for name, factory in configs.items():
            cluster = RedbudCluster(factory(num_clients=num_clients), seed=11)
            wl = XcdnWorkload(file_size=size, seed_files_per_client=20)
            res = cluster.run_workload(wl, duration=duration, warmup=0.3)
            ratios[name] = res.extras["merge_ratio"]
        for name in configs:
            row.append(ratios[name])
        row.append(
            ratios["delegation"] / ratios["delayed"]
            if ratios["delayed"] > 0
            else 0.0
        )
        table.add_row(*row)
    table.print()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--fig", choices=["3", "4", "all"], default="all")
    args = parser.parse_args()
    if args.fig in ("3", "all"):
        fig3(quick=args.quick)
    if args.fig in ("4", "all"):
        fig4()
