"""Kernel primitives on the asyncio substrate.

The same generator processes, stores, timeouts and conditions that run
on the virtual calendar must run unmodified on a real event loop via
:class:`repro.rt.AsyncioEffects` -- that is the substrate contract of
DESIGN §16.  Times here are real seconds, so delays are kept tiny.
"""

import asyncio

import pytest

from repro.core.effects import Effects
from repro.core.kernel.events import Event
from repro.core.kernel.resources import Store
from repro.rt.effects import AsyncioEffects


def _run(coro):
    return asyncio.run(coro)


def test_is_an_effects_substrate():
    async def main():
        env = AsyncioEffects()
        assert isinstance(env, Effects)
        assert env.loop is asyncio.get_running_loop()
        return env.now

    start = _run(main())
    assert 0.0 <= start < 1.0


def test_process_timeout_and_now():
    async def main():
        env = AsyncioEffects()
        marks = []

        def proc():
            t0 = env.now
            yield env.timeout(0.01)
            marks.append(env.now - t0)
            yield env.sleep(0.01)
            marks.append(env.now - t0)
            return "done"

        result = await env.wait(env.process(proc()))
        return result, marks

    result, marks = _run(main())
    assert result == "done"
    assert marks[0] >= 0.01
    assert marks[1] >= 0.02


def test_store_producer_consumer():
    async def main():
        env = AsyncioEffects()
        store = Store(env)
        got = []

        def producer():
            for i in range(5):
                yield env.timeout(0.001)
                store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        p = env.process(producer())
        c = env.process(consumer())
        await env.wait(env.all_of([p, c]))
        return got

    assert _run(main()) == [0, 1, 2, 3, 4]


def test_any_of_reply_beats_timer_and_cancel_tombstones():
    """The rpc retry race on a real loop: the winning event's value
    comes back, and cancelling the losing timer leaves only a no-op
    tombstone for its already-armed loop timer."""

    async def main():
        env = AsyncioEffects()
        reply = Event(env)

        def responder():
            yield env.timeout(0.005)
            reply.succeed("pong")

        def caller():
            timer = env.timeout(5.0)
            yield env.any_of([reply, timer])
            assert reply.triggered
            timer.cancel()
            return reply.value

        env.process(responder())
        result = await env.wait(env.process(caller()))
        env.check_failures()
        return result

    assert _run(main()) == "pong"


def test_spawn_and_all_of():
    async def main():
        env = AsyncioEffects()

        def worker(k):
            yield env.timeout(0.001 * k)
            return k * k

        procs = [env.spawn(worker(k)) for k in range(1, 4)]
        await env.wait(env.all_of(procs))
        return [p.value for p in procs]

    assert _run(main()) == [1, 4, 9]


def test_future_bridges_both_ways():
    async def main():
        env = AsyncioEffects()

        # asyncio -> kernel: a future's result completes a kernel event.
        future = asyncio.get_running_loop().create_future()
        event = env.event_from_future(future)
        future.set_result(42)
        await asyncio.sleep(0)
        assert event.triggered and event.value == 42

        # kernel -> asyncio: awaiting an already-processed event works.
        done = env.timeout(0.0, value="early")
        await asyncio.sleep(0.005)
        return await env.wait(done)

    assert _run(main()) == "early"


def test_process_failure_propagates_through_wait():
    async def main():
        env = AsyncioEffects()

        def boom():
            yield env.timeout(0.001)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            await env.wait(env.process(boom()))
        # The awaiter consumed (defused) the failure; nothing unhandled.
        env.check_failures()

    _run(main())


def test_unhandled_failure_is_recorded():
    async def main():
        env = AsyncioEffects()
        loop = asyncio.get_running_loop()
        # Keep the default handler from printing during the test.
        loop.set_exception_handler(lambda _loop, _ctx: None)

        def boom():
            yield env.timeout(0.001)
            raise ValueError("nobody listening")

        env.process(boom())
        await asyncio.sleep(0.01)
        assert len(env.failures) == 1
        with pytest.raises(ValueError, match="nobody listening"):
            env.check_failures()

    _run(main())


def test_rng_and_obs_default_to_none():
    async def main():
        env = AsyncioEffects()
        assert env.obs is None
        assert env.rng is None

    _run(main())
