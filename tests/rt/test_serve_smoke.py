"""End-to-end: live 2-shard cluster over real sockets, audited on disk.

Boots ``repro serve`` as a subprocess (one child process per shard),
drives the unmodified delayed-commit client stack against it with
:func:`repro.rt.smoke.run_smoke`, and asserts the full oracle subset
passes on the shards' persisted state.  Also unit-tests the oracles
against fabricated bad dumps so a green smoke run means the checks can
actually fail.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

from repro.rt.smoke import SmokeConfig, run_oracles, run_smoke

VOLUME_SIZE = 8 * 1024 * 1024


def _start_cluster(data_dir, shards=2, drop_every=5):
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src"
    )
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--shards",
            str(shards),
            "--data-dir",
            data_dir,
            "--volume-size",
            str(VOLUME_SIZE),
            "--drop-every",
            str(drop_every),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    cluster_file = os.path.join(data_dir, "cluster.json")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise AssertionError(
                f"repro serve exited early ({proc.returncode}):\n{out}"
            )
        if os.path.exists(cluster_file):
            with open(cluster_file) as handle:
                return proc, json.load(handle)
        time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    raise AssertionError("cluster.json never appeared")


def test_live_two_shard_cluster_passes_oracles(tmp_path):
    data_dir = str(tmp_path)
    proc, cluster = _start_cluster(data_dir)
    try:
        assert cluster["shards"] == 2
        assert len(cluster["addresses"]) == 2
        config = SmokeConfig(
            addresses=[tuple(a) for a in cluster["addresses"]],
            data_dir=data_dir,
            shards=cluster["shards"],
            volume_size=cluster["volume_size"],
            clients=2,
            files_per_client=3,
            file_size=8 * 1024,
            timeout=60.0,
        )
        report = asyncio.run(run_smoke(config))
    finally:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)

    assert report["ok"], json.dumps(report["oracles"], indent=2)
    # 2 clients x 3 files, every 4th unlinked (index 3) -- none here.
    assert report["files_persisted"] == 6
    assert report["files_expected"] == 6
    assert report["committed_bytes"] > 0
    # The --drop-every faults forced real retransmissions through the
    # client retry machinery, and exactly-once still held.
    total_dropped = sum(
        s.get("requests_dropped", 0) for s in report["shard_stats"]
    )
    total_retries = sum(
        c["rpc_retries"] for c in report["client_stats"]
    )
    assert total_dropped > 0
    assert total_retries >= total_dropped
    # serve exited cleanly after the ctl shutdown.
    assert proc.returncode == 0
    # Both shards persisted dumps.
    for shard in range(2):
        assert os.path.exists(
            os.path.join(data_dir, f"shard-{shard}.json")
        )


def _config(tmp_path):
    return SmokeConfig(
        addresses=[("127.0.0.1", 0), ("127.0.0.1", 0)],
        data_dir=str(tmp_path),
        shards=2,
        volume_size=VOLUME_SIZE,
    )


def _dump(shard, shards=2, files=(), counts=()):
    slice_size = VOLUME_SIZE // shards
    return {
        "shard": shard,
        "shards": shards,
        "volume_size": VOLUME_SIZE,
        "slice_size": slice_size,
        "base_offset": shard * slice_size,
        "files": list(files),
        "commit_apply_counts": list(counts),
        "oplog_len": 0,
        "uncommitted": {},
        "stats": {},
    }


def _file(file_id, extents, size=None, name=None):
    return {
        "file_id": file_id,
        "name": name or f"f{file_id}",
        "ctime": 0.0,
        "mtime": 0.0,
        "size": size if size is not None else sum(e[1] for e in extents),
        "extents": extents,
    }


def _write_volume(tmp_path, spans):
    path = os.path.join(str(tmp_path), "volume.img")
    with open(path, "wb") as handle:
        handle.truncate(VOLUME_SIZE)
        for offset, length, byte in spans:
            handle.seek(offset)
            handle.write(bytes([byte]) * length)
    return path


def test_oracles_flag_double_applied_commit(tmp_path):
    _write_volume(tmp_path, [])
    report = run_oracles(
        [_dump(0, counts=[[1, 7, 2]]), _dump(1)],
        os.path.join(str(tmp_path), "volume.img"),
        {},
        _config(tmp_path),
    )
    assert not report["ok"]
    assert "applied 2 times" in report["oracles"]["exactly_once"][0]


def test_oracles_flag_overlapping_extents(tmp_path):
    from repro.rt.disk import pattern_byte

    # Two files on shard 0 (ids 1 and 3) claiming the same volume range.
    ext = [0, 4096, 0, 0, "committed"]
    _write_volume(
        tmp_path,
        [(0, 4096, pattern_byte(1)), (0, 4096, pattern_byte(3))],
    )
    report = run_oracles(
        [
            _dump(0, files=[_file(1, [ext]), _file(3, [list(ext)])]),
            _dump(1),
        ],
        os.path.join(str(tmp_path), "volume.img"),
        {1: 4096, 3: 4096},
        _config(tmp_path),
    )
    assert not report["ok"]
    assert report["oracles"]["disjointness"]
    # The overlap also breaks the allocator rebuild.
    assert report["oracles"]["fsck"]


def test_oracles_flag_foreign_shard_file(tmp_path):
    _write_volume(tmp_path, [])
    # file_id 2 belongs to shard 1's residue class, persisted by shard 0.
    report = run_oracles(
        [_dump(0, files=[_file(2, [])]), _dump(1)],
        os.path.join(str(tmp_path), "volume.img"),
        {2: 0},
        _config(tmp_path),
    )
    assert not report["ok"]
    assert report["oracles"]["shard_ownership"]


def test_oracles_flag_extent_escaping_slice(tmp_path):
    from repro.rt.disk import pattern_byte

    slice_size = VOLUME_SIZE // 2
    # Shard 0 file with an extent inside shard 1's slice.
    ext = [0, 4096, 0, slice_size + 8192, "committed"]
    _write_volume(tmp_path, [(slice_size + 8192, 4096, pattern_byte(1))])
    report = run_oracles(
        [_dump(0, files=[_file(1, [ext])]), _dump(1)],
        os.path.join(str(tmp_path), "volume.img"),
        {1: 4096},
        _config(tmp_path),
    )
    assert not report["ok"]
    assert any(
        "escapes" in v for v in report["oracles"]["shard_ownership"]
    )


def test_oracles_flag_wrong_bytes_on_disk(tmp_path):
    from repro.rt.disk import pattern_byte

    ext = [0, 4096, 0, 0, "committed"]
    # Volume holds the wrong pattern byte for file 1.
    _write_volume(tmp_path, [(0, 4096, pattern_byte(1) ^ 0xFF)])
    report = run_oracles(
        [_dump(0, files=[_file(1, [ext])]), _dump(1)],
        os.path.join(str(tmp_path), "volume.img"),
        {1: 4096},
        _config(tmp_path),
    )
    assert not report["ok"]
    assert report["oracles"]["data_pattern"]


def test_oracles_flag_missing_and_size_mismatched_files(tmp_path):
    from repro.rt.disk import pattern_byte

    ext = [0, 4096, 0, 0, "committed"]
    _write_volume(tmp_path, [(0, 4096, pattern_byte(1))])
    report = run_oracles(
        [_dump(0, files=[_file(1, [ext], size=4096)]), _dump(1)],
        os.path.join(str(tmp_path), "volume.img"),
        {1: 8192, 2: 4096},
        _config(tmp_path),
    )
    assert not report["ok"]
    issues = report["oracles"]["expectations"]
    assert any("persisted size" in v for v in issues)
    assert any("absent" in v for v in issues)


def test_oracles_pass_on_consistent_state(tmp_path):
    from repro.rt.disk import pattern_byte

    slice_size = VOLUME_SIZE // 2
    a = [0, 4096, 0, 0, "committed"]
    b = [0, 4096, 0, slice_size, "committed"]
    _write_volume(
        tmp_path,
        [(0, 4096, pattern_byte(1)), (slice_size, 4096, pattern_byte(2))],
    )
    report = run_oracles(
        [
            _dump(0, files=[_file(1, [a])], counts=[[1, 1, 1]]),
            _dump(1, files=[_file(2, [b])], counts=[[1, 2, 1]]),
        ],
        os.path.join(str(tmp_path), "volume.img"),
        {1: 4096, 2: 4096},
        _config(tmp_path),
    )
    assert report["ok"], json.dumps(report["oracles"], indent=2)
    assert report["violations"] == 0
    assert report["committed_bytes"] == 8192
