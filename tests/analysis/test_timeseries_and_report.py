"""Tests for time series, pool summaries, merge-ratio pooling, tables."""

import pytest

from repro.analysis.mergeratio import aggregate_merge_ratio, write_merge_ratio
from repro.analysis.report import Table
from repro.analysis.timeseries import TimeSeries, summarize_pool_samples
from repro.sim import Environment
from repro.storage.scheduler import ElevatorScheduler


# -- TimeSeries -----------------------------------------------------------


def test_timeseries_basics():
    ts = TimeSeries([(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
    assert len(ts) == 3
    assert ts.mean() == 2.0
    assert ts.max() == 3.0
    assert ts.min() == 1.0
    assert list(ts.times) == [0.0, 1.0, 2.0]


def test_timeseries_requires_ordered_times():
    ts = TimeSeries([(1.0, 5.0)])
    with pytest.raises(ValueError):
        ts.append(0.5, 1.0)


def test_timeseries_fraction_at():
    ts = TimeSeries([(0, 9), (1, 9), (2, 3), (3, 9)])
    assert ts.fraction_at(9) == 0.75


def test_timeseries_bucketed():
    ts = TimeSeries([(0.0, 2.0), (0.5, 4.0), (1.2, 10.0)])
    buckets = ts.bucketed(1.0)
    assert buckets[0] == (0.0, 3.0)
    assert buckets[1] == (1.0, 10.0)


def test_empty_timeseries():
    ts = TimeSeries()
    assert ts.mean() == 0.0
    assert ts.bucketed(1.0) == []
    assert ts.fraction_at(1) == 0.0


# -- pool summaries -----------------------------------------------------------


def test_pool_summary_tracks_correlation():
    samples = [(t * 0.1, 1 + t // 10, 10 * (1 + t // 10)) for t in range(100)]
    summary = summarize_pool_samples(samples, max_threads=9)
    assert summary.samples == 100
    assert summary.thread_queue_correlation > 0.9
    assert summary.max_threads == 10
    assert summary.mean_queue > 0


def test_pool_summary_empty():
    summary = summarize_pool_samples([], max_threads=9)
    assert summary.samples == 0
    assert summary.thread_queue_correlation == 0.0


def test_pool_summary_fraction_at_max():
    samples = [(0.0, 9, 100), (0.1, 9, 100), (0.2, 1, 0), (0.3, 9, 100)]
    summary = summarize_pool_samples(samples, max_threads=9)
    assert summary.fraction_at_max_threads == 0.75


# -- merge-ratio pooling -----------------------------------------------------------


def test_aggregate_merge_ratio_pools_counters():
    env = Environment()
    s1 = ElevatorScheduler(env, 0)
    s2 = ElevatorScheduler(env, 1)
    s1.stats.submitted, s1.stats.dispatched = 10, 5
    s1.stats.dispatched_submissions = 10
    s2.stats.submitted, s2.stats.dispatched = 6, 3
    s2.stats.dispatched_submissions = 6
    total = aggregate_merge_ratio([s1, s2])
    assert total.submitted == 16
    assert total.dispatched == 8
    assert total.dispatched_submissions == 16
    assert total.merge_ratio == 2.0
    assert write_merge_ratio([s1, s2]) == 2.0


# -- tables -----------------------------------------------------------


def test_table_renders_fixed_width():
    t = Table(["name", "value"], title="demo")
    t.add_row("alpha", 1.5)
    t.add_row("b", 42)
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in lines[3]
    assert "1.50" in lines[3]
    assert "42" in lines[4]


def test_table_cell_count_enforced():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_table_small_floats_scientific():
    t = Table(["x"])
    t.add_row(0.0000123)
    assert "e-" in t.render()
