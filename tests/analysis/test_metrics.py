"""Tests for metric accumulation and latency statistics."""

import pytest

from repro.analysis.metrics import LatencyStats, OpMetrics


def test_empty_metrics():
    m = OpMetrics()
    assert m.total_ops == 0
    assert m.total_bytes == 0
    assert m.elapsed() == 0.0
    assert m.ops_per_second() == 0.0
    assert m.latency().count == 0


def test_record_and_aggregate():
    m = OpMetrics()
    m.record("write", 0.01, 4096, now=1.0)
    m.record("write", 0.03, 4096, now=2.0)
    m.record("read", 0.02, 8192, now=3.0)
    assert m.total_ops == 3
    assert m.count("write") == 2
    assert m.count("read") == 1
    assert m.bytes_for("write") == 8192
    assert m.total_bytes == 16384
    assert m.op_types() == ["read", "write"]
    assert m.latency("write").mean == pytest.approx(0.02)
    assert m.latency().count == 3


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        OpMetrics().record("x", -0.1)


def test_throughput_with_explicit_duration():
    m = OpMetrics()
    for i in range(10):
        m.record("op", 0.001, 100, now=float(i))
    assert m.ops_per_second(duration=5.0) == 2.0
    assert m.bytes_per_second(duration=5.0) == 200.0


def test_merge_from_combines():
    a, b = OpMetrics(), OpMetrics()
    a.record("write", 0.01, 1, now=1.0)
    b.record("write", 0.03, 2, now=5.0)
    b.record("read", 0.02, 4, now=6.0)
    a.merge_from(b)
    assert a.total_ops == 3
    assert a.bytes_for("write") == 3
    assert a.end_time == 6.0
    assert a.start_time < 1.0


def test_latency_stats_percentiles():
    samples = [i / 100 for i in range(1, 101)]
    stats = LatencyStats.from_samples(samples)
    assert stats.count == 100
    # Quantiles are rank-based order statistics from the log-bucketed
    # histogram: within ~1% of the ceil(q*n)-th smallest sample.
    assert stats.p50 == pytest.approx(0.50, rel=0.011)
    assert stats.p90 == pytest.approx(0.90, rel=0.011)
    assert stats.p95 == pytest.approx(0.95, rel=0.011)
    assert stats.p99 == pytest.approx(0.99, rel=0.011)
    assert stats.p999 == pytest.approx(1.00, rel=0.011)
    assert stats.max == 1.0


def test_latency_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0
    assert stats.mean == 0.0
