"""Tests for the ASCII figure renderers."""

import pytest

from repro.analysis.asciiplot import _si, dual_series, scatter


def test_scatter_renders_points():
    out = scatter([0, 1, 2], [0, 5, 10], title="demo", width=20, height=6)
    lines = out.splitlines()
    assert lines[0] == "demo"
    body = "\n".join(lines[1:])
    assert "." in body or "+" in body
    # Axis labels carry the extremes.
    assert "10" in out and "0" in out


def test_scatter_density_shading():
    xs = [0.5] * 50 + [0.0, 1.0]
    ys = [0.5] * 50 + [0.0, 1.0]
    out = scatter(xs, ys, width=10, height=5)
    assert "#" in out  # the dense cell
    assert "." in out  # the lone corners


def test_scatter_empty():
    assert "(no data)" in scatter([], [], title="t")


def test_scatter_degenerate_single_point():
    out = scatter([3.0], [7.0], width=10, height=5)
    assert "." in out


def test_scatter_validates_size():
    with pytest.raises(ValueError):
        scatter([1], [1], width=2, height=2)


def test_dual_series_marks_both():
    times = list(range(20))
    a = [i % 5 for i in times]
    b = [10 * (i % 3) for i in times]
    out = dual_series(times, a, b, a_label="threads", b_label="queue")
    assert "*" in out or "@" in out
    assert "o" in out or "@" in out
    assert "threads" in out and "queue" in out


def test_dual_series_empty():
    assert "(no data)" in dual_series([], [], [], title="x")


def test_si_formatting():
    assert _si(0) == "0"
    assert _si(950) == "950"
    assert _si(1500) == "1.5K"
    assert _si(2_500_000) == "2.5M"
    assert _si(3_000_000_000) == "3G"
    assert _si(0.25) == "0.25"
