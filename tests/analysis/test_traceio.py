"""Round-trip tests for trace CSV export/import."""

import pytest

from repro.analysis.traceio import dump_trace, load_trace, summarize_csv
from repro.storage.blktrace import BlkTrace


def make_trace(n=10):
    trace = BlkTrace()
    for i in range(n):
        trace.record(
            time=i * 0.001,
            op="write" if i % 2 else "read",
            start=i * 4096,
            length=4096,
            seek_distance=0 if i % 3 else 123456,
            client_id=i % 4,
            queued=1 + (i % 2),
        )
    return trace


def test_round_trip(tmp_path):
    trace = make_trace(25)
    path = str(tmp_path / "t.csv")
    assert dump_trace(trace, path) == 25
    loaded = load_trace(path)
    assert loaded.records == trace.records


def test_round_trip_preserves_analysis(tmp_path):
    trace = make_trace(40)
    path = str(tmp_path / "t.csv")
    dump_trace(trace, path)
    a = trace.analyze()
    b = load_trace(path).analyze()
    assert a == b


def test_summarize(tmp_path):
    trace = make_trace(12)
    path = str(tmp_path / "t.csv")
    dump_trace(trace, path)
    summary = summarize_csv(path)
    assert summary["records"] == 12
    assert 0 <= summary["seek_fraction"] <= 1


def test_empty_trace(tmp_path):
    path = str(tmp_path / "empty.csv")
    assert dump_trace(BlkTrace(), path) == 0
    assert load_trace(path).records == []


def test_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("nope\n1,write,0,1,0,0,1\n")
    with pytest.raises(ValueError):
        load_trace(str(path))


def test_malformed_row_rejected(tmp_path):
    from repro.analysis.traceio import HEADER

    path = tmp_path / "bad.csv"
    path.write_text(HEADER + "\n1,write,0\n")
    with pytest.raises(ValueError):
        load_trace(str(path))


def test_float_times_exact(tmp_path):
    """repr-based dump keeps full float precision."""
    trace = BlkTrace()
    trace.record(
        time=0.1234567890123456,
        op="write",
        start=1,
        length=2,
        seek_distance=3,
        client_id=4,
        queued=5,
    )
    path = str(tmp_path / "t.csv")
    dump_trace(trace, path)
    assert load_trace(path).records[0].time == 0.1234567890123456
