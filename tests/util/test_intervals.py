"""Unit and property-based tests for IntervalSet."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import IntervalSet


def test_empty_set():
    s = IntervalSet()
    assert not s
    assert len(s) == 0
    assert s.total() == 0
    assert s.contains(0, 0)
    assert not s.contains(0, 1)
    assert not s.overlaps(0, 100)


def test_add_and_contains():
    s = IntervalSet()
    s.add(10, 20)
    assert s.contains(10, 20)
    assert s.contains(12, 15)
    assert not s.contains(5, 15)
    assert not s.contains(15, 25)
    assert s.total() == 10


def test_adjacent_intervals_coalesce():
    s = IntervalSet()
    s.add(0, 10)
    s.add(10, 20)
    assert len(s) == 1
    assert s.contains(0, 20)


def test_overlapping_intervals_coalesce():
    s = IntervalSet()
    s.add(0, 15)
    s.add(10, 30)
    s.add(25, 40)
    assert list(s) == [(0, 40)]


def test_disjoint_intervals_stay_separate():
    s = IntervalSet()
    s.add(0, 10)
    s.add(20, 30)
    assert len(s) == 2
    assert not s.contains(5, 25)
    assert s.overlaps(5, 25)
    assert not s.overlaps(10, 20)


def test_bridging_add_merges_three():
    s = IntervalSet([(0, 10), (20, 30), (40, 50)])
    s.add(5, 45)
    assert list(s) == [(0, 50)]


def test_remove_punches_hole():
    s = IntervalSet([(0, 100)])
    s.remove(40, 60)
    assert list(s) == [(0, 40), (60, 100)]
    assert s.total() == 80


def test_remove_across_intervals():
    s = IntervalSet([(0, 10), (20, 30), (40, 50)])
    s.remove(5, 45)
    assert list(s) == [(0, 5), (45, 50)]


def test_remove_everything():
    s = IntervalSet([(10, 20)])
    s.remove(0, 100)
    assert not s


def test_remove_noop_outside():
    s = IntervalSet([(10, 20)])
    s.remove(30, 40)
    assert list(s) == [(10, 20)]


def test_empty_interval_operations_are_noops():
    s = IntervalSet()
    s.add(5, 5)
    s.remove(5, 5)
    assert not s


def test_invalid_interval_rejected():
    s = IntervalSet()
    with pytest.raises(ValueError):
        s.add(10, 5)
    with pytest.raises(ValueError):
        s.remove(10, 5)


def test_intersection():
    s = IntervalSet([(0, 10), (20, 30)])
    inter = s.intersection(5, 25)
    assert list(inter) == [(5, 10), (20, 25)]
    assert s.intersection(100, 200).total() == 0


def test_clear():
    s = IntervalSet([(0, 10)])
    s.clear()
    assert not s


def test_equality():
    assert IntervalSet([(0, 5), (5, 10)]) == IntervalSet([(0, 10)])
    assert IntervalSet([(0, 5)]) != IntervalSet([(0, 6)])


# -- property-based: IntervalSet behaves like a set of integers --------------

interval_strategy = st.tuples(
    st.integers(0, 200), st.integers(1, 30)
).map(lambda t: (t[0], t[0] + t[1]))

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), interval_strategy),
    max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(ops_strategy)
def test_interval_set_matches_integer_set_model(ops):
    s = IntervalSet()
    model = set()
    for op, (start, end) in ops:
        if op == "add":
            s.add(start, end)
            model.update(range(start, end))
        else:
            s.remove(start, end)
            model.difference_update(range(start, end))
    assert s.total() == len(model)
    for point in range(0, 240):
        assert s.contains(point, point + 1) == (point in model)
    # Intervals must be sorted, disjoint, non-adjacent.
    spans = list(s)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 < s2


@settings(max_examples=100, deadline=None)
@given(ops_strategy, interval_strategy)
def test_intersection_matches_model(ops, window):
    s = IntervalSet()
    model = set()
    for op, (start, end) in ops:
        if op == "add":
            s.add(start, end)
            model.update(range(start, end))
        else:
            s.remove(start, end)
            model.difference_update(range(start, end))
    w0, w1 = window
    inter = s.intersection(w0, w1)
    expected = {p for p in model if w0 <= p < w1}
    assert inter.total() == len(expected)
