"""Tests for formatting helpers."""

from repro.util import fmt_bytes, fmt_rate, fmt_time


def test_fmt_bytes():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(32 * 1024) == "32.0KB"
    assert fmt_bytes(1024 * 1024) == "1.0MB"
    assert fmt_bytes(3 * 1024**3) == "3.0GB"


def test_fmt_rate():
    assert fmt_rate(1024 * 1024) == "1.00MB/s"
    assert fmt_rate(2.5 * 1024 * 1024) == "2.50MB/s"


def test_fmt_time():
    assert fmt_time(0.0000005).endswith("us")
    assert fmt_time(0.005).endswith("ms")
    assert fmt_time(2.0) == "2.00s"
