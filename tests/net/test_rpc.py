"""Tests for RPC transport, inbox delivery and compound sizing."""

import pytest

from repro.net.link import Link
from repro.net.messages import (
    MESSAGE_HEADER_BYTES,
    OP_BODY_BYTES,
    CommitOp,
    CommitPayload,
    CreatePayload,
    RpcMessage,
)
from repro.net.rpc import (
    RetryPolicy,
    RpcClient,
    RpcServerPort,
    RpcTimeoutError,
    RpcTransport,
)
from repro.sim import Environment
from repro.sim.events import Event


@pytest.fixture
def env():
    return Environment()


def make_stack(env):
    up = Link(env, bandwidth=125e6, propagation=50e-6)
    down = Link(env, bandwidth=125e6, propagation=50e-6)
    port = RpcServerPort(env)
    transport = RpcTransport(env, up, down, port)
    client = RpcClient(env, client_id=0, transport=transport)
    return client, port, down


def echo_server(env, port, down):
    """A trivial server replying 'ack' to everything instantly."""
    while True:
        msg = yield port.next_request()
        port.reply(msg, ("ack", msg.kind), down)


def test_round_trip(env):
    client, port, down = make_stack(env)
    env.process(echo_server(env, port, down))
    results = []

    def caller(env):
        reply = yield client.call("create", CreatePayload(name="f1"))
        results.append((env.now, reply))

    env.process(caller(env))
    env.run(until=1.0)
    assert results
    t, reply = results[0]
    assert reply == ("ack", "create")
    assert t > 100e-6  # at least two propagation delays


def test_inbox_queues_when_no_daemon(env):
    client, port, _ = make_stack(env)

    def caller(env):
        client.call("create", CreatePayload(name="f1"))
        yield env.timeout(0.01)

    env.process(caller(env))
    env.run()
    assert port.queue_length == 1
    assert port.requests_received == 1


def test_compound_message_sizes(env):
    ops = [CommitOp(file_id=i, extents=[]) for i in range(3)]
    msg = RpcMessage(
        kind="commit",
        payload=CommitPayload(ops=ops),
        client_id=0,
        reply_event=Event(env),
        send_time=0.0,
    )
    assert msg.op_count() == 3
    assert msg.request_size() == MESSAGE_HEADER_BYTES + 3 * OP_BODY_BYTES


def test_compound_cheaper_than_singles(env):
    """Three ops in one RPC must use fewer wire bytes than three RPCs."""

    def msg(ops):
        return RpcMessage(
            kind="commit",
            payload=CommitPayload(
                ops=[CommitOp(file_id=i, extents=[]) for i in range(ops)]
            ),
            client_id=0,
            reply_event=Event(env),
            send_time=0.0,
        )

    compound = msg(3).request_size() + msg(3).reply_size()
    singles = 3 * (msg(1).request_size() + msg(1).reply_size())
    assert compound < singles


def test_client_op_accounting(env):
    client, port, down = make_stack(env)
    env.process(echo_server(env, port, down))

    def caller(env):
        yield client.call(
            "commit",
            CommitPayload(ops=[CommitOp(file_id=i, extents=[]) for i in range(4)]),
        )
        yield client.call("create", CreatePayload(name="x"))

    env.process(caller(env))
    env.run(until=1.0)
    assert client.calls_sent == 2
    assert client.ops_sent == 5


def test_multiple_clients_share_inbox(env):
    up1 = Link(env)
    up2 = Link(env)
    down = Link(env)
    port = RpcServerPort(env)
    c1 = RpcClient(env, 1, RpcTransport(env, up1, down, port))
    c2 = RpcClient(env, 2, RpcTransport(env, up2, down, port))
    served = []

    def server(env):
        while True:
            msg = yield port.next_request()
            served.append(msg.client_id)
            port.reply(msg, None, down)

    def caller(env, client):
        yield client.call("create", CreatePayload(name=f"f{client.client_id}"))

    env.process(server(env))
    env.process(caller(env, c1))
    env.process(caller(env, c2))
    env.run(until=1.0)
    assert sorted(served) == [1, 2]


# -- fault tolerance: timeouts, retransmission, reply routing ----------------


class ScriptedFaults:
    """Deterministic stand-in for repro.faults.LinkFaults."""

    def __init__(self, verdicts):
        self.verdicts = list(verdicts)

    def verdict(self, link):
        if self.verdicts:
            return self.verdicts.pop(0)
        return (False, 0.0)


def make_retry_stack(env, retry, client_id=0):
    up = Link(env, name="up", bandwidth=125e6, propagation=50e-6)
    down = Link(env, name="down", bandwidth=125e6, propagation=50e-6)
    port = RpcServerPort(env)
    transport = RpcTransport(env, up, down, port)
    client = RpcClient(
        env, client_id=client_id, transport=transport, retry=retry
    )
    return client, port, up, down


def test_retry_policy_backoff_and_cap():
    policy = RetryPolicy(
        base_timeout=0.01, max_timeout=0.05, multiplier=2.0, jitter=0.0
    )
    timeouts = [policy.timeout_for(n, None) for n in range(6)]
    assert timeouts[:3] == [0.01, 0.02, 0.04]
    assert all(t == 0.05 for t in timeouts[3:])


def test_reply_routes_through_registered_transport(env):
    # RpcClient registers its transport at construction; the server can
    # reply without naming a downlink.
    client, port, _, _ = make_retry_stack(env, retry=None)

    def server(env):
        msg = yield port.next_request()
        port.reply(msg, "routed")

    env.process(server(env))
    results = []

    def caller(env):
        results.append((yield client.call("create", CreatePayload("f"))))

    env.process(caller(env))
    env.run(until=1.0)
    assert results == ["routed"]


def test_reply_without_transport_or_downlink_raises(env):
    port = RpcServerPort(env)
    msg = RpcMessage(
        kind="create",
        payload=CreatePayload("f"),
        client_id=99,
        reply_event=Event(env),
        send_time=0.0,
    )
    with pytest.raises(ValueError):
        port.reply(msg, "nope")


def test_retry_recovers_a_lost_request(env):
    policy = RetryPolicy(base_timeout=0.01, jitter=0.0)
    client, port, up, _ = make_retry_stack(env, retry=policy)
    up.faults = ScriptedFaults([(True, 0.0)])  # eat the first request

    def server(env):
        while True:
            msg = yield port.next_request()
            port.reply(msg, "ok")

    env.process(server(env))
    results = []

    def caller(env):
        results.append((yield client.call("create", CreatePayload("f"))))

    env.process(caller(env))
    env.run(until=1.0)
    assert results == ["ok"]
    assert client.timeouts == 1
    assert client.retries == 1
    assert client.consecutive_timeouts == 0  # reset by the success


def test_duplicate_replies_are_harmless(env):
    # A retransmitted request can be answered twice (once per copy the
    # server saw); only the first reply may complete the event.
    policy = RetryPolicy(base_timeout=0.01, jitter=0.0)
    client, port, _, _ = make_retry_stack(env, retry=policy)

    def double_server(env):
        while True:
            msg = yield port.next_request()
            port.reply(msg, "first")
            port.reply(msg, "first")

    env.process(double_server(env))
    results = []

    def caller(env):
        results.append((yield client.call("create", CreatePayload("f"))))

    env.process(caller(env))
    env.run(until=1.0)
    assert results == ["first"]
    assert port.replies_sent == 2


def test_max_attempts_exhaustion_raises(env):
    policy = RetryPolicy(base_timeout=0.005, jitter=0.0, max_attempts=3)
    client, port, _, _ = make_retry_stack(env, retry=policy)
    # No server daemon: requests queue, nobody ever replies.
    failures = []

    def caller(env):
        try:
            yield client.call("create", CreatePayload("f"))
        except RpcTimeoutError as exc:
            failures.append(exc)

    env.process(caller(env))
    env.run(until=1.0)
    assert len(failures) == 1
    assert client.timeouts == 3


def test_stopped_client_parks_forever(env):
    policy = RetryPolicy(base_timeout=0.005, jitter=0.0)
    client, port, _, _ = make_retry_stack(env, retry=policy)
    client.stop()

    def caller(env):
        yield client.call("create", CreatePayload("f"))
        raise AssertionError("a dead client's call must never return")

    proc = env.process(caller(env))
    env.run(until=1.0)
    assert proc.is_alive
    assert port.requests_received == 0  # dead node transmitted nothing


def test_server_port_fail_drops_queued_and_arriving(env):
    client, port, _, _ = make_retry_stack(env, retry=None)

    def caller(env):
        client.call("create", CreatePayload("a"))
        client.call("create", CreatePayload("b"))
        yield env.timeout(0.01)

    env.process(caller(env))
    env.run()
    assert port.queue_length == 2
    lost = port.fail()
    assert lost == 2
    assert port.queue_length == 0
    msg = RpcMessage(
        kind="create",
        payload=CreatePayload("c"),
        client_id=0,
        reply_event=Event(env),
        send_time=env.now,
    )
    port.deliver(msg)  # arrives while down: dropped on the floor
    assert port.dropped_while_down == 1
    assert port.queue_length == 0
    port.resume()
    port.deliver(msg)
    assert port.queue_length == 1
