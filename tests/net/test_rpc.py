"""Tests for RPC transport, inbox delivery and compound sizing."""

import pytest

from repro.net.link import Link
from repro.net.messages import (
    MESSAGE_HEADER_BYTES,
    OP_BODY_BYTES,
    CommitOp,
    CommitPayload,
    CreatePayload,
    RpcMessage,
)
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment
from repro.sim.events import Event


@pytest.fixture
def env():
    return Environment()


def make_stack(env):
    up = Link(env, bandwidth=125e6, propagation=50e-6)
    down = Link(env, bandwidth=125e6, propagation=50e-6)
    port = RpcServerPort(env)
    transport = RpcTransport(env, up, down, port)
    client = RpcClient(env, client_id=0, transport=transport)
    return client, port, down


def echo_server(env, port, down):
    """A trivial server replying 'ack' to everything instantly."""
    while True:
        msg = yield port.next_request()
        port.reply(msg, ("ack", msg.kind), down)


def test_round_trip(env):
    client, port, down = make_stack(env)
    env.process(echo_server(env, port, down))
    results = []

    def caller(env):
        reply = yield client.call("create", CreatePayload(name="f1"))
        results.append((env.now, reply))

    env.process(caller(env))
    env.run(until=1.0)
    assert results
    t, reply = results[0]
    assert reply == ("ack", "create")
    assert t > 100e-6  # at least two propagation delays


def test_inbox_queues_when_no_daemon(env):
    client, port, _ = make_stack(env)

    def caller(env):
        client.call("create", CreatePayload(name="f1"))
        yield env.timeout(0.01)

    env.process(caller(env))
    env.run()
    assert port.queue_length == 1
    assert port.requests_received == 1


def test_compound_message_sizes(env):
    ops = [CommitOp(file_id=i, extents=[]) for i in range(3)]
    msg = RpcMessage(
        kind="commit",
        payload=CommitPayload(ops=ops),
        client_id=0,
        reply_event=Event(env),
        send_time=0.0,
    )
    assert msg.op_count() == 3
    assert msg.request_size() == MESSAGE_HEADER_BYTES + 3 * OP_BODY_BYTES


def test_compound_cheaper_than_singles(env):
    """Three ops in one RPC must use fewer wire bytes than three RPCs."""

    def msg(ops):
        return RpcMessage(
            kind="commit",
            payload=CommitPayload(
                ops=[CommitOp(file_id=i, extents=[]) for i in range(ops)]
            ),
            client_id=0,
            reply_event=Event(env),
            send_time=0.0,
        )

    compound = msg(3).request_size() + msg(3).reply_size()
    singles = 3 * (msg(1).request_size() + msg(1).reply_size())
    assert compound < singles


def test_client_op_accounting(env):
    client, port, down = make_stack(env)
    env.process(echo_server(env, port, down))

    def caller(env):
        yield client.call(
            "commit",
            CommitPayload(ops=[CommitOp(file_id=i, extents=[]) for i in range(4)]),
        )
        yield client.call("create", CreatePayload(name="x"))

    env.process(caller(env))
    env.run(until=1.0)
    assert client.calls_sent == 2
    assert client.ops_sent == 5


def test_multiple_clients_share_inbox(env):
    up1 = Link(env)
    up2 = Link(env)
    down = Link(env)
    port = RpcServerPort(env)
    c1 = RpcClient(env, 1, RpcTransport(env, up1, down, port))
    c2 = RpcClient(env, 2, RpcTransport(env, up2, down, port))
    served = []

    def server(env):
        while True:
            msg = yield port.next_request()
            served.append(msg.client_id)
            port.reply(msg, None, down)

    def caller(env, client):
        yield client.call("create", CreatePayload(name=f"f{client.client_id}"))

    env.process(server(env))
    env.process(caller(env, c1))
    env.process(caller(env, c2))
    env.run(until=1.0)
    assert sorted(served) == [1, 2]
