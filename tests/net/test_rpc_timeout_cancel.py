"""Regression: the retry loop must cancel the losing timeout.

The calendar entry holds a reference to every scheduled ``Timeout``, so
the condition's orphan-refcount sweep can never reclaim a timer that
lost the race to a reply.  Before the explicit ``timer.cancel()`` in
:meth:`RpcClient._call_with_retry`, every successful call parked a live
timer on the calendar until its full deadline -- unbounded growth under
retry churn with long timeouts.
"""

from repro.net.messages import GetattrPayload
from repro.net.rpc import RetryPolicy, RpcClient
from repro.sim import Environment


class _InstantTransport:
    """Replies to every request after a tiny delay; no server needed."""

    def __init__(self, env, reply_delay=0.001, drop_first=0):
        self.env = env
        self.reply_delay = reply_delay
        #: Drop this many requests before starting to answer.
        self.drop_first = drop_first
        self.requests = 0

    def register_client(self, client_id):
        pass

    def send_request(self, message):
        self.requests += 1
        if self.requests <= self.drop_first:
            return
        delivery = self.env.timeout(self.reply_delay)
        delivery.callbacks.append(
            lambda _ev, msg=message: (
                None
                if msg.reply_event.triggered
                else msg.reply_event.succeed("pong")
            )
        )


def test_successful_calls_do_not_accumulate_live_timers():
    env = Environment()
    transport = _InstantTransport(env)
    client = RpcClient(
        env,
        1,
        transport,
        retry=RetryPolicy(base_timeout=10.0, jitter=0.0),
    )

    calls = 400

    def driver():
        for _ in range(calls):
            result = yield client.call("ping", GetattrPayload(file_id=1))
            assert result == "pong"

    proc = env.process(driver())
    env.run(until=proc)

    # Every call armed a 10 s timer and completed in ~1 ms; none of
    # those deadlines has passed yet.  Without the cancel, all ``calls``
    # timers would still sit live on the calendar here.
    assert env.now < 10.0
    assert env.pending_events < calls // 2, (
        f"{env.pending_events} events pending after {calls} calls: "
        "losing retry timers are not being cancelled"
    )
    assert client.timeouts == 0
    assert client.retries == 0
    assert transport.requests == calls


def test_retransmit_path_still_works_and_stays_bounded():
    env = Environment()
    # First two attempts of every... no: drop the first 2 requests
    # globally, so call 1 needs 3 attempts and later calls succeed
    # first try.
    transport = _InstantTransport(env, drop_first=2)
    client = RpcClient(
        env,
        1,
        transport,
        retry=RetryPolicy(
            base_timeout=0.05, max_timeout=0.2, jitter=0.0, max_attempts=10
        ),
    )

    def driver():
        for _ in range(100):
            result = yield client.call("ping", GetattrPayload(file_id=1))
            assert result == "pong"

    proc = env.process(driver())
    env.run(until=proc)

    assert client.retries == 2
    assert client.timeouts == 2
    assert client.consecutive_timeouts == 0
    # Cancelled timers purge in batches of 64; anything still pending
    # is tombstones awaiting the next sweep, not live timers.
    assert env.pending_events < 80


def test_duplicate_reply_is_ignored():
    env = Environment()

    class _DoubleReply(_InstantTransport):
        def send_request(self, message):
            for delay in (0.001, 0.002):
                delivery = self.env.timeout(delay)
                delivery.callbacks.append(
                    lambda _ev, msg=message: (
                        None
                        if msg.reply_event.triggered
                        else msg.reply_event.succeed("pong")
                    )
                )

    client = RpcClient(
        env,
        1,
        _DoubleReply(env),
        retry=RetryPolicy(base_timeout=1.0, jitter=0.0),
    )

    def driver():
        result = yield client.call("ping", GetattrPayload(file_id=1))
        assert result == "pong"

    proc = env.process(driver())
    env.run(until=proc)
    env.run()
