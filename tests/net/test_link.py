"""Tests for the FIFO link model."""

import pytest

from repro.net.link import Link
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_delivery_time_single_message(env):
    link = Link(env, bandwidth=1e6, propagation=0.001, per_message_overhead=0)
    times = []

    def proc(env):
        yield link.send(1000)  # 1ms serialisation + 1ms propagation
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times[0] == pytest.approx(0.002)


def test_fifo_queueing_delays_second_message(env):
    link = Link(env, bandwidth=1e6, propagation=0.0, per_message_overhead=0)
    times = {}

    def sender(env, tag):
        yield link.send(1000)
        times[tag] = env.now

    env.process(sender(env, "a"))
    env.process(sender(env, "b"))
    env.run()
    assert times["a"] == pytest.approx(0.001)
    assert times["b"] == pytest.approx(0.002)  # queued behind a
    assert link.stats.total_queue_delay == pytest.approx(0.001)


def test_idle_link_resets_queue(env):
    link = Link(env, bandwidth=1e6, propagation=0.0, per_message_overhead=0)
    times = []

    def proc(env):
        yield link.send(1000)
        yield env.timeout(1.0)
        yield link.send(1000)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times[0] == pytest.approx(1.002)
    assert link.stats.max_queue_delay == 0.0


def test_per_message_overhead_counted(env):
    link = Link(env, bandwidth=1e6, propagation=0.0, per_message_overhead=100)
    link.send(0)
    assert link.stats.bytes == 100


def test_backlog(env):
    link = Link(env, bandwidth=1e3, propagation=0.0, per_message_overhead=0)
    link.send(1000)  # 1 second of serialisation
    assert link.backlog == pytest.approx(1.0)


def test_stats_accumulate(env):
    link = Link(env, bandwidth=1e6, propagation=0.0, per_message_overhead=10)
    for _ in range(5):
        link.send(90)
    assert link.stats.messages == 5
    assert link.stats.bytes == 500
    assert link.stats.mean_queue_delay > 0


def test_validation(env):
    with pytest.raises(ValueError):
        Link(env, bandwidth=0)
    with pytest.raises(ValueError):
        Link(env, propagation=-1)
    link = Link(env)
    with pytest.raises(ValueError):
        link.send(-1)
