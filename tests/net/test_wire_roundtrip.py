"""Round-trip property tests for the rt wire codec.

Every payload type in :mod:`repro.net.messages` and every reply type the
MDS produces must survive ``encode_frame`` -> TCP-style rechunking ->
``FrameDecoder`` -> ``payload_from_wire`` unchanged; truncated and
oversized frames must be rejected, never misparsed.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mds.extent import Chunk, Extent
from repro.mds.namespace import FileMeta
from repro.mds.server import LayoutReply
from repro.net.messages import (
    CommitOp,
    CommitPayload,
    CreatePayload,
    DelegationPayload,
    GetattrPayload,
    LayoutGetPayload,
    ReleasePayload,
    RpcMessage,
    UnlinkPayload,
)
from repro.net.wire import (
    MAX_FRAME,
    FrameDecoder,
    FrameError,
    encode_frame,
    payload_from_wire,
    payload_to_wire,
    request_from_wire,
    request_to_wire,
    result_from_wire,
    result_to_wire,
)

ids = st.integers(min_value=1, max_value=1 << 40)
offsets = st.integers(min_value=0, max_value=1 << 40)
lengths = st.integers(min_value=1, max_value=1 << 24)
times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
names = st.text(min_size=1, max_size=40)

extents = st.builds(
    Extent,
    file_offset=offsets,
    length=lengths,
    device_id=st.integers(min_value=0, max_value=15),
    volume_offset=offsets,
    state=st.sampled_from(["new", "committed"]),
)

commit_ops = st.builds(
    CommitOp,
    file_id=ids,
    extents=st.lists(extents, max_size=4),
    enqueue_time=times,
    trace_ids=st.tuples(),
    op_id=st.one_of(st.none(), ids),
)

payloads = st.one_of(
    st.builds(CreatePayload, name=names),
    st.builds(GetattrPayload, file_id=ids),
    st.builds(
        LayoutGetPayload,
        file_id=ids,
        offset=offsets,
        length=lengths,
        allocate=st.booleans(),
        delegation_hint=st.booleans(),
        scattered=st.booleans(),
    ),
    st.builds(
        DelegationPayload,
        chunk_size=lengths,
        shard=st.integers(min_value=0, max_value=7),
    ),
    st.builds(CommitPayload, ops=st.lists(commit_ops, max_size=4)),
    st.builds(
        ReleasePayload,
        chunks=st.lists(st.tuples(offsets, lengths), max_size=4),
        shard=st.integers(min_value=0, max_value=7),
    ),
    st.builds(UnlinkPayload, file_id=ids),
)

results = st.one_of(
    st.none(),
    st.booleans(),
    st.lists(st.booleans(), max_size=8),
    st.builds(
        FileMeta,
        file_id=ids,
        name=names,
        ctime=times,
        mtime=times,
        size=offsets,
        extents=st.lists(extents, max_size=4),
    ),
    st.builds(Chunk, volume_offset=offsets, length=lengths),
    st.builds(
        LayoutReply,
        extents=st.lists(extents, max_size=4),
        chunk=st.one_of(
            st.none(),
            st.builds(Chunk, volume_offset=offsets, length=lengths),
        ),
    ),
)


@settings(max_examples=150, deadline=None)
@given(payload=payloads, data=st.data())
def test_payload_roundtrip_through_rechunked_frames(payload, data):
    """Payload -> frame -> arbitrary TCP chunking -> identical payload."""
    wire = encode_frame(payload_to_wire(payload))
    cut = data.draw(
        st.integers(min_value=0, max_value=len(wire)), label="cut"
    )
    decoder = FrameDecoder()
    frames = decoder.feed(wire[:cut])
    frames += decoder.feed(wire[cut:])
    assert len(frames) == 1
    assert payload_from_wire(frames[0]) == payload
    assert decoder.pending_bytes == 0


@settings(max_examples=150, deadline=None)
@given(result=results)
def test_result_roundtrip(result):
    decoder = FrameDecoder()
    (frame,) = decoder.feed(encode_frame(result_to_wire(result)))
    assert result_from_wire(frame) == result


@settings(max_examples=50, deadline=None)
@given(payload=payloads, xid=ids, client_id=ids)
def test_request_roundtrip(payload, xid, client_id):
    message = RpcMessage(
        kind="x",
        payload=payload,
        client_id=client_id,
        reply_event=None,
        send_time=1.5,
        xid=xid,
    )
    decoder = FrameDecoder()
    (frame,) = decoder.feed(encode_frame(request_to_wire(message)))
    rebuilt = request_from_wire(frame, reply_event=object())
    assert rebuilt.payload == payload
    assert rebuilt.xid == xid
    assert rebuilt.client_id == client_id
    assert rebuilt.send_time == message.send_time


def test_truncated_frame_waits_for_more_bytes():
    wire = encode_frame({"type": "unlink", "file_id": 7})
    decoder = FrameDecoder()
    assert decoder.feed(wire[:-1]) == []
    assert decoder.pending_bytes == len(wire) - 1
    (frame,) = decoder.feed(wire[-1:])
    assert frame["file_id"] == 7


def test_bare_length_prefix_is_not_a_frame():
    decoder = FrameDecoder()
    assert decoder.feed(struct.pack(">I", 10)) == []
    assert decoder.feed(b"") == []
    assert decoder.pending_bytes == 4


def test_oversized_length_prefix_rejected_before_buffering():
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(struct.pack(">I", MAX_FRAME + 1) + b"x" * 16)


def test_oversized_body_rejected_at_encode():
    with pytest.raises(FrameError):
        encode_frame({"blob": "y" * (MAX_FRAME + 1)})


def test_undecodable_body_rejected():
    body = b"\xff\xfe not json"
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(struct.pack(">I", len(body)) + body)


def test_two_frames_in_one_feed():
    a = encode_frame({"type": "getattr", "file_id": 1})
    b = encode_frame({"type": "getattr", "file_id": 2})
    frames = FrameDecoder().feed(a + b)
    assert [f["file_id"] for f in frames] == [1, 2]


def test_unknown_payload_and_result_types_rejected():
    with pytest.raises(FrameError):
        payload_from_wire({"type": "mystery"})
    with pytest.raises(FrameError):
        result_from_wire({"type": "mystery"})


def test_frames_are_plain_json():
    wire = encode_frame(payload_to_wire(CreatePayload(name="f")))
    assert json.loads(wire[4:].decode()) == {"type": "create", "name": "f"}
