"""Wire-size model tests: what compounding actually saves."""

import pytest

from repro.net.messages import (
    MESSAGE_HEADER_BYTES,
    OP_BODY_BYTES,
    REPLY_BODY_BYTES,
    CommitOp,
    CommitPayload,
    CreatePayload,
    LayoutGetPayload,
    RpcMessage,
)
from repro.sim import Environment
from repro.sim.events import Event


def msg(payload, data_bytes=0, reply_data_bytes=0):
    env = Environment()
    return RpcMessage(
        kind="x",
        payload=payload,
        client_id=0,
        reply_event=Event(env),
        send_time=0.0,
        data_bytes=data_bytes,
        reply_data_bytes=reply_data_bytes,
    )


def test_simple_payload_sizes():
    m = msg(CreatePayload(name="f"))
    assert m.op_count() == 1
    assert m.request_size() == MESSAGE_HEADER_BYTES + OP_BODY_BYTES
    assert m.reply_size() == MESSAGE_HEADER_BYTES + REPLY_BODY_BYTES


def test_compound_scales_with_ops():
    for k in (1, 3, 6, 8):
        ops = [CommitOp(file_id=i, extents=[]) for i in range(k)]
        m = msg(CommitPayload(ops=ops))
        assert m.op_count() == k
        assert m.request_size() == MESSAGE_HEADER_BYTES + k * OP_BODY_BYTES


def test_empty_compound_counts_one_op():
    m = msg(CommitPayload(ops=[]))
    assert m.op_count() == 1  # a degenerate message still has a body


def test_compound_saving_formula():
    """k compounded ops save exactly (k-1) headers each way."""

    def wire(k):
        ops = [CommitOp(file_id=i, extents=[]) for i in range(k)]
        m = msg(CommitPayload(ops=ops))
        return m.request_size() + m.reply_size()

    k = 6
    singles = k * wire(1)
    compound = wire(k)
    assert singles - compound == 2 * (k - 1) * MESSAGE_HEADER_BYTES


def test_bulk_data_rides_the_wire():
    m = msg(LayoutGetPayload(file_id=1, offset=0, length=4096),
            data_bytes=32768)
    assert m.request_size() == (
        MESSAGE_HEADER_BYTES + OP_BODY_BYTES + 32768
    )
    m2 = msg(LayoutGetPayload(file_id=1, offset=0, length=4096),
             reply_data_bytes=32768)
    assert m2.reply_size() == (
        MESSAGE_HEADER_BYTES + REPLY_BODY_BYTES + 32768
    )


def test_commit_payload_degree():
    p = CommitPayload(ops=[CommitOp(file_id=1, extents=[])] * 4)
    assert p.degree == 4
    assert CommitPayload().degree == 0
