"""FaultSpec: mini-language parsing, validation, random schedules."""

import pytest

from repro.faults import (
    ClientDeath,
    DiskLoss,
    FaultSpec,
    MdsRestart,
    Partition,
    ShardPartition,
)
from repro.sim import StreamRNG


def test_parse_full_spec():
    spec = FaultSpec.parse(
        "loss=0.05,delay=0.1:0.004,partition=1@0.2-0.5,"
        "mds_restart@0.5:0.2,client_death=2@0.8"
    )
    assert spec.loss == 0.05
    assert spec.delay_prob == 0.1
    assert spec.delay_max == 0.004
    assert spec.partitions == (Partition(client_id=1, start=0.2, end=0.5),)
    assert spec.mds_restarts == (MdsRestart(at=0.5, downtime=0.2),)
    assert spec.client_deaths == (ClientDeath(client_id=2, at=0.8),)
    assert not spec.empty


def test_parse_empty_and_whitespace():
    assert FaultSpec.parse("").empty
    assert FaultSpec.parse(" , ,, ").empty


def test_parse_repeated_clauses_accumulate():
    spec = FaultSpec.parse(
        "mds_restart@0.2:0.1,mds_restart@0.6:0.1,"
        "client_death=0@0.3,client_death=1@0.5"
    )
    assert len(spec.mds_restarts) == 2
    assert len(spec.client_deaths) == 2


def test_parse_unknown_clause_rejected():
    with pytest.raises(ValueError, match="unknown fault clause"):
        FaultSpec.parse("bogus=1")


@pytest.mark.parametrize(
    "text",
    [
        "loss=notanumber",
        "delay=0.1",  # missing :MAX
        "partition=1@0.5",  # missing -end
        "mds_restart@0.5",  # missing :downtime
        "client_death=0.8",  # missing @at
    ],
)
def test_parse_malformed_clause_rejected(text):
    with pytest.raises(ValueError, match="malformed fault clause"):
        FaultSpec.parse(text)


@pytest.mark.parametrize(
    "kw",
    [
        {"loss": 1.0},
        {"loss": -0.1},
        {"delay_prob": 1.5},
        {"delay_prob": 0.1},  # delay without a positive max
        {"delay_max": -1.0},
    ],
)
def test_validation_rejects_bad_probabilities(kw):
    with pytest.raises(ValueError):
        FaultSpec(**kw)


def test_validation_rejects_bad_windows():
    with pytest.raises(ValueError):
        Partition(client_id=0, start=0.5, end=0.5)
    with pytest.raises(ValueError):
        MdsRestart(at=0.5, downtime=0.0)
    with pytest.raises(ValueError):
        ClientDeath(client_id=-1, at=0.5)


def test_parse_shard_targeted_restart():
    spec = FaultSpec.parse("mds_restart@0.5:0.2:shard=1")
    assert spec.mds_restarts == (
        MdsRestart(at=0.5, downtime=0.2, shard=1),
    )
    # Untargeted restarts keep shard=None (crash every shard).
    assert FaultSpec.parse("mds_restart@0.5:0.2").mds_restarts[0].shard is None


def test_parse_shard_partition():
    spec = FaultSpec.parse("shard_partition=1@0.1-0.3")
    assert spec.shard_partitions == (
        ShardPartition(shard=1, start=0.1, end=0.3),
    )
    assert not spec.empty


@pytest.mark.parametrize(
    "text",
    [
        "mds_restart@0.5:0.2:1",  # third part must be shard=K
        "mds_restart@0.5:0.2:shard=x",
        "shard_partition=1@0.5",  # missing -end
        "shard_partition=@0.1-0.3",
    ],
)
def test_parse_malformed_shard_clauses_rejected(text):
    with pytest.raises(ValueError, match="malformed fault clause"):
        FaultSpec.parse(text)


def test_shard_clause_validation():
    with pytest.raises(ValueError):
        MdsRestart(at=0.5, downtime=0.2, shard=-1)
    with pytest.raises(ValueError):
        ShardPartition(shard=-1, start=0.1, end=0.3)
    with pytest.raises(ValueError):
        ShardPartition(shard=0, start=0.3, end=0.3)


def test_shard_clauses_round_trip_exactly():
    """serialize() is the exact inverse of parse(), including floats
    with long reprs -- the explorer's replay contract."""
    for text in (
        "mds_restart@0.5:0.2:shard=1",
        "shard_partition=0@0.1-0.30000000000000004",
        "loss=0.05,mds_restart@0.25:0.1:shard=3,"
        "shard_partition=2@0.2-0.42",
    ):
        spec = FaultSpec.parse(text)
        assert spec.serialize() == text
        assert FaultSpec.parse(spec.serialize()) == spec


def test_random_schedule_is_deterministic_and_complete():
    def draw(seed):
        rng = StreamRNG(seed).stream("schedule")
        return FaultSpec.random(rng, duration=1.0, num_clients=3)

    a, b = draw(11), draw(11)
    assert a == b
    assert a != draw(12)

    # Every family is always exercised, and the partitioned client is
    # never the dying one (it must live to demonstrate fencing).
    assert a.loss > 0 and a.delay_prob > 0 and a.delay_max > 0
    assert len(a.partitions) == 1
    assert len(a.mds_restarts) == 1
    assert len(a.client_deaths) == 1
    assert a.partitions[0].client_id != a.client_deaths[0].client_id


def test_parse_disk_loss():
    spec = FaultSpec.parse("disk_loss=1@0.3")
    assert spec.disk_losses == (DiskLoss(member=1, at=0.3),)
    assert spec.disk_losses[0].rebuild_after is None
    assert not spec.empty
    spec = FaultSpec.parse("disk_loss=2@0.3:0.15")
    assert spec.disk_losses == (
        DiskLoss(member=2, at=0.3, rebuild_after=0.15),
    )


def test_disk_loss_round_trips_exactly():
    for text in (
        "disk_loss=0@0.30000000000000004",
        "disk_loss=1@0.2:0.1",
        "loss=0.05,disk_loss=1@0.2:0.1,disk_loss=2@0.35,crash@0.5",
    ):
        spec = FaultSpec.parse(text)
        assert spec.serialize() == text
        assert FaultSpec.parse(spec.serialize()) == spec


@pytest.mark.parametrize(
    "text",
    [
        "disk_loss=1",  # missing @at
        "disk_loss=x@0.3",
        "disk_loss=1@0.3:0.1:0.2",  # too many parts
        "disk_loss=1@0.3:0",  # rebuild window must be positive
        "disk_loss=-1@0.3",
    ],
)
def test_parse_malformed_disk_loss_rejected(text):
    with pytest.raises(ValueError, match="malformed fault clause"):
        FaultSpec.parse(text)


def test_parse_unknown_clause_carries_offending_token():
    """A typo like ``disk_los=0@5`` must fail loudly, naming the token
    -- not silently arm nothing."""
    with pytest.raises(ValueError, match=r"disk_los=0@5"):
        FaultSpec.parse("loss=0.1,disk_los=0@5")
    with pytest.raises(ValueError, match=r"partitio=1@0.2-0.5"):
        FaultSpec.parse("partitio=1@0.2-0.5")


def test_parse_duplicate_scalar_clauses_rejected():
    """loss=/delay= are scalar fields: a repeat is a spec bug, and the
    parser must refuse rather than let the later clause win silently."""
    with pytest.raises(ValueError, match=r"loss=0\.2.*duplicate loss"):
        FaultSpec.parse("loss=0.1,loss=0.2")
    with pytest.raises(ValueError, match=r"duplicate delay"):
        FaultSpec.parse("delay=0.1:0.004,delay=0.2:0.01")
