"""TrackedNemesis: plan determinism, validity, and safety constraints.

The whole soak harness leans on three properties of the planner:

1. *Determinism* -- the plan is a pure function of the RNG stream, so
   two soaks at the same seed replay byte-identically.
2. *Validity* -- every plan composes into one parseable FaultSpec (no
   same-scope overlaps), which is what makes ddmin shrinking free.
3. *Safety* -- deaths never take a majority, disk losses stay inside
   the arrangement's fault budget, nothing lands in the tail margin.
"""

import pytest

from repro.check import compose
from repro.faults.nemesis import TAIL_MARGIN, TrackedNemesis
from repro.sim.rng import StreamRNG

SHAPES = [
    dict(num_clients=4, shards=1, replication="none"),
    dict(num_clients=4, shards=4, replication="none"),
    dict(num_clients=6, shards=2, replication="mirror3"),
]


def plan(seed=0, horizon=3600.0, intensity=1.0, **shape):
    shape = shape or SHAPES[0]
    nemesis = TrackedNemesis(
        StreamRNG(seed).stream("soak", "nemesis"),
        horizon,
        shape["num_clients"],
        shards=shape["shards"],
        replication=shape["replication"],
        intensity=intensity,
    )
    return nemesis.sample()


def test_plan_is_deterministic():
    first = plan(seed=7)
    second = plan(seed=7)
    assert [a.clause for a in first] == [a.clause for a in second]
    assert [a.clause for a in first] != [a.clause for a in plan(seed=8)]


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_plan_composes_into_a_valid_spec(shape, seed):
    actions = plan(seed=seed, **shape)
    assert actions, "an hour of soak must plan at least one fault"
    spec = compose([a.clause for a in actions])
    assert not spec.empty
    if shape["shards"] > 1:
        kinds = {a.kind for a in actions}
        assert "shard_partition" in kinds


@pytest.mark.parametrize("shape", SHAPES)
def test_plan_respects_safety_constraints(shape):
    actions = plan(seed=3, **shape)
    deadline = 3600.0 - TAIL_MARGIN
    deaths = [a for a in actions if a.kind == "client_death"]
    assert len(deaths) <= (shape["num_clients"] - 1) // 2
    dead = set()
    for action in actions:
        assert action.start < action.end
        assert action.end <= deadline
        if action.kind == "partition":
            # A corpse is never partitioned after its death.
            assert action.scope[1] not in dead
        if action.kind == "client_death":
            dead.add(action.scope[1])
    if shape["replication"] != "none":
        from repro.storage.groups import arrangement_named

        losses = [a for a in actions if a.kind == "disk_loss"]
        arr = arrangement_named(shape["replication"])
        assert len(losses) <= arr.tolerates
        assert len({a.scope[1] for a in losses}) == len(losses)
        # Every loss is readmitted (rebuild clause), exercising re-silver.
        assert all(":" in a.clause.split("@", 1)[1] for a in losses)
    else:
        assert not any(a.kind == "disk_loss" for a in actions)


def test_no_same_scope_overlap_with_convergence_gap():
    actions = plan(seed=5, intensity=4.0, **SHAPES[2])
    last_end = {}
    for action in actions:
        key = (action.kind, action.scope)
        if key in last_end:
            assert action.start > last_end[key]
        last_end[key] = action.end


def test_intensity_scales_action_rate():
    calm = plan(seed=0, intensity=0.5)
    stormy = plan(seed=0, intensity=4.0)
    assert len(stormy) > len(calm)


def test_rejects_degenerate_parameters():
    rng = StreamRNG(0).stream("soak", "nemesis")
    with pytest.raises(ValueError, match="too short"):
        TrackedNemesis(rng, 10.0, 4)
    with pytest.raises(ValueError, match="intensity"):
        TrackedNemesis(rng, 3600.0, 4, intensity=0.0)
