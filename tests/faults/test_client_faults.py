"""Client-side fault behaviour: single-node death and degradation."""

from repro.fs import ClusterConfig, RedbudCluster
from repro.net.rpc import RetryPolicy


def build(retry=None, **kw):
    config = ClusterConfig(
        num_clients=2,
        commit_mode="delayed",
        space_delegation=True,
        retry=retry,
        **kw,
    )
    return RedbudCluster(config, seed=3)


def test_die_silences_the_node():
    cluster = build(retry=RetryPolicy())
    client = cluster.clients[0]
    client.die()
    assert client.crashed
    assert client.rpc.stopped
    assert len(client.blockdev.scheduler) == 0
    # Idempotent: a node cannot die twice.
    assert client.die() == 0


def test_degradation_hysteresis_on_consecutive_timeouts():
    cluster = build(retry=RetryPolicy())
    client = cluster.clients[0]
    assert client._sync_fallback is not None
    assert not client.degraded

    # Below the threshold: stays in delayed mode.
    client.rpc.consecutive_timeouts = client.degrade_after_timeouts - 1
    assert not client._update_degraded()

    # Threshold reached: falls back to synchronous ordered writes.
    client.rpc.consecutive_timeouts = client.degrade_after_timeouts
    assert client._update_degraded()
    assert client.degraded
    assert client.degrade_transitions == 1

    # Still degraded while timeouts persist (hysteresis, no flapping).
    assert client._update_degraded()
    assert client.degrade_transitions == 1

    # Recovers once replies flow again and the backlog has drained.
    client.rpc.consecutive_timeouts = 0
    assert not client._update_degraded()
    assert not client.degraded
    assert client.degrade_transitions == 2


def test_degradation_disarmed_without_retry_policy():
    cluster = build(retry=None)
    client = cluster.clients[0]
    assert client._sync_fallback is None
    client.rpc.consecutive_timeouts = 100
    assert not client._update_degraded()
    assert not client.degraded
