"""End-to-end fault injection: survival, exactly-once, determinism.

These are the acceptance tests of the partial-failure model: seeded
fault schedules (message loss/delay/reorder, partitions, MDS restarts,
client deaths) run against the full Redbud cluster, after which the
paper's ordered-writes invariant must still hold, no commit op may have
been applied twice, and the lease collector must have reclaimed the
dead clients' orphan space.

Marked ``faults``: each test simulates seconds of heavily perturbed
virtual time, so CI runs them in their own job.
"""

import pytest

from repro.consistency import check_ordered_writes, crash_cluster, recover
from repro.faults import FaultInjector, FaultSpec
from repro.fs import ClusterConfig, RedbudCluster
from repro.mds.server import MdsParameters
from repro.net.rpc import RetryPolicy
from repro.sim import StreamRNG
from repro.workloads import XcdnWorkload

pytestmark = pytest.mark.faults

#: Aggressive enough to recover quickly at simulated-Ethernet RTTs.
RETRY = RetryPolicy(base_timeout=0.02, max_timeout=0.3, jitter=0.2)


def build_cluster(seed, retry=None, lease=None, num_clients=3, obs=None):
    mds = MdsParameters(
        num_daemons=4,
        lease_duration=lease,
        gc_scan_interval=0.05 if lease is not None else 5.0,
    )
    config = ClusterConfig(
        num_clients=num_clients,
        commit_mode="delayed",
        space_delegation=True,
        retry=retry,
        mds=mds,
    )
    return RedbudCluster(config, seed=seed, obs=obs)


def workload():
    return XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=4, threads_per_client=2
    )


def run_faulted(seed, spec, duration=1.0, obs=None):
    cluster = build_cluster(seed, retry=RETRY, lease=0.15, obs=obs)
    injector = FaultInjector(cluster, spec)
    cluster.run_workload(workload(), duration=duration, warmup=0.1)
    injector.stop()
    # Drain in-flight retries and give the lease collector time to
    # notice any dead client (lease 0.15 s + scan 0.05 s << 1 s).
    cluster.env.run(until=cluster.env.now + 1.0)
    return cluster, injector


def assert_recovered_consistent(cluster):
    mds = cluster.mds
    applies = list(mds.commit_apply_counts.values())
    assert applies and max(applies) <= 1, "a commit op was applied twice"
    state = crash_cluster(cluster)
    report = check_ordered_writes(state.namespace, state.stable, state.space)
    assert report.consistent, report.summary()
    recovery = recover(state)
    assert recovery.recovered_consistent, [
        v.detail for v in recovery.post_check.violations
    ]


def test_injector_requires_retry_policy():
    cluster = build_cluster(seed=1, retry=None)
    with pytest.raises(ValueError, match="retry policy"):
        FaultInjector(cluster, FaultSpec(loss=0.1))


def test_injector_rejects_unknown_clients():
    from repro.faults import ClientDeath, Partition

    cluster = build_cluster(seed=1, retry=RETRY)
    with pytest.raises(ValueError, match="partition names client"):
        FaultInjector(
            cluster,
            FaultSpec(partitions=(Partition(client_id=9, start=0.1, end=0.2),)),
        )
    cluster = build_cluster(seed=1, retry=RETRY)
    with pytest.raises(ValueError, match="client_death names client"):
        FaultInjector(
            cluster,
            FaultSpec(client_deaths=(ClientDeath(client_id=9, at=0.1),)),
        )


def test_empty_spec_is_byte_identical():
    """Installing an empty fault spec must not perturb the simulation.

    The empty models draw no RNG and add no delay, so the blktrace must
    match a cluster that never saw the fault machinery at all.
    """

    def rows(with_injector):
        cluster = build_cluster(seed=9)
        if with_injector:
            FaultInjector(cluster, FaultSpec())
        cluster.run_workload(workload(), duration=0.5, warmup=0.1)
        return cluster.blktrace.to_rows()

    assert rows(False) == rows(True)


def test_same_seed_same_spec_is_reproducible():
    """Same seed + same fault spec => byte-identical traces and events."""
    from repro.obs import Instrumentation

    spec = FaultSpec.parse(
        "loss=0.05,delay=0.1:0.003,partition=1@0.3-0.5,"
        "mds_restart@0.45:0.1,client_death=2@0.7"
    )

    def run():
        obs = Instrumentation()
        cluster, injector = run_faulted(13, spec, duration=0.8, obs=obs)
        return (
            cluster.blktrace.to_rows(),
            obs.tracer.events,
            obs.tracer.spans,
            injector.summary(),
        )

    rows_a, events_a, spans_a, summary_a = run()
    rows_b, events_b, spans_b, summary_b = run()
    assert summary_a == summary_b
    assert rows_a == rows_b
    assert events_a == events_b
    assert spans_a == spans_b
    assert summary_a["total_injected"] > 0


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_schedules_recover_consistently(seed):
    """Property test: any seeded schedule must leave the cluster in a
    state where the ordered-writes invariant holds, no commit was
    double-applied, and the dead client's space was reclaimed."""
    rng = StreamRNG(seed).stream("schedule")
    spec = FaultSpec.random(rng, duration=1.1, num_clients=3)
    cluster, injector = run_faulted(seed, spec, duration=1.0)

    assert injector.stats.total_injected > 0
    dead = spec.client_deaths[0].client_id
    assert cluster.clients[dead].crashed
    assert cluster.space.uncommitted_bytes(dead) == 0, (
        "lease GC failed to reclaim the dead client's orphan space"
    )
    assert_recovered_consistent(cluster)


def test_acceptance_schedule_with_hundreds_of_faults():
    """The ISSUE acceptance bar: a schedule injecting >= 100 faults
    completes with consistent recovery, exactly-once commits, and
    lease-reclaimed space."""
    spec = FaultSpec.parse(
        "loss=0.08,delay=0.15:0.004,partition=1@0.4-0.6,"
        "mds_restart@0.5:0.15,client_death=2@0.8"
    )
    cluster, injector = run_faulted(21, spec, duration=1.2)

    assert injector.stats.total_injected >= 100
    mds = cluster.mds
    assert mds.restarts == 1
    # Loss at this rate forces retransmissions, and some duplicates
    # reach the server -- and every one must be suppressed.
    assert cluster.clients[0].rpc.retries + cluster.clients[1].rpc.retries > 0
    assert (
        mds.duplicate_requests_suppressed + mds.duplicate_commits_suppressed
        > 0
    )
    # The dead client's delegated space became orphaned and must have
    # been reclaimed by the lease collector.
    assert mds.gc is not None
    assert mds.gc.bytes_reclaimed_total > 0
    assert cluster.space.uncommitted_bytes(2) == 0
    assert_recovered_consistent(cluster)
