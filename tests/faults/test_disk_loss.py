"""Disk-loss faults against replicated storage groups.

The ``disk_loss=M@T[:R]`` clause destroys one replica member's disk
mid-run (optionally readmitting it R seconds later, empty, to re-silver
from the survivors).  These tests cover the injector's validation
surface, then run seeded disk-loss schedules against mirror3 and
block4-2 clusters and hold the full oracle panel -- including the
replica-divergence invariant -- plus determinism of the whole path.

Marked ``faults`` like the other injection acceptance tests.
"""

import pytest

from repro.check import judge_crash, judge_live, run_schedule
from repro.consistency import crash_cluster
from repro.faults import FaultInjector, FaultSpec
from repro.fs import ClusterConfig, RedbudCluster
from repro.mds.server import MdsParameters
from repro.net.rpc import RetryPolicy
from repro.workloads import XcdnWorkload

pytestmark = pytest.mark.faults

RETRY = RetryPolicy(base_timeout=0.02, max_timeout=0.3, jitter=0.2)


def build_replicated(seed, replication="mirror3", num_clients=3):
    config = ClusterConfig(
        num_clients=num_clients,
        commit_mode="delayed",
        space_delegation=True,
        retry=RETRY,
        replication=replication,
        mds=MdsParameters(num_daemons=4),
    )
    return RedbudCluster(config, seed=seed)


def workload():
    return XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=4, threads_per_client=2
    )


class TestInjectorValidation:
    def test_disk_loss_requires_replication(self):
        config = ClusterConfig(
            num_clients=3, commit_mode="delayed", space_delegation=True,
            retry=RETRY,
        )
        cluster = RedbudCluster(config, seed=1)
        with pytest.raises(ValueError, match="--replication"):
            FaultInjector(
                cluster, FaultSpec.parse("disk_loss=0@0.2")
            )

    def test_member_out_of_range(self):
        cluster = build_replicated(seed=1)
        with pytest.raises(ValueError, match="member"):
            FaultInjector(
                cluster, FaultSpec.parse("disk_loss=7@0.2")
            )

    def test_budget_exceeded(self):
        # mirror3 tolerates 2 losses; 3 distinct members is over budget.
        cluster = build_replicated(seed=1)
        spec = FaultSpec.parse(
            "disk_loss=0@0.1,disk_loss=1@0.2,disk_loss=2@0.3"
        )
        with pytest.raises(ValueError, match="budget"):
            FaultInjector(cluster, spec)

    def test_duplicate_member_rejected(self):
        cluster = build_replicated(seed=1)
        spec = FaultSpec.parse("disk_loss=1@0.1,disk_loss=1@0.3")
        with pytest.raises(ValueError, match="distinct"):
            FaultInjector(cluster, spec)


@pytest.mark.parametrize("replication", ["mirror3", "block4-2"])
def test_disk_loss_run_passes_oracle_panel(replication):
    """A seeded loss (with rebuild) mid-workload: the group re-silvers,
    the run settles, and the full live oracle panel holds."""
    cluster = build_replicated(seed=5, replication=replication)
    spec = FaultSpec.parse("disk_loss=1@0.3:0.2")
    injector = FaultInjector(cluster, spec)
    cluster.run_workload(workload(), duration=1.0, warmup=0.1)
    injector.stop()
    cluster.env.run(until=cluster.env.now + 1.0)

    assert injector.stats.disk_losses == 1
    assert injector.stats.disk_readmissions == 1
    assert cluster.group.resilvered_bytes > 0
    verdict = judge_live(cluster)
    assert verdict.ok, verdict.violations


def test_disk_loss_without_rebuild_then_crash():
    """Losing a member permanently, then crashing: the recoverable set
    (quorum of survivors) must still cover every committed extent."""
    cluster = build_replicated(seed=9)
    spec = FaultSpec.parse("disk_loss=2@0.3")
    injector = FaultInjector(cluster, spec)
    cluster.run_workload(workload(), duration=0.8, warmup=0.1)
    injector.stop()
    state = crash_cluster(cluster)
    assert state.group is cluster.group
    assert cluster.group.alive_count == 2
    verdict = judge_crash(cluster, state)
    assert verdict.ok, verdict.violations


def test_disk_loss_schedule_through_check_harness():
    """The explorer's replay path: a disk_loss + crash schedule via
    run_schedule judges clean and is deterministic end to end."""
    spec = FaultSpec.parse("disk_loss=1@0.15:0.1,crash@0.35")

    def judge():
        out = run_schedule(
            spec, seed=3, clients=3, replication="mirror3"
        )
        return out.verdict

    a, b = judge(), judge()
    assert a.ok, a.violations
    assert a.violations == b.violations
    assert a.summaries == b.summaries
    assert any("replica-divergence" in s for s in a.summaries)


def test_disk_loss_is_deterministic():
    """Same seed + spec => identical group and witness counters."""

    def run():
        cluster = build_replicated(seed=7)
        injector = FaultInjector(
            cluster, FaultSpec.parse("disk_loss=0@0.25:0.15")
        )
        cluster.run_workload(workload(), duration=0.8, warmup=0.1)
        injector.stop()
        cluster.env.run(until=cluster.env.now + 0.5)
        return cluster.group.summary(), cluster.witnesses.summary()

    assert run() == run()
