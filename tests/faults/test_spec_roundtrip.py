"""Property-based round-trip fuzz of the fault mini-language.

``FaultSpec.parse(spec.serialize()) == spec`` must hold for *every*
valid spec: floats render via ``repr`` (exact), clause order within a
family is preserved, and every family participates.  Plus validation
tests for the malformed shapes the generators must never emit: windows
that heal before they start, and duplicate-scope overlaps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ClientDeath,
    DelayBurst,
    DiskLoss,
    FaultSpec,
    LossBurst,
    MdsRestart,
    Partition,
    ShardPartition,
)

probs = st.floats(
    0.001, 0.999, allow_nan=False, allow_infinity=False
)
delays = st.floats(
    1e-4, 0.5, allow_nan=False, allow_infinity=False
)
# (start-fraction, duration-fraction) pairs; each window is laid out in
# its own 20-second slot (start <= slot+9, duration <= 9.001) so
# same-scope windows can never overlap and every generated spec passes
# validation by construction.
fractions = st.tuples(
    st.floats(0.0, 0.9, allow_nan=False),
    st.floats(0.01, 0.9, allow_nan=False),
)


def _window(index: int, frac) -> tuple:
    start = index * 20.0 + frac[0] * 9.0
    return start, start + frac[1] * 9.0 + 1e-3


@st.composite
def fault_specs(draw):
    loss = draw(st.none() | probs)
    delay = draw(st.none() | st.tuples(probs, delays))
    loss_bursts = tuple(
        LossBurst(prob=draw(probs), start=w[0], end=w[1])
        for w in (
            _window(i, f)
            for i, f in enumerate(draw(st.lists(fractions, max_size=3)))
        )
    )
    delay_bursts = tuple(
        DelayBurst(
            prob=draw(probs), max_delay=draw(delays),
            start=w[0], end=w[1],
        )
        for w in (
            _window(i, f)
            for i, f in enumerate(draw(st.lists(fractions, max_size=3)))
        )
    )
    partitions = tuple(
        Partition(client_id=draw(st.integers(0, 3)), start=w[0], end=w[1])
        for w in (
            _window(i, f)
            for i, f in enumerate(draw(st.lists(fractions, max_size=3)))
        )
    )
    shard_partitions = tuple(
        ShardPartition(shard=draw(st.integers(0, 3)), start=w[0], end=w[1])
        for w in (
            _window(i, f)
            for i, f in enumerate(draw(st.lists(fractions, max_size=2)))
        )
    )
    mds_restarts = tuple(
        MdsRestart(
            at=draw(st.floats(0.0, 50.0, allow_nan=False)),
            downtime=draw(st.floats(0.01, 5.0, allow_nan=False)),
            shard=draw(st.none() | st.integers(0, 3)),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    client_deaths = tuple(
        ClientDeath(
            client_id=cid, at=draw(st.floats(0.0, 50.0, allow_nan=False))
        )
        for cid in draw(
            st.lists(st.integers(0, 5), unique=True, max_size=3)
        )
    )
    disk_losses = tuple(
        DiskLoss(
            member=draw(st.integers(0, 5)),
            at=draw(st.floats(0.0, 50.0, allow_nan=False)),
            rebuild_after=draw(
                st.none() | st.floats(0.01, 5.0, allow_nan=False)
            ),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    return FaultSpec(
        loss=loss if loss is not None else 0.0,
        delay_prob=delay[0] if delay is not None else 0.0,
        delay_max=delay[1] if delay is not None else 0.0,
        loss_bursts=loss_bursts,
        delay_bursts=delay_bursts,
        partitions=partitions,
        shard_partitions=shard_partitions,
        mds_restarts=mds_restarts,
        client_deaths=client_deaths,
        disk_losses=disk_losses,
        crash_at=draw(st.none() | st.floats(0.0, 50.0, allow_nan=False)),
    )


@settings(max_examples=200, deadline=None)
@given(fault_specs())
def test_parse_serialize_roundtrip_is_exact(spec):
    assert FaultSpec.parse(spec.serialize()) == spec


@settings(max_examples=50, deadline=None)
@given(fault_specs())
def test_serialize_is_stable(spec):
    """serialize . parse . serialize is the identity on strings."""
    text = spec.serialize()
    assert FaultSpec.parse(text).serialize() == text


# -- malformed shapes the fuzz generator excludes by construction -------

@pytest.mark.parametrize(
    "text",
    [
        "partition=1@0.5-0.2",  # heals before it starts
        "partition=1@0.5-0.5",  # empty window
        "loss=0.1@3.0-1.0",
        "delay=0.2:0.01@2.0-2.0",
        "shard_partition=0@1.0-0.5",
    ],
)
def test_heal_before_start_rejected(text):
    with pytest.raises(ValueError):
        FaultSpec.parse(text)


@pytest.mark.parametrize(
    "text,scope",
    [
        ("partition=2@0.1-0.5,partition=2@0.4-0.9", "partition=2"),
        (
            "shard_partition=1@0.0-1.0,shard_partition=1@0.5-2.0",
            "shard_partition=1",
        ),
        ("loss=0.1@0.0-1.0,loss=0.2@0.9-2.0", "loss_burst=*"),
        (
            "delay=0.1:0.01@0.0-1.0,delay=0.3:0.02@0.5-1.5",
            "delay_burst=*",
        ),
    ],
)
def test_duplicate_scope_overlap_rejected(text, scope):
    with pytest.raises(ValueError, match="duplicate scope"):
        FaultSpec.parse(text)
    assert scope  # the message names the scope; match above pins it


def test_duplicate_scope_non_overlapping_allowed():
    spec = FaultSpec.parse("partition=2@0.1-0.5,partition=2@0.5-0.9")
    assert len(spec.partitions) == 2


def test_double_death_rejected():
    with pytest.raises(ValueError, match="more than"):
        FaultSpec.parse("client_death=1@0.2,client_death=1@0.8")
