"""FaultTracker: scopes, record lifetimes, excusal queries."""

from repro.faults import FaultTracker, scopes_overlap
from repro.faults.tracking import CLUSTER_WIDE


def test_scopes_overlap_rules():
    assert scopes_overlap(("client", 3), ("client", 3))
    assert not scopes_overlap(("client", 3), ("client", 4))
    assert not scopes_overlap(("client", 3), ("shard", 3))
    assert scopes_overlap(("client", "*"), ("client", 7))
    assert scopes_overlap(("net", "*"), ("net", 2))
    assert scopes_overlap(CLUSTER_WIDE, ("client", 3))
    assert scopes_overlap(("member", 1), CLUSTER_WIDE)


def test_record_lifetimes():
    tracker = FaultTracker()
    ranged = tracker.begin("partition", ("client", 0), 1.0, heal_at=3.0)
    point = tracker.begin("mds_crash", ("mds", "*"), 2.0)
    forever = tracker.begin(
        "client_death", ("client", 1), 2.5, permanent=True
    )
    assert not ranged.point and point.point and not forever.point
    assert ranged.active_at(1.0) and ranged.active_at(2.9)
    assert not ranged.active_at(3.0) and not ranged.active_at(0.9)
    # Point events flash and are gone; permanent faults never end.
    assert not point.active_at(2.0)
    assert forever.active_at(2.5) and forever.active_at(1e9)
    assert [r.fault_id for r in tracker.active(2.6)] == [
        ranged.fault_id,
        forever.fault_id,
    ]


def test_heal_is_idempotent_and_overrides_schedule():
    tracker = FaultTracker()
    record = tracker.begin("disk_loss", ("member", 2), 1.0, heal_at=5.0)
    tracker.heal(record, 4.0)
    tracker.heal(record, 9.0)  # second heal ignored
    assert record.healed_at == 4.0
    assert record.end == 4.0
    assert not record.active_at(4.5)


def test_active_during_window():
    tracker = FaultTracker()
    tracker.begin("partition", ("client", 0), 1.0, heal_at=2.0)
    tracker.begin("mds_crash", ("mds", "*"), 5.0)
    assert len(tracker.active_during(0.0, 1.5)) == 1
    assert len(tracker.active_during(2.0, 4.0)) == 0
    assert len(tracker.active_during(4.9, 5.1)) == 1  # point in window


def test_excusers_scope_and_grace():
    tracker = FaultTracker()
    net = tracker.begin("loss_burst", ("net", "*"), 1.0, heal_at=2.0)
    tracker.heal(net, 2.0)
    other = tracker.begin("partition", ("client", 4), 1.0, heal_at=9.0)
    # Cluster-wide violations see both; client-scoped only the match.
    assert len(tracker.excusers(CLUSTER_WIDE, 1.5, 1.6)) == 2
    assert tracker.excusers(("client", 4), 8.0, 8.5) == [other]
    assert tracker.excusers(("client", 5), 8.0, 8.5) == []
    # Grace extends excusal past the heal...
    assert tracker.excusers(("net", 0), 2.5, 3.0, grace=1.0) == [net]
    # ...but with grace=0 a fault healed exactly at the window start
    # does NOT excuse: a heal-convergence probe at t=heal is never
    # excused by the very fault it probes.
    assert tracker.excusers(("net", 0), 2.0, 3.0, grace=0.0) == []


def test_window_annotations_point_and_ranged():
    tracker = FaultTracker()
    tracker.begin("mds_crash", ("mds", "*"), 0.25)  # point -> window 2
    spanning = tracker.begin(
        "partition", ("client", 0), 0.11, heal_at=0.69
    )
    tracker.heal(spanning, 0.69)
    ann = tracker.window_annotations(0.1)
    assert ann[2] == {"mds_crash", "partition"}
    assert all("partition" in ann[k] for k in range(1, 7))
    assert 0 not in ann
    capped = tracker.window_annotations(0.1, cap_index=3)
    assert max(capped) == 3


def test_from_tracer_roundtrip():
    class FakeEvent:
        def __init__(self, name, time, cat="fault", **args):
            self.name = name
            self.time = time
            self.cat = cat
            self.args = args

    class FakeTracer:
        events = [
            FakeEvent("partition_start", 0.2, client=1, until=0.5),
            FakeEvent("mds_crash", 0.3),
            FakeEvent("commit_apply", 0.4, cat="rpc"),  # not a fault
            FakeEvent("disk_loss", 0.6, member=2),
        ]

    tracker = FaultTracker.from_tracer(FakeTracer())
    kinds = [(r.kind, r.scope, r.point) for r in tracker.records]
    assert kinds == [
        ("partition_start", ("client", 1), False),
        ("mds_crash", ("mds", "*"), True),
        ("disk_loss", ("member", 2), True),
    ]
    assert tracker.records[0].healed_at == 0.5
