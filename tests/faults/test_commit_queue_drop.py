"""Regression: ``CommitQueue.drop_all`` must release room waiters.

The crash path (``RedbudClient.die`` and MDS restarts that discard the
volatile queue) used to empty the queue without waking writers parked in
:meth:`CommitQueue.wait_for_room`.  Nothing else re-checks room until
the next checkout -- which can never happen on an empty queue -- so the
parked writers stalled forever and the post-crash workload wedged.
"""

import pytest

from repro.core.commit_queue import CommitQueue
from repro.mds.extent import Extent
from repro.sim import Environment
from repro.sim.events import Event

pytestmark = pytest.mark.faults


def ext(fo, ln=4096):
    return Extent(file_offset=fo, length=ln, device_id=0, volume_offset=fo)


def fill(env, q, n, start_fid=1):
    """Insert ``n`` never-stable records (pending data events)."""
    for i in range(n):
        q.insert(start_fid + i, [ext(0)], [Event(env)])


def test_drop_all_wakes_parked_writers():
    env = Environment()
    q = CommitQueue(env, capacity=2)
    fill(env, q, 2)
    assert not q.has_room()

    resumed = []

    def writer(env, fid):
        yield q.wait_for_room()
        resumed.append((fid, env.now))
        q.insert(fid, [ext(0)], [Event(env)])

    env.process(writer(env, 10))
    env.process(writer(env, 11))
    env.run(until=1.0)
    assert resumed == []  # both parked: the queue is full and frozen

    # Crash: volatile queue contents are lost, room opens up.
    lost = q.drop_all()
    assert len(lost) == 2
    env.run()

    # Both writers resumed (FIFO) and their retries are queued again.
    assert [fid for fid, _ in resumed] == [10, 11]
    assert len(q) == 2


def test_backpressure_still_works_after_drop_all():
    env = Environment()
    q = CommitQueue(env, capacity=1)
    fill(env, q, 1)

    order = []

    def writer(env, fid):
        if not q.has_room():  # the protocol.py caller pattern
            yield q.wait_for_room()
        order.append(fid)
        q.insert(fid, [ext(0)], [Event(env)])

    for fid in (20, 21, 22):
        env.process(writer(env, fid))
    env.run(until=1.0)
    assert order == []

    q.drop_all()
    env.run()
    # The wake is level-triggered against the post-drop snapshot (an
    # empty queue), so every parked writer resumes in FIFO order; the
    # protocol tolerates the one-in-flight-insert overshoot.
    assert order == [20, 21, 22]
    assert len(q._waiting_room) == 0

    # The waiting room is not corrupted: a fresh writer against the
    # (now over-full) queue parks again and checkout releases it.
    def late_writer(env):
        if not q.has_room():
            yield q.wait_for_room()
        order.append(99)

    env.process(late_writer(env))
    env.run()
    assert order == [20, 21, 22]  # still parked: no room, no checkout

    for rec in q.pending_records():
        for ev in list(rec.data_events):
            if not ev.triggered:
                ev.succeed()
    env.run()
    q.checkout_stable(limit=3)
    env.run()
    assert order == [20, 21, 22, 99]
