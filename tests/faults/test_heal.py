"""Heal paths per fault family, judged by the convergence probes.

The injection tests prove the cluster *survives* faults; these prove it
*comes back* after each family heals -- the liveness half the soak
harness judges continuously.  Each schedule runs on the check harness
with the soak workload (slow enough that multi-second fault windows
fit), then the family's convergence probe must report clean:

- partition lift   -> traffic resumes, degradation reverts, backlog drains
- MDS restart      -> server back up, lease GC scanning again
- disk readmit     -> re-silver completed after the loss
- witness backlog  -> fully replayed below capacity after network churn
"""

import pytest

from repro.check import compose, run_schedule
from repro.check.soak import (
    SoakWorkload,
    judge_converged,
    probe_client_converged,
    probe_mds_converged,
    probe_resilver_complete,
    probe_witness_converged,
    seed_bug_tweak,
)

pytestmark = pytest.mark.faults


def run(clauses, *, seed=0, clients=3, replication="none", shards=1,
        span=20.0, tweak=None):
    return run_schedule(
        compose(clauses), seed=seed, clients=clients, shards=shards,
        replication=replication, run_span=span, tweak=tweak,
        workload=SoakWorkload(),
    )


# This window provably pushes client 1 into sync fallback (three
# consecutive RPC timeouts land inside it at this seed), so the pair of
# tests below observes both arms of the hysteresis: reversion on heal,
# and the probe catching a suppressed reversion.
PARTITION = ["partition=1@20.0-24.0"]


def test_partition_lift_restores_traffic():
    outcome = run(PARTITION, clients=4, span=34.0)
    assert outcome.verdict.ok
    cluster = outcome.cluster
    assert probe_client_converged(cluster, 1) == []
    client = cluster.clients[1]
    assert not client.degraded
    # The partition bit hard enough to enter degradation, and the heal
    # reverted it: both hysteresis transitions fired.
    assert client.degrade_transitions == 2
    assert client.rpc.retries > 0
    assert judge_converged(cluster).ok


def test_partition_heal_probe_catches_suppressed_reversion():
    # Same schedule, but with the delayed->sync reversion disabled the
    # probe must report the client stuck in sync fallback: this is the
    # planted liveness bug the soak self-test hunts.
    outcome = run(
        PARTITION, clients=4, span=34.0, tweak=seed_bug_tweak("degrade")
    )
    cluster = outcome.cluster
    assert cluster.clients[1].degraded
    findings = probe_client_converged(cluster, 1)
    assert any(kind == "liveness-degrade-stuck" for kind, _ in findings)
    verdict = judge_converged(cluster)
    assert not verdict.ok
    assert "converge-degrade-stuck" in verdict.kinds()


def test_mds_restart_resumes_lease_gc():
    outcome = run(["mds_restart@5.0:1.0"])
    assert outcome.verdict.ok
    cluster = outcome.cluster
    assert probe_mds_converged(cluster) == []
    for server in cluster.metadata:
        assert not server.down
        assert server.gc is not None and not server.gc.paused
    # The restart actually happened.
    assert cluster.metadata.restarts == 1


def test_sharded_restart_heals_only_its_shard():
    outcome = run(["mds_restart@5.0:1.0:shard=1"], shards=2)
    assert outcome.verdict.ok
    assert probe_mds_converged(outcome.cluster, 1) == []
    assert probe_mds_converged(outcome.cluster) == []


def test_disk_readmit_completes_resilver():
    outcome = run(
        ["disk_loss=1@5.0:4.0"], replication="mirror3"
    )
    assert outcome.verdict.ok
    cluster = outcome.cluster
    assert probe_resilver_complete(cluster, 1, 5.0) == []
    group = cluster.group
    assert group.members[1].alive
    assert group.last_resilver_at is not None
    assert group.last_resilver_at >= 9.0


def test_unreadmitted_disk_fails_the_resilver_probe():
    outcome = run(["disk_loss=1@5.0"], replication="mirror3")
    findings = probe_resilver_complete(outcome.cluster, 1, 5.0)
    assert any(
        kind == "liveness-resilver-incomplete" for kind, _ in findings
    )


def test_witness_backlog_replays_after_network_churn():
    outcome = run(
        ["loss=0.1@5.0-8.0", "delay=0.2:0.01@9.0-12.0"],
        replication="mirror3",
    )
    assert outcome.verdict.ok
    cluster = outcome.cluster
    assert cluster.witnesses is not None
    assert probe_witness_converged(cluster) == []
    assert len(cluster.witnesses) < cluster.witnesses.capacity


def test_client_death_leaves_survivors_converged():
    outcome = run(["client_death=2@5.0"])
    assert outcome.verdict.ok
    cluster = outcome.cluster
    assert cluster.clients[2].crashed
    # Probes skip the corpse and the survivors are clean.
    assert probe_client_converged(cluster, 2) == []
    assert judge_converged(cluster).ok
