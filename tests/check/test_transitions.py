"""Coverage accounting against the transition-point universe."""

from repro.check import COUNTER_METRICS, TransitionCoverage, transition_times
from repro.obs import Instrumentation
from repro.obs.tracer import TRANSITION_POINTS


def test_universe_matches_tracer_declaration():
    cov = TransitionCoverage()
    assert set(cov.hits) == {name for name, _ in TRANSITION_POINTS}
    assert cov.fraction == 0.0
    assert cov.missed == [name for name, _ in TRANSITION_POINTS]


def test_counter_kind_points_have_metric_mappings():
    for name, kind in TRANSITION_POINTS:
        if kind == "counter":
            assert name in COUNTER_METRICS, name


def test_observe_counts_spans_instants_and_counters():
    obs = Instrumentation()
    span = obs.tracer.begin("writepage", "client")
    obs.tracer.end(span)
    obs.tracer.instant("commit_merge", "queue")
    obs.tracer.instant("commit_merge", "queue")
    obs.registry.counter("mds.lease_renewals").inc(3)
    cov = TransitionCoverage()
    cov.observe(obs)
    assert cov.hits["writepage"] == 1
    assert cov.hits["commit_merge"] == 2
    assert cov.hits["lease_renew"] == 3
    assert cov.hits["commit_apply"] == 0
    assert set(cov.covered) == {"writepage", "commit_merge", "lease_renew"}
    assert 0 < cov.fraction < 1


def test_observe_merges_across_runs():
    cov = TransitionCoverage()
    for _ in range(2):
        obs = Instrumentation()
        obs.tracer.instant("commit_apply", "mds")
        cov.observe(obs)
    assert cov.hits["commit_apply"] == 2


def test_transition_times_picks_first_middle_last():
    obs = Instrumentation()
    for t in [0.1, 0.2, 0.3, 0.4, 0.5]:
        event = obs.tracer.instant("commit_apply", "mds")
        event.time = t
    picks = transition_times(obs, samples_per_point=3)
    times = [t for name, t in picks if name == "commit_apply"]
    assert times == [0.1, 0.3, 0.5]


def test_transition_times_sorted_and_deduped():
    obs = Instrumentation()
    span = obs.tracer.begin("writepage", "client")
    obs.tracer.end(span)  # start == 0.0
    event = obs.tracer.instant("commit_apply", "mds")
    event.time = 0.0  # same timestamp; both survive (different names)
    picks = transition_times(obs)
    assert [t for _, t in picks] == sorted(t for _, t in picks)
    assert len(picks) == 2
    # Counter-kind points never produce crash candidates.
    assert all(name != "lease_renew" for name, _ in picks)
