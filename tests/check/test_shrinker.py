"""ddmin: minimality, memoization, budget behaviour."""

import pytest

from repro.check import ddmin


def test_single_culprit_found():
    clauses = [f"c{i}" for i in range(8)]
    minimal, _probes = ddmin(clauses, lambda s: "c5" in s)
    assert minimal == ["c5"]


def test_interacting_pair_kept():
    clauses = [f"c{i}" for i in range(8)]
    minimal, _probes = ddmin(
        clauses, lambda s: "c1" in s and "c6" in s
    )
    assert sorted(minimal) == ["c1", "c6"]


def test_all_clauses_necessary():
    clauses = ["a", "b", "c"]
    minimal, _probes = ddmin(
        clauses, lambda s: set(s) == {"a", "b", "c"}
    )
    assert sorted(minimal) == ["a", "b", "c"]


def test_initial_must_fail():
    with pytest.raises(ValueError, match="does not fail"):
        ddmin(["a", "b"], lambda s: False)


def test_memoized_predicate_never_repeats():
    seen = []

    def fails(subset):
        key = tuple(subset)
        assert key not in seen, f"probe repeated: {key}"
        seen.append(key)
        return "x" in subset

    minimal, probes = ddmin(["a", "x", "b", "c"], fails)
    assert minimal == ["x"]
    # The initial input is evaluated once, outside the probe count.
    assert probes == len(seen) - 1


def test_probe_budget_caps_work():
    clauses = [f"c{i}" for i in range(16)]
    calls = {"n": 0}

    def fails(subset):
        calls["n"] += 1
        return "c9" in subset

    minimal, probes = ddmin(clauses, fails, max_probes=5)
    assert probes <= 5
    assert "c9" in minimal  # best-effort reduction still fails


def test_single_clause_input():
    minimal, probes = ddmin(["only"], lambda s: "only" in s)
    assert minimal == ["only"]
    assert probes == 0
