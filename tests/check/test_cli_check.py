"""CLI surface of the crash-schedule checker."""

import json

import pytest

from repro.cli import main


def test_check_command_small_budget(capsys):
    code = main(["check", "--budget", "4", "--seed", "0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "schedules" in out
    assert "coverage" in out


def test_check_command_json(capsys):
    code = main(["check", "--budget", "3", "--seed", "0", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["schedules_run"] == 3
    assert payload["coverage"]["fraction"] > 0
    assert payload["counterexamples"] == []


def test_check_command_writes_report(capsys, tmp_path):
    out_path = tmp_path / "report.json"
    code = main(
        ["check", "--budget", "3", "--seed", "0", "--out", str(out_path)]
    )
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["seed"] == 0
    capsys.readouterr()


def test_run_with_check_flag(capsys):
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.4",
            "--check",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "check:" in out


def test_run_check_flag_rejects_non_redbud(capsys):
    code = main(
        [
            "run",
            "--system",
            "nfs3",
            "--workload",
            "varmail",
            "--duration",
            "0.2",
            "--check",
        ]
    )
    assert code == 2
    capsys.readouterr()


def test_run_replays_crash_schedule(capsys):
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--faults",
            "crash@0.05",
            "--seed",
            "0",
            "--clients",
            "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "crash schedule" in out
    assert "PASS" in out


def test_check_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["check"])
    assert args.budget == 200
    assert args.seed == 0
    assert args.clients == 3
    assert args.mode == "delayed"
    assert args.seed_bug == "none"
    assert args.replication == "none"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["check", "--mode", "bogus"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["check", "--replication", "raid9"])


@pytest.mark.check
def test_check_json_failure_exits_nonzero(capsys, tmp_path):
    """`check --json --out` must exit non-zero when the oracle fails,
    even though the report was printed and written successfully -- a CI
    gate that swallows the exit code is a broken gate."""
    out_path = tmp_path / "report.json"
    code = main(
        [
            "check", "--budget", "55", "--seed", "0",
            "--seed-bug", "dedup", "--max-counterexamples", "1",
            "--json", "--out", str(out_path),
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["counterexamples"]
    # The written report matches the printed one: both record failure.
    written = json.loads(out_path.read_text())
    assert written["ok"] is False


def test_check_replicated_small_budget(capsys):
    code = main(
        [
            "check", "--budget", "4", "--seed", "0",
            "--replication", "mirror3", "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["replication"] == "mirror3"
