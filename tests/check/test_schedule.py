"""Schedules are FaultSpec clause atoms; serialization must round-trip."""

import pytest

from repro.check import compose, describe, schedule_events
from repro.faults.spec import FaultSpec


def test_serialize_parse_round_trip():
    text = (
        "loss=0.05,delay=0.1:0.02,partition=2@0.5-0.75,"
        "mds_restart@0.4:0.2,client_death=1@0.8,crash@0.33"
    )
    spec = FaultSpec.parse(text)
    again = FaultSpec.parse(spec.serialize())
    assert again == spec
    assert again.crash_at == 0.33


def test_scientific_notation_windows_round_trip():
    spec = FaultSpec.parse("partition=0@1e-05-0.2")
    again = FaultSpec.parse(spec.serialize())
    assert again.partitions[0].start == 1e-05
    assert again == spec


def test_crash_clause_excluded_from_empty():
    spec = FaultSpec.parse("crash@0.2")
    assert spec.empty  # nothing for the injector to do
    assert spec.crash_at == 0.2


def test_at_most_one_crash_clause():
    with pytest.raises(ValueError, match="at most one crash"):
        FaultSpec.parse("crash@0.2,crash@0.3")


def test_negative_crash_time_rejected():
    with pytest.raises(ValueError):
        FaultSpec(crash_at=-1.0)


def test_schedule_events_and_compose_invert():
    spec = FaultSpec.parse("loss=0.1,mds_restart@0.5:0.2,crash@0.9")
    clauses = schedule_events(spec)
    assert len(clauses) == 3
    assert compose(clauses) == spec
    # Any subset composes into a valid, weaker schedule.
    sub = compose(clauses[:1])
    assert sub.loss == 0.1
    assert sub.crash_at is None


def test_empty_spec_has_no_events():
    assert schedule_events(FaultSpec()) == []
    assert compose([]) == FaultSpec()
    assert describe(FaultSpec()) == "(fault-free)"
