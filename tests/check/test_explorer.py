"""End-to-end checks of the crash-schedule explorer.

The quick tests here run single schedules and a tiny exploration; the
seeded-bug acceptance test (find a real protocol bug, shrink it to a
minimal schedule, replay it) is marked ``check`` and runs in the CI
check job alongside the full-budget exploration.
"""

import json

import pytest

from repro.check import explore, run_schedule
from repro.faults.spec import FaultSpec


def test_fault_free_run_passes():
    out = run_schedule(FaultSpec(), seed=0)
    assert not out.crashed
    assert out.verdict.ok, out.verdict.violations
    # The workload actually drove the system: data became durable and
    # every invariant checker had something to chew on.
    assert out.cluster.array.stable.total() > 0
    assert out.cluster.mds.oplog


def test_crash_point_run_recovers_clean():
    out = run_schedule(FaultSpec.parse("crash@0.05"), seed=0)
    assert out.crashed
    assert out.verdict.ok, out.verdict.violations


def test_oracle_has_teeth_in_unordered_mode():
    """Unordered commit mode is the paper's broken baseline: a crash
    must produce dangling metadata, and the checker must say so."""
    out = run_schedule(
        FaultSpec.parse("crash@0.05"), seed=0, mode="unordered"
    )
    assert not out.verdict.ok
    kinds = set(out.verdict.kinds())
    assert kinds & {"dangling-metadata", "commit-before-stable"}, kinds


def test_partition_fences_then_readmits_client():
    """A partition longer than the lease gets client 0 fenced by the
    GC; its first RPC after healing re-admits it at the new
    generation, and the run still satisfies every invariant."""
    out = run_schedule(FaultSpec.parse("partition=0@0.05-0.2"), seed=0)
    cluster = out.cluster
    assert out.verdict.ok, out.verdict.violations
    fences = [
        e
        for e in out.obs.tracer.events
        if e.name == "array_fence" and e.args.get("client") == 0
    ]
    assert fences and fences[0].time < 0.35  # fenced during the run
    assert cluster.array.fence_generations[(0, 0)] >= 1
    assert (
        cluster.clients[0].blockdev.write_generation
        == cluster.array.fence_generations[(0, 0)]
    )


def test_explore_is_deterministic_and_covers_everything():
    first = explore(budget=6, seed=0)
    second = explore(budget=6, seed=0)
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        second.as_dict(), sort_keys=True
    )
    assert first.ok, [s for s in first.schedules if not s["ok"]]
    assert first.schedules[0]["kind"] == "probe"
    assert first.coverage["fraction"] == 1.0
    assert len(first.schedules) == 6


def test_nemesis_generator_is_seeded_and_varied():
    from repro.check.explorer import _nemesis_spec
    from repro.sim import StreamRNG

    def batch(seed):
        root = StreamRNG(seed).stream("check", "nemesis")
        return [
            _nemesis_spec(root.stream(i), clients=3).serialize()
            for i in range(8)
        ]

    assert batch(0) == batch(0)  # deterministic per seed
    assert batch(0) != batch(1)  # seed actually matters
    assert len(set(batch(0))) > 1  # and schedules are diverse


@pytest.mark.check
def test_seeded_dedup_bug_found_shrunk_and_replayable():
    """Acceptance: disable the MDS commit reply cache (exactly-once is
    now broken), explore, and the harness must find it, shrink it to a
    <=3-clause schedule, and that minimal schedule must replay."""

    def tweak(cluster):
        cluster.mds.commit_dedup_enabled = False

    report = explore(budget=60, seed=0, tweak=tweak)
    assert report.failures > 0
    assert report.counterexamples
    ce = report.counterexamples[0]
    assert "double-apply" in ce.kinds
    minimal_clauses = [c for c in ce.minimal.split(",") if c]
    assert 1 <= len(minimal_clauses) <= 3
    # The minimal schedule reproduces on a fresh cluster with the bug.
    replay = run_schedule(
        FaultSpec.parse(ce.minimal),
        seed=ce.seed,
        clients=ce.clients,
        tweak=tweak,
    )
    assert not replay.verdict.ok
    assert "double-apply" in replay.verdict.kinds()
    # ... and passes on a healthy cluster: the fault schedule alone is
    # not enough, the bug is required.
    healthy = run_schedule(
        FaultSpec.parse(ce.minimal), seed=ce.seed, clients=ce.clients
    )
    assert healthy.verdict.ok, healthy.verdict.violations


@pytest.mark.check
def test_healthy_exploration_has_no_false_positives():
    report = explore(budget=40, seed=0)
    assert report.ok, [s for s in report.schedules if not s["ok"]]
    assert report.coverage["fraction"] >= 0.9
