"""The soak harness: determinism, oracle sensitivity, CLI plumbing.

These run whole miniature soaks (a few virtual minutes), so they sit in
the ``check`` layer but stay fast: the planner's BASE_GAP of 30 virtual
seconds keeps short horizons to a handful of faults.
"""

import json

import pytest

from repro.check.soak import run_soak
from repro.cli import main

QUICK = 0.05  # virtual hours: ~3 minutes, a handful of nemesis actions


def test_quick_soak_is_clean_and_deterministic():
    first, second = [], []
    r1 = run_soak(QUICK, seed=0, emit=lambda o: first.append(
        json.dumps(o, sort_keys=True)))
    r2 = run_soak(QUICK, seed=0, emit=lambda o: second.append(
        json.dumps(o, sort_keys=True)))
    assert r1.ok, r1.summary()
    assert r1.actions and sum(r1.faults_injected.values()) > 0
    assert r1.sweeps_run > 0
    # Same seed, same report: the acceptance bar is byte-identity of
    # the emitted JSONL stream, not just the verdict.
    assert first == second
    assert json.dumps(r1.as_dict(), sort_keys=True) == json.dumps(
        r2.as_dict(), sort_keys=True
    )


def test_different_seed_changes_the_plan():
    r0 = run_soak(QUICK, seed=0)
    r1 = run_soak(QUICK, seed=1)
    assert [a["clause"] for a in r0.actions] != [
        a["clause"] for a in r1.actions
    ]


def test_seeded_liveness_bug_is_detected_and_shrunk():
    report = run_soak(0.2, seed=0, seed_bug="degrade")
    assert not report.ok
    kinds = {v.kind for v in report.violations if not v.excused}
    assert any(k.endswith("degrade-stuck") for k in kinds)
    cx = report.counterexample
    assert cx is not None and cx["minimal"]
    # The shrunk schedule is strictly smaller than the full plan and
    # replayable through the run verb with the same planted bug.
    assert cx["minimal_clauses"] < len(report.actions)
    assert "--seed-bug degrade" in cx["replay"]
    assert "repro run" in cx["replay"] and "--check" in cx["replay"]


def test_excused_violations_carry_their_excuser():
    # Crank intensity until faults overlap the sweeps; every excused
    # violation must name the live fault that excused it.
    report = run_soak(0.1, seed=2, intensity=4.0)
    assert report.ok, report.summary()
    for violation in report.violations:
        if violation.excused:
            assert violation.excused_by


@pytest.mark.slow
def test_two_hour_soak_is_byte_identical():
    streams = ([], [])
    for lines in streams:
        run_soak(2.0, seed=0, emit=lambda o, ls=lines: ls.append(
            json.dumps(o, sort_keys=True)))
    assert streams[0] == streams[1]
    assert len(streams[0]) > 100


# -- CLI ----------------------------------------------------------------

def test_soak_verb_writes_incremental_jsonl(tmp_path, capsys):
    out = tmp_path / "soak.jsonl"
    code = main([
        "soak", "--hours", "0.05", "--seed", "0", "--out", str(out),
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "soak:" in text and "PASS" in text
    records = [json.loads(line) for line in out.read_text().splitlines()]
    events = {r["event"] for r in records}
    assert {"inject", "heal", "sweep", "summary"} <= events
    summary = [r for r in records if r["event"] == "summary"][-1]
    assert summary["unexcused"] == 0


def test_soak_verb_fails_on_seeded_bug(tmp_path, capsys):
    out = tmp_path / "buggy.jsonl"
    code = main([
        "soak", "--hours", "0.2", "--seed", "0",
        "--seed-bug", "degrade", "--out", str(out),
    ])
    assert code == 1
    text = capsys.readouterr().out
    assert "FAIL" in text
    assert "repro run" in text  # the replay command is printed
    records = [json.loads(line) for line in out.read_text().splitlines()]
    summary = [r for r in records if r["event"] == "summary"][-1]
    assert summary["unexcused"] > 0
    assert summary["counterexample"]["minimal"]


def test_soak_verb_json_output(capsys):
    code = main(["soak", "--hours", "0.05", "--seed", "0", "--json"])
    assert code == 0
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
    records = [json.loads(line) for line in lines]
    assert records[-1]["event"] == "summary"


# -- satellite: injector counters exported as gauges --------------------

def test_injector_counters_exported_as_gauges():
    from repro.check import compose, run_schedule

    outcome = run_schedule(
        compose(["loss=0.2@0.05-0.25", "mds_restart@0.1:0.05"]), seed=0
    )
    snap = outcome.obs.registry.snapshot()
    gauges = {k: v for k, v in snap.items()
              if k.startswith("faults.injector.")}
    assert gauges, sorted(snap)
    assert gauges.get("faults.injector.mds_restarts") == 1
    assert gauges.get("faults.injector.loss_bursts") == 1
