"""Property tests for ``rebuild_free_space``: idempotency and atomicity.

The repair step must be a fixed point — rebuilding an already-rebuilt
manager changes nothing — and a claim that cannot be satisfied must not
corrupt the manager being rebuilt (roll back, then raise).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import fsck
from repro.consistency.fsck import _claim, rebuild_free_space
from repro.mds.allocation import SpaceManager
from repro.mds.extent import EXTENT_COMMITTED, Extent
from repro.mds.namespace import Namespace

import pytest

PAGE = 4096


def _namespace_with(extents):
    """One file per extent, laid out exactly at the given volume ranges."""
    ns = Namespace()
    for i, (offset, length) in enumerate(extents):
        meta = ns.create(f"f{i}", float(i))
        ns.commit_extents(
            meta.file_id,
            [
                Extent(
                    file_offset=0,
                    length=length,
                    device_id=0,
                    volume_offset=offset,
                    state=EXTENT_COMMITTED,
                )
            ],
            float(i) + 0.5,
        )
    return ns


def _free_books(space):
    return (
        space.free_bytes,
        [group.free_extents() for group in space.groups],
    )


@st.composite
def layouts(draw):
    """Non-overlapping page-aligned extents + a geometry that tiles the
    volume exactly (no unmanaged tail)."""
    num_groups = draw(st.integers(min_value=1, max_value=4))
    cursor = 0
    extents = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        cursor += draw(st.integers(min_value=0, max_value=3)) * PAGE
        length = draw(st.integers(min_value=1, max_value=5)) * PAGE
        extents.append((cursor, length))
        cursor += length
    tail = draw(st.integers(min_value=1, max_value=3)) * PAGE
    # Round up so volume_size is a multiple of num_groups and the AGs
    # cover every byte.
    unit = num_groups * PAGE
    volume = ((cursor + tail + unit - 1) // unit) * unit
    return extents, volume, num_groups


@settings(max_examples=60, deadline=None)
@given(layouts())
def test_rebuild_is_idempotent(layout):
    extents, volume, num_groups = layout
    ns = _namespace_with(extents)
    space = SpaceManager(volume_size=volume, num_groups=num_groups)
    once = rebuild_free_space(ns, space)
    twice = rebuild_free_space(ns, once)
    assert _free_books(once) == _free_books(twice)


@settings(max_examples=60, deadline=None)
@given(layouts())
def test_rebuild_result_is_fsck_clean(layout):
    extents, volume, num_groups = layout
    ns = _namespace_with(extents)
    space = SpaceManager(volume_size=volume, num_groups=num_groups)
    rebuilt = rebuild_free_space(ns, space)
    report = fsck(ns, rebuilt)
    assert report.clean, report.summary()
    assert report.committed_bytes == sum(length for _, length in extents)
    assert report.free_bytes == volume - report.committed_bytes


def test_overlapping_committed_extents_raise():
    # Two files claiming the same volume bytes: not repairable.
    ns = _namespace_with([(0, 2 * PAGE), (PAGE, 2 * PAGE)])
    space = SpaceManager(volume_size=16 * PAGE, num_groups=2)
    with pytest.raises(ValueError, match="does not fit"):
        rebuild_free_space(ns, space)


def test_extent_beyond_managed_volume_raises():
    # volume_size not divisible by num_groups leaves an unmanaged tail;
    # a committed extent there must be rejected, not silently accepted.
    volume = 4 * PAGE + 2
    space = SpaceManager(volume_size=volume, num_groups=4)
    managed_end = (volume // 4) * 4
    ns = _namespace_with([(managed_end, 2)])
    with pytest.raises(ValueError, match="does not fit"):
        rebuild_free_space(ns, space)


def test_claim_rolls_back_partial_failure():
    space = SpaceManager(volume_size=8 * PAGE, num_groups=2)
    # Occupy the head of group 1 so a group-spanning claim fails halfway.
    assert _claim(space, 4 * PAGE, PAGE)
    before = _free_books(space)
    assert not _claim(space, 3 * PAGE, 2 * PAGE)
    assert _free_books(space) == before
