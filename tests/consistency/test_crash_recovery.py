"""Crash-injection and recovery tests: the §III consistency argument.

The central claim: with ordered writes (synchronous OR delayed commit),
a crash at ANY instant leaves the file system consistent -- committed
metadata never references unstable data.  The deliberately broken
``unordered`` mode violates this, proving the checker has teeth.
"""

import pytest

from repro.consistency import check_ordered_writes, crash_cluster, recover
from repro.fs import ClusterConfig, RedbudCluster
from repro.workloads import XcdnWorkload


def run_and_crash(commit_mode, crash_after, seed=3, delegation=False):
    config = ClusterConfig(
        num_clients=3,
        commit_mode=commit_mode,
        space_delegation=delegation,
    )
    cluster = RedbudCluster(config, seed=seed)
    workload = XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=5, threads_per_client=2
    )
    # Launch the workload but crash mid-flight instead of running out.
    env = cluster.env
    shared = {}
    from repro.analysis.metrics import OpMetrics
    from repro.workloads.spec import WorkloadContext

    contexts = [
        WorkloadContext(
            env=env,
            fs=cluster.clients[i],
            rng=cluster.root_rng.stream("wl", i),
            client_index=i,
            num_clients=3,
            metrics=OpMetrics(),
            shared=shared,
        )
        for i in range(3)
    ]
    setups = [env.process(workload.setup(ctx)) for ctx in contexts]
    env.run(until=env.all_of(setups))

    def forever(ctx, tid):
        while True:
            yield from workload.op(ctx, tid)

    for ctx in contexts:
        for tid in range(workload.threads_per_client):
            env.process(forever(ctx, tid))

    state = crash_cluster(cluster, at_time=env.now + crash_after)
    return cluster, state


@pytest.mark.parametrize("mode", ["synchronous", "delayed"])
@pytest.mark.parametrize("crash_after", [0.01, 0.1, 0.5])
def test_ordered_modes_survive_crash(mode, crash_after):
    cluster, state = run_and_crash(
        mode, crash_after, delegation=(mode == "delayed")
    )
    report = check_ordered_writes(
        state.namespace, state.stable, state.space
    )
    assert report.consistent, report.summary()
    assert report.extents_checked > 0  # the check actually saw work


def test_unordered_mode_violates_invariant():
    """The control mode must (eventually) produce dangling metadata."""
    violated = False
    for crash_after in [0.02, 0.05, 0.1, 0.2, 0.4]:
        cluster, state = run_and_crash("unordered", crash_after)
        report = check_ordered_writes(
            state.namespace, state.stable, state.space
        )
        if not report.consistent:
            violated = True
            kinds = {v.kind for v in report.violations}
            assert "dangling-metadata" in kinds
            break
    assert violated, "unordered mode never produced a violation"


def test_crash_reports_lost_volatile_state():
    cluster, state = run_and_crash("delayed", 0.2, delegation=True)
    # A busy delayed-commit cluster loses queued commits and block I/O.
    assert state.lost_commit_records >= 0
    assert state.crash_time > 0
    for client in cluster.clients:
        assert client.crashed
        assert client.cache.resident_bytes == 0


def test_recovery_reclaims_orphans_and_rebalances():
    cluster, state = run_and_crash("delayed", 0.3, delegation=True)
    orphans_before = state.space.uncommitted_bytes()
    report = recover(state)
    assert report.pre_check.consistent
    assert report.orphan_bytes_reclaimed == orphans_before
    assert report.recovered_consistent, [
        v.detail for v in report.post_check.violations
    ]
    assert state.space.uncommitted_bytes() == 0


def test_recovery_after_sync_crash_is_clean():
    cluster, state = run_and_crash("synchronous", 0.2)
    report = recover(state)
    assert report.recovered_consistent
    # Sync commit may still leave orphans: allocations whose data was
    # being written when the lights went out.
    assert report.orphan_bytes_reclaimed >= 0


def test_crash_in_past_rejected():
    config = ClusterConfig(num_clients=1, commit_mode="delayed")
    cluster = RedbudCluster(config, seed=1)
    cluster.env.run(until=1.0)
    with pytest.raises(ValueError):
        crash_cluster(cluster, at_time=0.5)
