"""Recovery edge paths: accounting checks, idempotence, empty crashes."""

from repro.consistency import check_ordered_writes, crash_cluster, recover
from repro.consistency.crash import CrashState
from repro.fs import ClusterConfig, RedbudCluster
from repro.mds.allocation import SpaceManager
from repro.mds.extent import Extent
from repro.mds.namespace import Namespace
from repro.util.intervals import IntervalSet


def test_recover_idle_cluster_is_trivial():
    cluster = RedbudCluster(
        ClusterConfig(num_clients=2, commit_mode="delayed"), seed=1
    )
    state = crash_cluster(cluster, at_time=0.5)
    report = recover(state)
    assert report.recovered_consistent
    assert report.orphan_bytes_reclaimed == 0
    assert report.pre_check.files_checked == 0


def test_recovery_is_idempotent():
    cluster = RedbudCluster(
        ClusterConfig.space_delegation_config(num_clients=2), seed=1
    )
    env = cluster.env
    fs = cluster.clients[0]

    def app():
        for i in range(20):
            fid = yield from fs.create(f"f{i}")
            yield from fs.write(fid, 0, 32 * 1024)

    env.process(app())
    state = crash_cluster(cluster, at_time=0.05)
    first = recover(state)
    second = recover(state)
    assert first.recovered_consistent
    assert second.recovered_consistent
    assert second.orphan_bytes_reclaimed == 0  # nothing left to reclaim


def test_accounting_violation_detected():
    """If the allocator loses bytes, recovery's balance check says so."""
    ns = Namespace()
    sm = SpaceManager(volume_size=1 << 20, num_groups=1, cursor_align=0)
    off = sm.alloc(4096, client_id=0)
    # Commit metadata for the extent...
    meta = ns.create("f", now=0.0)
    ns.commit_extents(
        meta.file_id,
        [Extent(file_offset=0, length=4096, device_id=0,
                volume_offset=off)],
        now=1.0,
    )
    sm.note_committed(off, 4096)
    # ...then sabotage the allocator: leak an extra allocation that is
    # neither committed nor tracked as uncommitted.
    sm.groups[0].alloc(8192)
    stable = IntervalSet([(off, off + 4096)])
    state = CrashState(
        crash_time=1.0,
        namespace=ns,
        space=sm,
        stable=stable,
        lost_commit_records=0,
        lost_block_requests=0,
    )
    report = recover(state)
    assert not report.recovered_consistent
    assert any(
        v.kind == "space-accounting" for v in report.post_check.violations
    )


def test_checker_counts_committed_bytes():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(
        meta.file_id,
        [
            Extent(file_offset=0, length=4096, device_id=0,
                   volume_offset=0),
            Extent(file_offset=4096, length=8192, device_id=0,
                   volume_offset=8192),
        ],
        now=1.0,
    )
    stable = IntervalSet([(0, 4096), (8192, 16384)])
    report = check_ordered_writes(ns, stable)
    assert report.consistent
    assert report.committed_bytes == 12288
    assert report.extents_checked == 2
