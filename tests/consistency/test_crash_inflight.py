"""The crash stable/lost boundary includes mid-service disk requests.

A block request dispatched to a spindle but not yet completed at the
crash instant contributed nothing durable (torn in-flight write), so
``crash_cluster`` must count it as lost alongside everything still
queued in client elevators.
"""

from repro.consistency import crash_cluster

from tests.conftest import MiniCluster


def test_crash_counts_mid_service_disk_request(env):
    cluster = MiniCluster(env, commit_mode="delayed")
    client = cluster.client
    client.blockdev.submit_write(0, 64 * 1024, file_id=1)

    # Step until the array has dispatched the request to a spindle.
    for _ in range(100_000):
        if cluster.array.in_flight:
            break
        env.step()
    assert cluster.array.in_flight, "request never reached service"

    queued = len(client.blockdev.scheduler)
    state = crash_cluster(cluster)
    assert state.lost_block_requests == len(cluster.array.in_flight) + queued
    assert state.lost_block_requests >= 1
    # Nothing completed service, so nothing is stable.
    assert not state.stable.contains(0, 1)


def test_in_flight_empties_after_service(env):
    cluster = MiniCluster(env, commit_mode="delayed")
    done = cluster.client.blockdev.submit_write(0, 64 * 1024, file_id=1)
    env.run(until=1.0)
    assert done.triggered
    assert cluster.array.in_flight == []
    assert cluster.array.stable.contains(0, 64 * 1024)
