"""Tests for the fsck cross-check and free-space rebuild."""

import pytest

from repro.consistency import crash_cluster, fsck, recover, rebuild_free_space
from repro.fs import ClusterConfig, RedbudCluster
from repro.mds.allocation import SpaceManager
from repro.mds.extent import Extent
from repro.mds.namespace import Namespace


def ext(fo, ln, vo):
    return Extent(file_offset=fo, length=ln, device_id=0, volume_offset=vo)


def fresh(volume=1 << 20, groups=2):
    return Namespace(), SpaceManager(
        volume_size=volume, num_groups=groups, cursor_align=0
    )


def test_clean_books_pass():
    ns, sm = fresh()
    meta = ns.create("f", now=0.0)
    off = sm.alloc(4096, client_id=0)
    ns.commit_extents(meta.file_id, [ext(0, 4096, off)], now=1.0)
    sm.note_committed(off, 4096)
    report = fsck(ns, sm)
    assert report.clean, report.summary()
    assert report.committed_bytes == 4096
    assert report.free_bytes == (1 << 20) - 4096


def test_lost_claim_detected():
    """Metadata pointing at space the allocator freed = corruption."""
    ns, sm = fresh()
    meta = ns.create("f", now=0.0)
    off = sm.alloc(4096, client_id=0)
    ns.commit_extents(meta.file_id, [ext(0, 4096, off)], now=1.0)
    sm.note_committed(off, 4096)
    sm.free(off, 4096)  # sabotage: free committed space
    report = fsck(ns, sm)
    assert not report.clean
    assert report.lost_claimed == [(off, 4096)]


def test_leak_detected():
    ns, sm = fresh()
    sm.groups[0].alloc(8192)  # allocated outside all bookkeeping
    report = fsck(ns, sm)
    assert not report.clean
    assert report.leaked_bytes == 8192


def test_uncommitted_space_is_accounted_not_leaked():
    ns, sm = fresh()
    sm.alloc(4096, client_id=3)  # tracked as uncommitted
    report = fsck(ns, sm)
    assert report.clean
    assert report.uncommitted_bytes == 4096


def test_rebuild_restores_exact_free_space():
    ns, sm = fresh()
    offsets = []
    for i in range(5):
        meta = ns.create(f"f{i}", now=0.0)
        off = sm.alloc(4096, client_id=0)
        ns.commit_extents(meta.file_id, [ext(0, 4096, off)], now=1.0)
        sm.note_committed(off, 4096)
        offsets.append(off)
    sm.alloc(9999, client_id=1)  # an orphan the rebuild must discard
    rebuilt = rebuild_free_space(ns, sm)
    assert rebuilt.free_bytes == (1 << 20) - 5 * 4096
    assert fsck(ns, rebuilt).clean
    rebuilt.check_invariants()


def test_rebuild_after_real_crash():
    cluster = RedbudCluster(
        ClusterConfig.space_delegation_config(num_clients=2), seed=3
    )
    env = cluster.env
    fs = cluster.clients[0]

    def app():
        for i in range(30):
            fid = yield from fs.create(f"f{i}")
            yield from fs.write(fid, 0, 32 * 1024)

    env.process(app())
    state = crash_cluster(cluster, at_time=0.05)
    rebuilt = rebuild_free_space(state.namespace, state.space)
    report = fsck(state.namespace, rebuilt)
    assert report.clean, report.summary()
    # The rebuild agrees with GC-based recovery on the free total.
    recover(state)
    assert rebuilt.free_bytes == state.space.free_bytes
