"""Property-based crash testing: random crash instants, random seeds.

The strongest form of the paper's §III claim: under ordered writes
(delayed commit included), *no* crash instant produces dangling
metadata, and recovery always rebalances the allocator.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import OpMetrics
from repro.consistency import check_ordered_writes, crash_cluster, recover
from repro.fs import ClusterConfig, RedbudCluster
from repro.workloads import XcdnWorkload
from repro.workloads.spec import WorkloadContext


def launch(commit_mode, seed, delegation):
    config = ClusterConfig(
        num_clients=2,
        commit_mode=commit_mode,
        space_delegation=delegation,
    )
    cluster = RedbudCluster(config, seed=seed)
    env = cluster.env
    workload = XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=4, threads_per_client=2
    )
    shared = {}
    contexts = [
        WorkloadContext(
            env=env,
            fs=cluster.clients[i],
            rng=cluster.root_rng.stream("wl", i),
            client_index=i,
            num_clients=2,
            metrics=OpMetrics(),
            shared=shared,
        )
        for i in range(2)
    ]
    setups = [env.process(workload.setup(ctx)) for ctx in contexts]
    env.run(until=env.all_of(setups))

    def forever(ctx, tid):
        while True:
            yield from workload.op(ctx, tid)

    for ctx in contexts:
        for tid in range(workload.threads_per_client):
            env.process(forever(ctx, tid))
    return cluster


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    crash_after=st.floats(0.005, 0.6),
    delegation=st.booleans(),
)
def test_delayed_commit_invariant_under_random_crashes(
    seed, crash_after, delegation
):
    cluster = launch("delayed", seed, delegation)
    state = crash_cluster(cluster, at_time=cluster.env.now + crash_after)
    report = check_ordered_writes(
        state.namespace, state.stable, state.space
    )
    assert report.consistent, report.summary()
    recovery = recover(state)
    assert recovery.recovered_consistent, [
        v.detail for v in recovery.post_check.violations
    ]


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), crash_after=st.floats(0.005, 0.4))
def test_synchronous_commit_invariant_under_random_crashes(
    seed, crash_after
):
    cluster = launch("synchronous", seed, False)
    state = crash_cluster(cluster, at_time=cluster.env.now + crash_after)
    report = check_ordered_writes(
        state.namespace, state.stable, state.space
    )
    assert report.consistent, report.summary()
