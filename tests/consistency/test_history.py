"""Oplog replay + trace-ordering checks (repro.consistency.history)."""

from repro.consistency import check_commit_ordering, check_history
from repro.mds.extent import EXTENT_COMMITTED, Extent
from repro.mds.namespace import Namespace
from repro.obs.tracer import Tracer


def _ext(fo, ln, vo):
    return Extent(
        file_offset=fo,
        length=ln,
        device_id=0,
        volume_offset=vo,
        state=EXTENT_COMMITTED,
    )


def _live_with_oplog():
    """A namespace and the oplog that honestly describes it."""
    ns = Namespace()
    a = ns.create("a", 1.0)
    ns.commit_extents(a.file_id, [_ext(0, 4096, 8192)], 2.0)
    b = ns.create("b", 3.0)
    ns.commit_extents(b.file_id, [_ext(0, 4096, 16384)], 4.0)
    ns.unlink(b.file_id)
    oplog = [
        ("create", a.file_id, "a", 1.0),
        ("commit", a.file_id, ((0, 4096, 8192),), 2.0),
        ("create", b.file_id, "b", 3.0),
        ("commit", b.file_id, ((0, 4096, 16384),), 4.0),
        ("unlink", b.file_id, 5.0),
    ]
    return ns, oplog


def test_faithful_oplog_is_consistent():
    ns, oplog = _live_with_oplog()
    report = check_history(oplog, ns)
    assert report.consistent
    assert report.ops_replayed == 5
    assert "consistent" in report.summary()


def test_missing_live_file_detected():
    ns, oplog = _live_with_oplog()
    live_file = next(iter(ns.all_files()))
    ns.unlink(live_file.file_id)  # live state loses a journalled file
    report = check_history(oplog, ns)
    assert not report.consistent
    assert any("missing from live" in v for v in report.violations)


def test_unjournalled_live_file_detected():
    ns, oplog = _live_with_oplog()
    ns.create("ghost", 9.0)  # live mutation the journal never saw
    report = check_history(oplog, ns)
    assert not report.consistent
    assert any("absent from journal" in v for v in report.violations)


def test_extent_divergence_detected():
    ns, oplog = _live_with_oplog()
    live_file = next(iter(ns.all_files()))
    # Re-map the live extent somewhere the journal doesn't say.
    ns.commit_extents(live_file.file_id, [_ext(0, 4096, 65536)], 9.0)
    report = check_history(oplog, ns)
    assert not report.consistent
    assert any("extent map diverged" in v for v in report.violations)


def test_double_applied_commit_diverges():
    """Replaying a doubled commit entry must be visible as divergence
    when the duplicate displaced good data (rewrite semantics), and the
    oplog itself carries both applies."""
    ns, oplog = _live_with_oplog()
    # The journal saw the commit twice (a double apply) but the live
    # namespace holds one mapping at a *different* offset than the
    # replayed final state.
    doubled = oplog + [("commit", 1, ((0, 4096, 32768),), 6.0)]
    report = check_history(doubled, ns)
    assert not report.consistent


def test_commit_before_create_flagged():
    report = check_history(
        [("commit", 7, ((0, 4096, 0),), 1.0)], Namespace()
    )
    assert any("precedes its create" in v for v in report.violations)


def test_id_skew_flagged():
    ns = Namespace()
    meta = ns.create("a", 1.0)
    report = check_history([("create", 99, "a", 1.0)], ns)
    assert meta.file_id != 99
    assert any("id skew" in v for v in report.violations)


# -- trace-level ordering --------------------------------------------------


def test_ordering_clean_when_writepage_precedes_commit():
    tracer = Tracer()
    wp = tracer.begin("writepage", "client", update_ids=(1,))
    wp.end = 0.5
    commit = tracer.begin("rpc:commit", "net", update_ids=(1,))
    commit.start = 1.0
    assert check_commit_ordering(tracer) == []


def test_ordering_violation_when_commit_sent_first():
    tracer = Tracer()
    wp = tracer.begin("writepage", "client", update_ids=(1,))
    wp.start, wp.end = 0.0, 2.0
    commit = tracer.begin("rpc:commit", "net", update_ids=(1,))
    commit.start = 1.0  # sent before the data landed
    violations = check_commit_ordering(tracer)
    assert violations and "before writepage completed" in violations[0]


def test_ordering_violation_when_writepage_never_finishes():
    tracer = Tracer()
    tracer.begin("writepage", "client", update_ids=(3,))  # never ended
    commit = tracer.begin("rpc:commit", "net", update_ids=(3,))
    commit.start = 1.0
    violations = check_commit_ordering(tracer)
    assert violations and "never" in violations[0]


def test_uncommitted_updates_are_not_checked():
    tracer = Tracer()
    tracer.begin("writepage", "client", update_ids=(9,))  # unfinished
    # No commit RPC for update 9: losing the write is allowed (orphan).
    assert check_commit_ordering(tracer) == []
