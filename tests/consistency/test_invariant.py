"""Unit tests for the ordered-writes invariant checker."""

from repro.consistency.invariant import check_ordered_writes
from repro.mds.allocation import SpaceManager
from repro.mds.extent import Extent
from repro.mds.namespace import Namespace
from repro.util.intervals import IntervalSet


def ext(fo, ln, vo):
    return Extent(file_offset=fo, length=ln, device_id=0, volume_offset=vo)


def test_empty_namespace_is_consistent():
    report = check_ordered_writes(Namespace(), IntervalSet())
    assert report.consistent
    assert report.files_checked == 0
    assert "CONSISTENT" in report.summary()


def test_committed_extent_with_stable_data_passes():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(meta.file_id, [ext(0, 4096, 1000)], now=1.0)
    stable = IntervalSet([(1000, 5096)])
    report = check_ordered_writes(ns, stable)
    assert report.consistent
    assert report.extents_checked == 1
    assert report.committed_bytes == 4096


def test_dangling_metadata_detected():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(meta.file_id, [ext(0, 4096, 1000)], now=1.0)
    report = check_ordered_writes(ns, IntervalSet())  # nothing stable
    assert not report.consistent
    assert report.violations[0].kind == "dangling-metadata"
    assert "4096 unstable bytes" in report.violations[0].detail


def test_partially_stable_extent_detected():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(meta.file_id, [ext(0, 4096, 0)], now=1.0)
    stable = IntervalSet([(0, 2048)])  # only half landed
    report = check_ordered_writes(ns, stable)
    assert not report.consistent
    assert "2048 unstable bytes" in report.violations[0].detail


def test_orphan_data_is_not_a_violation():
    """Stable data without metadata (orphans) is acceptable per §I."""
    ns = Namespace()
    sm = SpaceManager(volume_size=1 << 20, num_groups=1)
    sm.alloc(8192, client_id=0)  # orphan: allocated, never committed
    stable = IntervalSet([(0, 8192)])  # its data even hit the disk
    report = check_ordered_writes(ns, stable, sm)
    assert report.consistent
    assert report.orphan_bytes == 8192


def test_extent_overlap_detected():
    ns = Namespace()
    a = ns.create("a", now=0.0)
    b = ns.create("b", now=0.0)
    ns.commit_extents(a.file_id, [ext(0, 4096, 0)], now=1.0)
    ns.commit_extents(b.file_id, [ext(0, 4096, 2048)], now=1.0)  # overlaps a
    stable = IntervalSet([(0, 8192)])
    report = check_ordered_writes(ns, stable)
    assert not report.consistent
    assert any(v.kind == "extent-overlap" for v in report.violations)
