"""Tests for the run harness: measurement windows, results, validation."""

import pytest

from repro.fs import ClusterConfig, RedbudCluster
from repro.fs.base import RunResult
from repro.workloads import XcdnWorkload
from repro.workloads.spec import Workload, WorkloadContext, timed


class CountingWorkload(Workload):
    """Deterministic 1-op-per-10ms personality for harness tests."""

    name = "counting"
    threads_per_client = 2
    think_time = 0.0

    def op(self, ctx: WorkloadContext, thread_id: int):
        start = ctx.env.now

        def tick(env):
            yield env.timeout(0.01)
            return "ok"

        yield from timed(ctx, "tick", tick(ctx.env), nbytes=100)


def make_cluster(num_clients=2):
    return RedbudCluster(
        ClusterConfig(num_clients=num_clients, commit_mode="synchronous"),
        seed=1,
    )


def test_measurement_excludes_warmup():
    cluster = make_cluster()
    result = cluster.run_workload(
        CountingWorkload(), duration=1.0, warmup=0.5
    )
    # 2 clients x 2 threads x (1.0s / 10ms) = ~400 measured ops; the 50
    # warmup ticks per thread must not be counted.
    assert 360 <= result.ops_completed <= 404
    assert result.duration == 1.0


def test_ops_per_second_uses_duration():
    cluster = make_cluster()
    result = cluster.run_workload(CountingWorkload(), duration=2.0)
    assert result.ops_per_second == pytest.approx(
        result.ops_completed / 2.0
    )
    assert result.bytes_per_second == pytest.approx(
        result.metrics.total_bytes / 2.0
    )


def test_invalid_duration_rejected():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.run_workload(CountingWorkload(), duration=0)


def test_speedup_over_zero_baseline_rejected():
    cluster = make_cluster()
    a = cluster.run_workload(CountingWorkload(), duration=0.5)
    from repro.analysis.metrics import OpMetrics

    empty = RunResult(
        system="x", workload="y", duration=1.0, metrics=OpMetrics()
    )
    with pytest.raises(ZeroDivisionError):
        a.speedup_over(empty)


def test_latency_breakdown_accessible():
    cluster = make_cluster()
    result = cluster.run_workload(CountingWorkload(), duration=0.5)
    stats = result.latency("tick")
    assert stats.mean == pytest.approx(0.01)
    assert result.latency().count == result.ops_completed


def test_two_sequential_runs_on_one_cluster():
    """The harness supports consecutive runs (clock keeps advancing)."""
    cluster = make_cluster()
    r1 = cluster.run_workload(CountingWorkload(), duration=0.5)
    t_mid = cluster.env.now
    r2 = cluster.run_workload(CountingWorkload(), duration=0.5)
    assert cluster.env.now > t_mid
    assert r2.ops_completed > 0
    assert r1.metrics is not r2.metrics


def test_xcdn_cache_recommendation_applied():
    cluster = make_cluster()
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=5,
                      threads_per_client=2)
    cluster.run_workload(wl, duration=0.3)
    assert (
        cluster.clients[0].cache.capacity
        == wl.recommended_cache_capacity
    )
