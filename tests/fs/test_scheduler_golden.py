"""Scheduler and aggregate-client determinism at the cluster level.

Two identity contracts protect the golden digests:

- ``scheduler="calendar"`` and ``scheduler="heap"`` dispatch in the
  identical total order, so a full workload's block trace is
  bit-for-bit the same on either backend.
- ``client_processes=N`` (one node per personality) collapses to the
  legacy layout byte-identically, and any ``P < N`` is deterministic
  under a fixed seed even though it is a legitimately different system.
"""

import hashlib

from repro.fs.factory import build_cluster
from repro.workloads.xcdn import XcdnWorkload


def _digest(**kw):
    cluster = build_cluster(
        kw.pop("system", "redbud-delayed"),
        num_clients=kw.pop("num_clients", 4),
        seed=kw.pop("seed", 11),
        **kw,
    )
    cluster.run_workload(
        XcdnWorkload(file_size=32 * 1024, seed_files_per_client=6),
        duration=0.3,
        warmup=0.05,
    )
    digest = hashlib.sha256()
    for row in cluster.blktrace.to_rows():
        digest.update(repr(row).encode())
    return digest.hexdigest()


def test_calendar_and_heap_produce_identical_traces():
    assert _digest(scheduler="calendar") == _digest(scheduler="heap")


def test_aggregate_run_is_deterministic():
    """Same seed, same (N, P): identical trace."""
    a = _digest(num_clients=4, client_processes=2)
    b = _digest(num_clients=4, client_processes=2)
    assert a == b


def test_aggregate_with_p_equals_n_is_legacy_identical():
    """client_processes == num_clients takes the legacy path verbatim."""
    legacy = _digest(num_clients=4)
    collapsed = _digest(num_clients=4, client_processes=4)
    assert collapsed == legacy


def test_aggregation_diverges_but_both_schedulers_agree():
    """P < N is a different system (mux RNG draws), yet the trace is
    still scheduler-independent."""
    calendar = _digest(num_clients=4, client_processes=2)
    heap = _digest(
        num_clients=4, client_processes=2, scheduler="heap"
    )
    legacy = _digest(num_clients=4)
    assert calendar == heap
    assert calendar != legacy
