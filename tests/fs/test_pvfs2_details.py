"""PVFS2 model details: inode writes, scattered placement, read path."""

import pytest

from repro.fs import ClusterConfig, Pvfs2Cluster


def make(num_clients=2):
    return Pvfs2Cluster(
        ClusterConfig(num_clients=num_clients, commit_mode="synchronous"),
        seed=3,
    )


def run_ops(cluster, *gens):
    results = [None] * len(gens)

    def runner(idx, gen):
        results[idx] = yield from gen

    procs = [cluster.env.process(runner(i, g)) for i, g in enumerate(gens)]
    cluster.env.run(until=cluster.env.all_of(procs))
    return results


def test_small_write_pays_inode_update():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("obj")
        yield from fs.write(fid, 0, 32 * 1024)
        return fid

    run_ops(cluster, ops())
    # Data write + a 4 KB inode write in the metadata region.
    assert cluster.array.bytes_served == 32 * 1024 + 4096


def test_appended_chunks_skip_inode_update():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("obj")
        yield from fs.write(fid, 0, 32 * 1024)       # inode write
        yield from fs.write(fid, 32 * 1024, 32 * 1024)  # no inode
        return fid

    run_ops(cluster, ops())
    assert cluster.array.bytes_served == 64 * 1024 + 4096


def test_read_of_unwritten_chunk_is_short():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("obj")
        ok = yield from fs.read(fid, 0, 4096)
        return ok

    (ok,) = run_ops(cluster, ops())
    assert ok is True  # protocol-level success; zero bytes off disk
    assert cluster.array.ops_served == 0


def test_scattered_objects_land_in_upper_partition_half():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("aged")
        yield from fs.write(fid, 0, 4096, scattered=True)
        return fid

    (fid,) = run_ops(cluster, ops())
    server = next(s for s in cluster.servers if s.requests_processed)
    (volume, _length) = server._chunks[(fid, 0)]
    half = server._partition_start + server._partition_size // 2
    assert volume >= half


def test_server_cache_serves_rereads():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("obj")
        yield from fs.write(fid, 0, 32 * 1024)
        ops_before = cluster.array.ops_served
        yield from fs.read(fid, 0, 32 * 1024)
        return cluster.array.ops_served - ops_before

    (extra_disk_ops,) = run_ops(cluster, ops())
    assert extra_disk_ops == 0  # served from the data server's cache


def test_clients_have_no_real_cache():
    cluster = make()
    assert cluster.client_fs(0).cache.capacity == 4096  # stand-in only


def test_collective_flag_set():
    cluster = make()
    assert cluster.client_fs(0).supports_collective_io is True


def test_unlink_and_stat_meta_ops():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("obj")
        size = yield from fs.stat(fid)
        yield from fs.unlink(fid)
        return size

    (size,) = run_ops(cluster, ops())
    assert size == 0
