"""shards=1 is byte-identical to the pre-sharding cluster.

The sharded metadata service must be a pure superset: with one shard
the construction path, RNG stream names, transports, and fence keys
all collapse to exactly the legacy single-MDS build, so the block
trace of a golden workload is bit-for-bit what it was before the
refactor.  The digests below were captured from the unsharded
implementation; any drift here is a determinism regression.

These run real (short) workloads, so they carry the ``check`` marker
like the other heavyweight acceptance tests.
"""

import hashlib

import pytest

from repro.fs.factory import build_cluster
from repro.workloads.filebench import FileserverWorkload, VarmailWorkload
from repro.workloads.xcdn import XcdnWorkload

GOLDEN = {
    ("redbud-original", "fileserver"): (
        "e0aba651eedba87024513426d2c2190ab61f25a6049e71961b0846a855834ca0"
    ),
    ("redbud-delayed", "varmail"): (
        "7b344555dd2b09f7e0bb466180bab05b39920fe475ffa5f5e179b7f0cb1cd433"
    ),
    ("redbud-original", "xcdn-32K"): (
        "ba1736842b581cdf38c14f6d153bfb8e0fa59ae9540d86382d45890ea0e1e0ce"
    ),
    ("redbud-delayed", "xcdn-32K"): (
        "f3612d92229816235f0bab0aee6d179d20dc2ea67a5f095355a692944e65ccc9"
    ),
    ("redbud-delayed", "xcdn-1M"): (
        "4539524e2704a6485ea80f5cf56de8d7a8e8f535f323e84ed0ccea086fbf2382"
    ),
}


def _workload(name):
    if name == "fileserver":
        return FileserverWorkload(seed_files_per_client=15)
    if name == "varmail":
        return VarmailWorkload(seed_files_per_client=15)
    if name == "xcdn-32K":
        return XcdnWorkload(file_size=32 * 1024, seed_files_per_client=25)
    if name == "xcdn-1M":
        return XcdnWorkload(file_size=1024 * 1024, seed_files_per_client=8)
    raise ValueError(name)


def _trace_digest(system, workload_name, shards=None):
    kw = {} if shards is None else {"shards": shards}
    cluster = build_cluster(system, num_clients=3, seed=11, **kw)
    cluster.run_workload(_workload(workload_name), duration=0.4, warmup=0.1)
    digest = hashlib.sha256()
    for row in cluster.blktrace.to_rows():
        digest.update(repr(row).encode())
    return digest.hexdigest()


@pytest.mark.check
@pytest.mark.parametrize("system,workload", sorted(GOLDEN))
def test_single_shard_blktrace_matches_golden(system, workload):
    assert _trace_digest(system, workload) == GOLDEN[(system, workload)]


@pytest.mark.check
def test_explicit_shards_1_is_also_identical():
    """Passing --shards 1 explicitly must take the same legacy path."""
    key = ("redbud-delayed", "varmail")
    assert _trace_digest(*key, shards=1) == GOLDEN[key]


def test_two_shards_diverges_but_stays_deterministic():
    """shards=2 is a different system (different placement), so the
    trace legitimately differs -- but it must be self-deterministic."""
    key = ("redbud-delayed", "xcdn-32K")
    a = _trace_digest(*key, shards=2)
    b = _trace_digest(*key, shards=2)
    assert a == b
    assert a != GOLDEN[key]
