"""Tests for cluster configuration and the system factory."""

import pytest

from repro.fs import ClusterConfig, Nfs3Cluster, Pvfs2Cluster, RedbudCluster
from repro.fs.factory import SYSTEMS, build_cluster


def test_default_config_matches_paper_testbed():
    config = ClusterConfig()
    assert config.num_clients == 7
    assert config.delegation_chunk == 16 * 1024 * 1024
    assert config.thread_pool.max_threads == 9
    assert config.link.bandwidth == 125e6  # 1 Gbps


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(num_clients=0)
    with pytest.raises(ValueError):
        ClusterConfig(commit_mode="eventual")
    with pytest.raises(ValueError):
        ClusterConfig(commit_mode="synchronous", space_delegation=True)


def test_factory_methods_produce_paper_configs():
    orig = ClusterConfig.original_redbud(num_clients=3)
    assert orig.commit_mode == "synchronous"
    assert not orig.space_delegation
    delayed = ClusterConfig.delayed_commit(num_clients=3)
    assert delayed.commit_mode == "delayed"
    assert not delayed.space_delegation
    deleg = ClusterConfig.space_delegation_config(num_clients=3)
    assert deleg.commit_mode == "delayed"
    assert deleg.space_delegation


def test_build_cluster_all_systems():
    for system in SYSTEMS:
        cluster = build_cluster(system, num_clients=2, seed=1)
        assert cluster.num_clients == 2
        assert cluster.client_fs(0) is not None
        assert cluster.client_fs(1) is not cluster.client_fs(0)
    with pytest.raises(ValueError):
        build_cluster("gfs")


def test_build_redbud_variants():
    orig = build_cluster("redbud-original", num_clients=2)
    assert isinstance(orig, RedbudCluster)
    assert orig.config.commit_mode == "synchronous"
    delayed = build_cluster("redbud-delayed", num_clients=2)
    assert delayed.config.commit_mode == "delayed"
    assert delayed.config.space_delegation
    assert delayed.clients[0].delegation is not None


def test_build_baselines():
    assert isinstance(build_cluster("nfs3", num_clients=2), Nfs3Cluster)
    assert isinstance(build_cluster("pvfs2", num_clients=2), Pvfs2Cluster)
