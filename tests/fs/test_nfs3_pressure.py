"""NFS3 server behaviour under memory pressure and aged placement."""

import pytest

from repro.fs import ClusterConfig, Nfs3Cluster


def make(num_clients=2, **server_kw):
    cluster = Nfs3Cluster(
        ClusterConfig(num_clients=num_clients, commit_mode="synchronous"),
        seed=3,
    )
    for key, value in server_kw.items():
        setattr(cluster.server, key, value)
    return cluster


def run_ops(cluster, *gens):
    results = [None] * len(gens)

    def runner(idx, gen):
        results[idx] = yield from gen

    procs = [cluster.env.process(runner(i, g)) for i, g in enumerate(gens)]
    cluster.env.run(until=cluster.env.all_of(procs))
    return results


def test_write_throttle_forces_stable_writes():
    cluster = make()
    cluster.server.dirty_limit = 64 * 1024  # tiny
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("big")
        for i in range(8):
            yield from fs.write(fid, i * 64 * 1024, 64 * 1024)
        return fid

    run_ops(cluster, ops())
    # The server could not buffer 512 KB: most of it was force-flushed.
    assert cluster.server.array.bytes_served >= 256 * 1024
    assert cluster.server.cache.dirty_bytes <= 2 * 64 * 1024


def test_unthrottled_write_stays_buffered():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("f")
        yield from fs.write(fid, 0, 128 * 1024)
        return fid

    run_ops(cluster, ops())
    assert cluster.server.array.ops_served == 0
    assert cluster.server.cache.dirty_bytes == 128 * 1024


def test_scattered_files_flush_to_upper_half():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("aged")
        yield from fs.write(fid, 0, 4096, scattered=True)
        yield from fs.fsync(fid)
        return fid

    (fid,) = run_ops(cluster, ops())
    extents = cluster.server._extents[fid]
    half = cluster.server.volume_size // 2
    assert all(vol >= half for _f, vol, _l in extents)


def test_sequential_files_flush_to_lower_half():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("hot")
        yield from fs.write(fid, 0, 4096)
        yield from fs.fsync(fid)
        return fid

    (fid,) = run_ops(cluster, ops())
    extents = cluster.server._extents[fid]
    half = cluster.server.volume_size // 2
    assert all(vol < half for _f, vol, _l in extents)


def test_commit_writes_journal_barrier():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("f")
        yield from fs.write(fid, 0, 4096)
        yield from fs.fsync(fid)
        return fid

    run_ops(cluster, ops())
    # Data flush + the 4 KB journal write.
    assert cluster.server.array.bytes_served == 4096 + 4096


def test_journal_slots_rotate_within_region():
    cluster = make()
    s = cluster.server
    slots = [s._next_journal_slot() for _ in range(1000)]
    assert all(0 <= slot < s._journal_region for slot in slots)
    assert len(set(slots)) > 1


def test_duplicate_create_returns_same_id():
    cluster = make()
    fs = cluster.client_fs(0)

    def ops():
        a = yield from fs.create("same")
        b = yield from fs.create("same")
        return a, b

    ((a, b),) = run_ops(cluster, ops())
    assert a == b
