"""Pre-refactor golden digests: the effects boundary changed nothing.

The three digests below were recorded on the tree *before* the protocol
layer was ported from ``repro.sim`` to :class:`repro.core.effects`.
A fixed-seed workload through :class:`repro.sim.effects.SimEffects`
must still produce the byte-identical block trace: the kernel move
preserved class identity (``repro.sim.events.Event`` *is*
``repro.core.kernel.events.Event``), so any drift here means the
refactor altered scheduling order or RNG draws, not just module paths.
"""

import hashlib

from repro.core.effects import Effects
from repro.fs.factory import build_cluster
from repro.workloads.xcdn import XcdnWorkload

# sha256 over repr() of every blktrace row of the standard fixed-seed
# run (num_clients=4, seed=11, 32 KiB files, 6 seed files per client,
# duration 0.3 s after 0.05 s warmup), recorded pre-refactor.
GOLDEN = {
    "redbud-delayed": (
        "1db28146ca57e1254a67fbb9ca0b32421885f2e0bf3db879d35443e91afde53e"
    ),
    "redbud-delayed-shards2": (
        "12512764744b61ca1951520d0cb4c402ba8a9b4da62ab79b9c7808d44ec612a7"
    ),
    "redbud-original": (
        "ee37ff87736331481d6e2705e326d32f5843a367ec6985d8dee1bb0a924a9cea"
    ),
}


def _run(system, **kw):
    cluster = build_cluster(system, num_clients=4, seed=11, **kw)
    cluster.run_workload(
        XcdnWorkload(file_size=32 * 1024, seed_files_per_client=6),
        duration=0.3,
        warmup=0.05,
    )
    return cluster


def _digest(cluster):
    digest = hashlib.sha256()
    for row in cluster.blktrace.to_rows():
        digest.update(repr(row).encode())
    return digest.hexdigest()


def test_delayed_commit_trace_matches_pre_refactor_golden():
    cluster = _run("redbud-delayed")
    assert _digest(cluster) == GOLDEN["redbud-delayed"]
    # The cluster runs on the effects interface, not on a sim-only API.
    assert isinstance(cluster.env, Effects)


def test_sharded_delayed_trace_matches_pre_refactor_golden():
    cluster = _run("redbud-delayed", shards=2)
    assert _digest(cluster) == GOLDEN["redbud-delayed-shards2"]


def test_original_protocol_trace_matches_pre_refactor_golden():
    cluster = _run("redbud-original")
    assert _digest(cluster) == GOLDEN["redbud-original"]


def test_sim_substrate_is_an_effects_subclass():
    from repro.sim import Environment
    from repro.sim.effects import SimEffects

    assert issubclass(SimEffects, Environment)
    assert issubclass(Environment, Effects)
    env = SimEffects()
    assert env.now == 0.0
