"""replication=none is byte-identical to the unreplicated cluster.

The replicated storage group and CURP witnesses are a strict opt-in:
with ``replication="none"`` no group object is built, no RNG stream is
touched, and the disk serve loop takes the exact legacy path -- so the
block trace of a golden workload is bit-for-bit what it was before this
subsystem existed.  The digests are shared with the sharding golden
test (both hold the same seed-11 traces).

Marked ``check`` like the other heavyweight golden tests.
"""

import hashlib

import pytest

from repro.fs.factory import build_cluster
from repro.workloads.filebench import VarmailWorkload
from repro.workloads.xcdn import XcdnWorkload

from tests.fs.test_sharding_golden import GOLDEN


def _workload(name):
    if name == "varmail":
        return VarmailWorkload(seed_files_per_client=15)
    if name == "xcdn-32K":
        return XcdnWorkload(file_size=32 * 1024, seed_files_per_client=25)
    raise ValueError(name)


def _trace_digest(system, workload_name, replication):
    cluster = build_cluster(
        system, num_clients=3, seed=11, replication=replication
    )
    cluster.run_workload(_workload(workload_name), duration=0.4, warmup=0.1)
    digest = hashlib.sha256()
    for row in cluster.blktrace.to_rows():
        digest.update(repr(row).encode())
    return digest.hexdigest()


@pytest.mark.check
@pytest.mark.parametrize(
    "system,workload",
    [("redbud-delayed", "varmail"), ("redbud-original", "xcdn-32K")],
)
def test_replication_none_blktrace_matches_golden(system, workload):
    key = (system, workload)
    assert _trace_digest(*key, replication="none") == GOLDEN[key]


@pytest.mark.check
@pytest.mark.parametrize("replication", ["mirror3", "block4-2"])
def test_replicated_trace_diverges_but_stays_deterministic(replication):
    """A replicated cluster is a different system (secondary-ack waits
    perturb timing), so the trace legitimately differs from the golden
    -- but it must be self-deterministic."""
    key = ("redbud-delayed", "varmail")
    a = _trace_digest(*key, replication=replication)
    b = _trace_digest(*key, replication=replication)
    assert a == b
    assert a != GOLDEN[key]


def test_replication_rejected_on_non_redbud():
    with pytest.raises(ValueError, match="redbud"):
        build_cluster("nfs3", num_clients=3, seed=1, replication="mirror3")


def test_unknown_arrangement_rejected():
    with pytest.raises(ValueError, match="unknown replication"):
        build_cluster(
            "redbud-delayed", num_clients=3, seed=1, replication="raid9"
        )
