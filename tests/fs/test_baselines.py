"""Behavioural tests for the NFS3 and PVFS2 baseline models."""

import pytest

from repro.fs import ClusterConfig, Nfs3Cluster, Pvfs2Cluster


def make_nfs(num_clients=2):
    return Nfs3Cluster(
        ClusterConfig(num_clients=num_clients, commit_mode="synchronous"),
        seed=3,
    )


def make_pvfs(num_clients=2):
    return Pvfs2Cluster(
        ClusterConfig(num_clients=num_clients, commit_mode="synchronous"),
        seed=3,
    )


def run_ops(cluster, *gens):
    results = [None] * len(gens)

    def runner(idx, gen):
        results[idx] = yield from gen

    procs = [
        cluster.env.process(runner(i, g)) for i, g in enumerate(gens)
    ]
    cluster.env.run(until=cluster.env.all_of(procs))
    return results


# -- NFS3 ----------------------------------------------------------------


def test_nfs3_write_read_roundtrip():
    cluster = make_nfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        yield from fs.write(fid, 0, 8192)
        hit = yield from fs.read(fid, 0, 8192)
        return (fid, hit)

    ((fid, hit),) = run_ops(cluster, ops())
    assert hit is True
    assert cluster.server.requests_processed >= 2


def test_nfs3_write_is_buffered_not_durable():
    """WRITE replies come back before any disk I/O (unstable writes)."""
    cluster = make_nfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        yield from fs.write(fid, 0, 32 * 1024)
        return fid

    run_ops(cluster, ops())
    assert cluster.server.array.ops_served == 0  # nothing flushed yet


def test_nfs3_commit_flushes_to_disk():
    cluster = make_nfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        yield from fs.write(fid, 0, 32 * 1024)
        yield from fs.fsync(fid)
        return fid

    run_ops(cluster, ops())
    # Data flush plus the journal barrier write.
    assert cluster.server.array.ops_served >= 2
    assert cluster.server.array.bytes_served >= 32 * 1024


def test_nfs3_background_flusher_bounds_dirty_data():
    cluster = make_nfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        yield from fs.write(fid, 0, 64 * 1024)
        return fid

    run_ops(cluster, ops())
    cluster.env.run(until=cluster.env.now + 2.0)  # let the flusher run
    assert cluster.server.array.bytes_served >= 64 * 1024


def test_nfs3_cross_client_read_through_server():
    cluster = make_nfs()
    a, b = cluster.client_fs(0), cluster.client_fs(1)
    box = {}

    def writer():
        fid = yield from a.create("shared")
        yield from a.write(fid, 0, 4096)
        yield from a.fsync(fid)
        box["fid"] = fid

    run_ops(cluster, writer())

    def reader():
        hit = yield from b.read(box["fid"], 0, 4096)
        return hit

    (hit,) = run_ops(cluster, reader())
    assert hit is True


def test_nfs3_unlink_and_stat():
    cluster = make_nfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        meta = yield from fs.stat(fid)
        yield from fs.unlink(fid)
        gone = yield from fs.stat(fid)
        return meta, gone

    ((meta, gone),) = run_ops(cluster, ops())
    assert meta is not None and meta.file_id is not None
    assert gone is None


def test_nfs3_shared_nic_serialises_traffic():
    """Concurrent big writes from two clients share one server NIC."""
    cluster = make_nfs()
    a, b = cluster.client_fs(0), cluster.client_fs(1)
    done = {}

    def writer(tag, fs):
        fid = yield from fs.create(tag)
        yield from fs.write(fid, 0, 4 * 1024 * 1024)
        done[tag] = cluster.env.now

    run_ops(cluster, writer("a", a), writer("b", b))
    # 8 MB over a 125 MB/s shared link: at least ~64 ms total.
    assert max(done.values()) > 0.06


# -- PVFS2 ----------------------------------------------------------------


def test_pvfs2_write_read_roundtrip():
    cluster = make_pvfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        yield from fs.write(fid, 0, 128 * 1024)
        hit = yield from fs.read(fid, 0, 128 * 1024)
        return hit

    (hit,) = run_ops(cluster, ops())
    assert hit is True


def test_pvfs2_write_through_hits_disk():
    cluster = make_pvfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        yield from fs.write(fid, 0, 32 * 1024)
        return fid

    run_ops(cluster, ops())
    # Data landed on the array before the write returned (plus inode).
    assert cluster.array.bytes_served >= 32 * 1024


def test_pvfs2_striping_spreads_large_writes():
    cluster = make_pvfs(num_clients=3)
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("big")
        yield from fs.write(fid, 0, 3 * 1024 * 1024)
        return fid

    run_ops(cluster, ops())
    touched = [s for s in cluster.servers if s.requests_processed > 0]
    assert len(touched) >= 2  # 1 MB stripes hit several data servers


def test_pvfs2_fsync_is_noop():
    cluster = make_pvfs()
    fs = cluster.client_fs(0)

    def ops():
        fid = yield from fs.create("a")
        yield from fs.write(fid, 0, 4096)
        before = cluster.env.now
        yield from fs.fsync(fid)
        return cluster.env.now - before

    (elapsed,) = run_ops(cluster, ops())
    assert elapsed == 0.0  # write-through: nothing to flush


def test_pvfs2_create_costs_multiple_metadata_rtts():
    cluster = make_pvfs()
    fs = cluster.client_fs(0)

    def ops():
        t0 = cluster.env.now
        yield from fs.create("a")
        return cluster.env.now - t0

    (elapsed,) = run_ops(cluster, ops())
    # Three sequential metadata RPCs: at least 6 propagation delays.
    assert elapsed > 5 * 60e-6
