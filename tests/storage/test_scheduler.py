"""Tests for the elevator scheduler and request merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.events import Event
from repro.storage.scheduler import BlockRequest, ElevatorScheduler


def make_request(env, start, length, op="write", client=0, file_id=0):
    return BlockRequest(
        op=op,
        start=start,
        length=length,
        client_id=client,
        file_id=file_id,
        submit_time=env.now,
        completion=Event(env),
    )


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def sched(env):
    return ElevatorScheduler(env, client_id=0)


def test_request_validation(env):
    with pytest.raises(ValueError):
        make_request(env, -1, 10)
    with pytest.raises(ValueError):
        make_request(env, 0, 0)
    with pytest.raises(ValueError):
        BlockRequest(
            op="scrub",
            start=0,
            length=1,
            client_id=0,
            file_id=0,
            submit_time=0,
            completion=Event(env),
        )


def test_back_merge(env, sched):
    a = make_request(env, 0, 4096)
    b = make_request(env, 4096, 4096)
    sched.submit(a)
    sched.submit(b)
    assert len(sched) == 1
    assert sched.stats.merges == 1
    merged = sched.pop_next(0)
    assert merged is a
    assert merged.length == 8192
    assert merged.merged == [b]
    assert merged.count_all() == 2


def test_front_merge(env, sched):
    a = make_request(env, 4096, 4096)
    b = make_request(env, 0, 4096)
    sched.submit(a)
    sched.submit(b)
    assert len(sched) == 1
    assert sched.stats.merges == 1
    merged = sched.pop_next(0)
    assert merged is b
    assert merged.start == 0 and merged.length == 8192


def test_non_contiguous_do_not_merge(env, sched):
    sched.submit(make_request(env, 0, 4096))
    sched.submit(make_request(env, 8192, 4096))
    assert len(sched) == 2
    assert sched.stats.merges == 0


def test_mixed_ops_do_not_merge(env, sched):
    sched.submit(make_request(env, 0, 4096, op="write"))
    sched.submit(make_request(env, 4096, 4096, op="read"))
    assert len(sched) == 2


def test_merge_respects_size_cap(env):
    sched = ElevatorScheduler(Environment(), 0, max_merge_bytes=8192)
    env2 = sched.env
    sched.submit(make_request(env2, 0, 8192))
    sched.submit(make_request(env2, 8192, 4096))
    assert len(sched) == 2  # would exceed the cap


def test_chain_of_merges(env, sched):
    for i in range(8):
        sched.submit(make_request(env, i * 4096, 4096))
    assert len(sched) == 1
    req = sched.pop_next(0)
    assert req.length == 8 * 4096
    assert req.count_all() == 8
    assert sched.stats.merge_ratio == 8.0


def test_complete_all_fires_every_submission(env, sched):
    reqs = [make_request(env, i * 4096, 4096) for i in range(4)]
    for r in reqs:
        sched.submit(r)
    merged = sched.pop_next(0)
    merged.complete_all()
    env.run()
    assert all(r.completion.processed for r in reqs)


def test_clook_order(env, sched):
    for start in [40960, 8192, 81920, 0]:
        sched.submit(make_request(env, start, 4096))
    # Head at 10000: next >= 10000 is 40960, then 81920, wrap to 0, 8192.
    order = [sched.pop_next(10000).start for _ in range(2)]
    assert order == [40960, 81920]
    order2 = [sched.pop_next(81920 + 4096).start for _ in range(2)]
    assert order2 == [0, 8192]


def test_pop_empty_raises(sched):
    with pytest.raises(IndexError):
        sched.pop_next(0)


def test_on_submit_callback(env, sched):
    calls = []
    sched.on_submit = lambda: calls.append(1)
    sched.submit(make_request(env, 0, 4096))
    sched.submit(make_request(env, 4096, 4096))  # merges, still notifies
    assert len(calls) == 2


def test_merge_ratio_with_no_traffic(sched):
    assert sched.stats.merge_ratio == 1.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 8)),
        min_size=1,
        max_size=40,
    )
)
def test_merging_conserves_bytes_and_requests(spec):
    """Merging must never lose or duplicate requests or bytes."""
    env = Environment()
    sched = ElevatorScheduler(env, 0, max_merge_bytes=1 << 30)
    total_bytes = 0
    page = 4096
    for slot, pages in spec:
        req = make_request(env, slot * page, pages * page)
        total_bytes += pages * page
        sched.submit(req)
    popped = []
    head = 0
    while len(sched):
        req = sched.pop_next(head)
        head = req.end
        popped.append(req)
    assert sum(r.length for r in popped) >= total_bytes  # overlaps may pad
    assert sum(r.count_all() for r in popped) == len(spec)
    assert sched.stats.submitted == len(spec)
    assert sched.stats.dispatched == len(popped)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=50, unique=True)
)
def test_disjoint_submissions_conserve_exact_bytes(slots):
    """With non-overlapping requests, merged bytes match submitted bytes."""
    env = Environment()
    sched = ElevatorScheduler(env, 0, max_merge_bytes=1 << 30)
    page = 4096
    for slot in slots:
        sched.submit(make_request(env, slot * page, page))
    popped = []
    head = 0
    while len(sched):
        req = sched.pop_next(head)
        head = req.end
        popped.append(req)
    assert sum(r.length for r in popped) == len(slots) * page
    assert sum(r.count_all() for r in popped) == len(slots)
