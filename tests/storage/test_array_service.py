"""Disk-array service policies: parallel spindles, read preference."""

import pytest

from repro.sim import Environment, StreamRNG
from repro.storage.blockdev import BlockDevice
from repro.storage.disk import DiskArray, DiskParameters


def make_array(env, num_spindles=4, write_plug=0.0, **kw):
    params = DiskParameters(
        num_spindles=num_spindles, write_plug=write_plug, **kw
    )
    return DiskArray(env, params, StreamRNG(1).stream("d"))


def test_spindles_service_in_parallel():
    """N requests on N different spindles take ~one service time."""

    def makespan(num_spindles):
        env = Environment()
        array = make_array(env, num_spindles=num_spindles)
        dev = BlockDevice(env, 0, array)
        params = array.params
        row = params.stripe * params.num_spindles

        def proc(env):
            events = []
            for i in range(4):
                # One request per stripe of row 0: distinct spindles
                # when num_spindles >= 4.
                addr = (i % params.num_spindles) * params.stripe
                events.append(
                    dev.submit_write(addr, 256 * 1024, 1, sync=True)
                )
            for ev in events:
                yield ev

        env.process(proc(env))
        env.run()
        return env.now

    assert makespan(4) < 0.5 * makespan(1)


def test_read_preferred_over_queued_writes():
    env = Environment()
    array = make_array(env, num_spindles=1)
    dev = BlockDevice(env, 0, array)
    done = {}

    def writes(env):
        # A pile of sync writes ahead of the read in submission order.
        events = [
            dev.submit_write(i * 1024 * 1024, 256 * 1024, 1, sync=True)
            for i in range(10)
        ]
        for ev in events:
            yield ev
        done["writes"] = env.now

    def read(env):
        yield env.timeout(0.001)  # arrive after the writes queued
        yield dev.submit_read(64 * 1024 * 1024, 4096, 2)
        done["read"] = env.now

    env.process(writes(env))
    env.process(read(env))
    env.run()
    # The read overtook most of the write backlog.
    assert done["read"] < done["writes"]


def test_write_starvation_bound():
    """A steady read stream cannot starve writes forever."""
    env = Environment()
    array = make_array(env, num_spindles=1)
    dev = BlockDevice(env, 0, array)
    done = {}

    def reader(env):
        while env.now < 0.5:
            yield dev.submit_read(
                int(env.now * 1e9) % (1 << 30), 4096, 2
            )

    def writer(env):
        yield env.timeout(0.001)
        yield dev.submit_write(1 << 30, 4096, 1, sync=True)
        done["write"] = env.now

    env.process(reader(env))
    env.process(writer(env))
    env.run(until=0.5)
    assert "write" in done
    assert done["write"] < 0.1


def test_plugged_write_dispatches_at_expiry_without_new_traffic():
    env = Environment()
    array = make_array(env, num_spindles=1, write_plug=0.02)
    dev = BlockDevice(env, 0, array)
    done = {}

    def proc(env):
        ev = dev.submit_write(0, 4096, 1)  # async: plugged
        yield ev
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    assert done["t"] == pytest.approx(0.02, abs=0.005)


def test_sync_write_skips_plug():
    env = Environment()
    array = make_array(env, num_spindles=1, write_plug=0.02)
    dev = BlockDevice(env, 0, array)
    done = {}

    def proc(env):
        yield dev.submit_write(0, 4096, 1, sync=True)
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    assert done["t"] < 0.005


def test_read_interrupts_plug_wait():
    """A read arriving while the spindle waits out a plug is served at
    once (the any_of wakeup)."""
    env = Environment()
    array = make_array(env, num_spindles=1, write_plug=0.05)
    dev = BlockDevice(env, 0, array)
    done = {}

    def writer(env):
        ev = dev.submit_write(0, 4096, 1)  # plugged for 50ms
        yield ev
        done["write"] = env.now

    def reader(env):
        yield env.timeout(0.005)
        yield dev.submit_read(1 << 20, 4096, 2)
        done["read"] = env.now

    env.process(writer(env))
    env.process(reader(env))
    env.run()
    assert done["read"] < 0.03  # not delayed to the plug expiry
    assert done["write"] >= 0.05


def test_stable_tracking_only_after_service():
    env = Environment()
    array = make_array(env, num_spindles=1)
    dev = BlockDevice(env, 0, array)

    def proc(env):
        ev = dev.submit_write(0, 8192, 1, sync=True)
        assert not array.stable.contains(0, 8192)
        yield ev
        assert array.stable.contains(0, 8192)

    p = env.process(proc(env))
    env.run(until=p)


def test_reads_never_marked_stable():
    env = Environment()
    array = make_array(env, num_spindles=1)
    dev = BlockDevice(env, 0, array)

    def proc(env):
        yield dev.submit_read(0, 4096, 1)

    p = env.process(proc(env))
    env.run(until=p)
    assert not array.stable.overlaps(0, 4096)
