"""Tests for trace collection and seek analysis."""

from repro.storage.blktrace import BlkTrace, SeekAnalysis


def rec(trace, time, start, seek, queued=1):
    trace.record(
        time=time,
        op="write",
        start=start,
        length=4096,
        seek_distance=seek,
        client_id=0,
        queued=queued,
    )


def test_empty_trace_analysis():
    analysis = BlkTrace().analyze()
    assert analysis.dispatches == 0
    assert analysis.seek_fraction == 0.0
    assert analysis.mean_run_length == 0.0


def test_series_alignment():
    t = BlkTrace()
    rec(t, 1.0, 100, 0)
    rec(t, 2.0, 200, 100)
    times, starts = t.series()
    assert list(times) == [1.0, 2.0]
    assert list(starts) == [100.0, 200.0]


def test_all_sequential():
    t = BlkTrace()
    for i in range(10):
        rec(t, float(i), i * 4096, 0)
    a = t.analyze()
    assert a.dispatches == 10
    assert a.seeks == 0
    assert a.seek_fraction == 0.0
    assert a.sequential_runs == 1
    assert a.mean_run_length == 10.0


def test_all_seeks():
    t = BlkTrace()
    for i in range(10):
        rec(t, float(i), i * 1_000_000, 500_000)
    a = t.analyze()
    assert a.seeks == 10
    assert a.seek_fraction == 1.0
    assert a.sequential_runs == 10
    assert a.mean_run_length == 1.0


def test_mixed_runs():
    t = BlkTrace()
    # seek, seq, seq | seek, seq | seek
    seeks = [100, 0, 0, 100, 0, 100]
    for i, s in enumerate(seeks):
        rec(t, float(i), i * 4096, s)
    a = t.analyze()
    assert a.sequential_runs == 3
    assert a.mean_run_length == 2.0
    assert a.total_seek_distance == 300
    assert a.max_seek_distance == 100


def test_to_rows_shape():
    t = BlkTrace()
    rec(t, 1.5, 4096, 42)
    rows = t.to_rows()
    assert rows == [(1.5, "write", 4096, 4096, 42, 0)]
