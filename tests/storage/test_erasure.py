"""Reed-Solomon erasure properties for the block4-2 arrangement.

The headline property (an ISSUE satellite): any 4 of the 6 members
reconstruct the stripe byte-for-byte, for every choice of survivors and
arbitrary payloads.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.erasure import (
    encode_stripe,
    gf_inv,
    gf_mul,
    reconstruct_stripe,
)

payloads = st.binary(min_size=0, max_size=512)


class TestField:
    def test_inverse_round_trip(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_mul_zero(self):
        assert gf_mul(0, 123) == 0
        assert gf_mul(77, 0) == 0

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)


class TestBlock42:
    def test_geometry(self):
        shards = encode_stripe(b"0123456789abcdef", k=4, m=2)
        assert len(shards) == 6
        assert len({len(s) for s in shards}) == 1

    def test_systematic_prefix(self):
        data = bytes(range(16))
        shards = encode_stripe(data, k=4, m=2)
        assert b"".join(shards[:4]) == data

    @given(payloads)
    @settings(max_examples=60, deadline=None)
    def test_any_four_of_six_reconstruct(self, data):
        shards = encode_stripe(data, k=4, m=2)
        for survivors in itertools.combinations(range(6), 4):
            shares = {i: shards[i] for i in survivors}
            assert (
                reconstruct_stripe(shares, len(data), k=4, m=2) == data
            ), f"survivors {survivors} failed to reconstruct"

    @given(payloads)
    @settings(max_examples=30, deadline=None)
    def test_double_loss_every_pattern(self, data):
        shards = encode_stripe(data, k=4, m=2)
        for lost in itertools.combinations(range(6), 2):
            shares = {
                i: shards[i] for i in range(6) if i not in lost
            }
            assert (
                reconstruct_stripe(shares, len(data), k=4, m=2) == data
            ), f"losing {lost} broke reconstruction"

    def test_three_survivors_insufficient(self):
        shards = encode_stripe(b"hello world!", k=4, m=2)
        with pytest.raises(ValueError):
            reconstruct_stripe(
                {0: shards[0], 1: shards[1], 5: shards[5]},
                12,
                k=4,
                m=2,
            )

    @given(payloads, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_other_geometries(self, data, k):
        m = 2
        shards = encode_stripe(data, k=k, m=m)
        assert len(shards) == k + m
        # Parity-only survivors where possible: drop the first min(m, k)
        # data shards.
        dropped = set(range(min(m, k)))
        shares = {
            i: shards[i] for i in range(k + m) if i not in dropped
        }
        shares = {i: shares[i] for i in sorted(shares)[:k]}
        assert reconstruct_stripe(shares, len(data), k=k, m=m) == data
