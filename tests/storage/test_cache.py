"""Tests for the client page cache."""

import pytest

from repro.storage.cache import PageCache


def test_write_makes_range_resident_and_dirty():
    cache = PageCache()
    cache.write(1, 0, 4096)
    assert cache.read_hit(1, 0, 4096)
    assert cache.is_dirty(1)
    assert cache.resident_bytes == 4096


def test_partial_range_miss():
    cache = PageCache()
    cache.write(1, 0, 4096)
    assert not cache.read_hit(1, 0, 8192)
    assert cache.misses == 1


def test_mark_clean_clears_dirty_only():
    cache = PageCache()
    cache.write(1, 0, 8192)
    cache.mark_clean(1, 0, 8192)
    assert not cache.is_dirty(1)
    assert cache.read_hit(1, 0, 8192)  # still resident


def test_fill_installs_clean_data():
    cache = PageCache()
    cache.fill(2, 0, 4096)
    assert cache.read_hit(2, 0, 4096)
    assert not cache.is_dirty(2)


def test_dirty_ranges_reported():
    cache = PageCache()
    cache.write(1, 0, 4096)
    cache.write(1, 8192, 4096)
    cache.mark_clean(1, 0, 4096)
    assert list(cache.dirty_ranges(1)) == [(8192, 12288)]


def test_lru_eviction_of_clean_files():
    cache = PageCache(capacity=8192)
    cache.fill(1, 0, 4096)
    cache.fill(2, 0, 4096)
    cache.fill(3, 0, 4096)  # evicts file 1 (LRU)
    assert cache.evictions >= 1
    assert not cache.read_hit(1, 0, 4096)
    assert cache.read_hit(3, 0, 4096)
    assert cache.resident_bytes <= 8192


def test_dirty_files_never_evicted():
    cache = PageCache(capacity=8192)
    cache.write(1, 0, 4096)
    cache.write(2, 0, 4096)
    cache.write(3, 0, 4096)  # over capacity but everything is dirty
    assert cache.read_hit(1, 0, 4096)
    assert cache.read_hit(2, 0, 4096)
    assert cache.read_hit(3, 0, 4096)
    assert cache.evictions == 0


def test_touch_on_hit_protects_from_eviction():
    cache = PageCache(capacity=8192)
    cache.fill(1, 0, 4096)
    cache.fill(2, 0, 4096)
    assert cache.read_hit(1, 0, 4096)  # file 1 becomes MRU
    cache.fill(3, 0, 4096)  # evicts file 2
    assert cache.read_hit(1, 0, 4096)
    assert not cache.read_hit(2, 0, 4096)


def test_drop_volatile_clears_everything():
    cache = PageCache()
    cache.write(1, 0, 4096)
    cache.fill(2, 0, 4096)
    cache.drop_volatile()
    assert cache.resident_bytes == 0
    assert not cache.read_hit(1, 0, 4096)
    assert not cache.is_dirty(1)


def test_drop_file():
    cache = PageCache()
    cache.write(1, 0, 4096)
    cache.drop_file(1)
    assert cache.resident_bytes == 0
    assert not cache.read_hit(1, 0, 4096)


def test_unbounded_cache():
    cache = PageCache(capacity=None)
    for i in range(100):
        cache.fill(i, 0, 1 << 20)
    assert cache.evictions == 0
    assert cache.resident_bytes == 100 << 20


def test_invalid_capacity():
    with pytest.raises(ValueError):
        PageCache(capacity=0)


def test_overlapping_writes_account_once():
    cache = PageCache()
    cache.write(1, 0, 8192)
    cache.write(1, 4096, 8192)
    assert cache.resident_bytes == 12288
