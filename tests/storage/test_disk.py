"""Tests for the disk model and shared array service loop."""

import pytest

from repro.sim import Environment, StreamRNG
from repro.storage.blockdev import BlockDevice
from repro.storage.blktrace import BlkTrace
from repro.storage.disk import DiskArray, DiskParameters


@pytest.fixture
def env():
    return Environment()


def make_array(env, trace=None, **kw):
    kw.setdefault("num_spindles", 1)  # single head: deterministic seeks
    params = DiskParameters(**kw)
    return DiskArray(env, params, StreamRNG(1).stream("disk"), trace=trace)


def test_seek_time_monotone_in_distance():
    p = DiskParameters()
    assert p.seek_time(0) == 0.0
    d1 = p.seek_time(1024)
    d2 = p.seek_time(1024 * 1024)
    d3 = p.seek_time(p.volume_size)
    assert 0 < d1 < d2 < d3
    assert d3 <= p.seek_base + p.seek_max_extra + 1e-12


def test_transfer_time_linear():
    p = DiskParameters(transfer_rate=100e6)
    assert p.transfer_time(100e6) == pytest.approx(1.0)
    assert p.transfer_time(50e6) == pytest.approx(0.5)


def test_single_write_completes(env):
    array = make_array(env)
    dev = BlockDevice(env, 0, array)
    done = {}

    def proc(env):
        ev = dev.submit_write(0, 4096, file_id=1)
        yield ev
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    assert done["t"] > 0
    assert array.ops_served == 1
    assert array.bytes_served == 4096


def test_sequential_writes_faster_than_scattered(env):
    """Two runs: same byte volume, sequential vs far-scattered addresses."""

    def run(addresses):
        env = Environment()
        array = make_array(env)
        dev = BlockDevice(env, 0, array)

        def proc(env):
            for addr in addresses:
                # sync: the "application" blocks on each write, so the
                # timing reflects pure service order, not plugging.
                yield dev.submit_write(addr, 4096, file_id=1, sync=True)

        env.process(proc(env))
        env.run()
        return env.now

    seq = run([i * 4096 for i in range(50)])
    gb = 1 << 30
    scattered = run([(i * 977) % 1000 * gb // 1000 for i in range(50)])
    assert seq < scattered / 3


def test_merged_requests_serviced_as_one(env):
    trace = BlkTrace()
    array = make_array(env, trace=trace)
    dev = BlockDevice(env, 0, array)
    completions = []

    def burst(env):
        # Submit 8 contiguous pages in one instant: they merge while the
        # array is busy with the first dispatch.
        events = [
            dev.submit_write(i * 4096, 4096, file_id=1) for i in range(8)
        ]
        for ev in events:
            yield ev
        completions.append(env.now)

    env.process(burst(env))
    env.run()
    assert completions
    # First dispatch may go out alone before merging; the rest coalesce.
    assert array.ops_served <= 3
    assert sum(r.queued for r in trace.records) == 8


def test_round_robin_across_clients(env):
    array = make_array(env)
    devs = [BlockDevice(env, cid, array) for cid in range(3)]
    served_clients = []
    trace_orig = array.trace
    assert trace_orig is None

    def proc(env, dev, base):
        events = [
            dev.submit_write(base + i * 4096, 4096, file_id=dev.client_id)
            for i in range(2)
        ]
        for ev in events:
            yield ev

    gb = 1 << 30
    for i, dev in enumerate(devs):
        env.process(proc(env, dev, i * gb))
    env.run()
    assert array.ops_served >= 3  # at least one dispatch per client


def test_array_idles_and_wakes(env):
    array = make_array(env)
    dev = BlockDevice(env, 0, array)
    log = []

    def late_writer(env):
        yield env.timeout(5.0)
        yield dev.submit_write(0, 4096, file_id=1)
        log.append(env.now)

    env.process(late_writer(env))
    env.run(until=10.0)
    assert log and log[0] > 5.0
    assert array.ops_served == 1


def test_trace_records_seek_distances(env):
    trace = BlkTrace()
    array = make_array(env, trace=trace)
    dev = BlockDevice(env, 0, array)

    def proc(env):
        yield dev.submit_write(0, 4096, file_id=1, sync=True)
        yield dev.submit_write(4096, 4096, file_id=1, sync=True)  # sequential
        yield dev.submit_write(1 << 30, 4096, file_id=1, sync=True)  # seek

    env.process(proc(env))
    env.run()
    assert len(trace) == 3
    assert trace.records[0].seek_distance == 0
    assert trace.records[1].seek_distance == 0
    assert trace.records[2].seek_distance == (1 << 30) - 8192


def test_utilization_between_zero_and_one(env):
    array = make_array(env)
    dev = BlockDevice(env, 0, array)

    def proc(env):
        for i in range(5):
            yield dev.submit_write(i * 4096, 4096, file_id=1)
            yield env.timeout(0.01)

    env.process(proc(env))
    env.run()
    assert 0.0 < array.utilization <= 1.0


def test_deterministic_service_times():
    def run():
        env = Environment()
        array = make_array(env)
        dev = BlockDevice(env, 0, array)

        def proc(env):
            for i in range(10):
                yield dev.submit_write((i * 7919) % 100 * 4096, 4096, 1)

        env.process(proc(env))
        env.run()
        return env.now

    assert run() == run()
