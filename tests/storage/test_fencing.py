"""Write-generation fencing on the shared array (DESIGN §8)."""

from repro.sim import Environment, StreamRNG
from repro.storage.blockdev import BlockDevice
from repro.storage.disk import DiskArray, DiskParameters


def make_array(env, **kw):
    kw.setdefault("num_spindles", 1)
    params = DiskParameters(**kw)
    return DiskArray(env, params, StreamRNG(1).stream("disk"))


def test_fence_bumps_generation_monotonically():
    env = Environment()
    array = make_array(env)
    assert array.fence(3) == 1
    assert array.fence(3) == 2
    assert array.fence(5) == 1
    assert array.fence_generations == {(3, 0): 2, (5, 0): 1}


def test_stale_write_bounces_and_never_lands():
    env = Environment()
    array = make_array(env)
    dev = BlockDevice(env, 0, array)
    array.fence(0)  # revoke before the client hears anything
    done = {}

    def proc(env):
        yield dev.submit_write(0, 4096, file_id=1, sync=True)
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    # The command completed (with an error status) but the data did not.
    assert "t" in done
    assert array.fenced_writes == 1
    assert array.stable.total() == 0


def test_queued_write_is_fenced_at_dispatch():
    """A write queued before the fence must still bounce: the fence
    check happens at command dispatch, not at submit."""
    env = Environment()
    array = make_array(env)
    dev = BlockDevice(env, 0, array)

    def proc(env):
        ev = dev.submit_write(0, 4096, file_id=1, sync=True)
        array.fence(0)  # lease reclaimed while the write sat queued
        yield ev

    env.process(proc(env))
    env.run()
    assert array.fenced_writes == 1
    assert array.stable.total() == 0


def test_restamped_write_lands_after_readmission():
    env = Environment()
    array = make_array(env)
    dev = BlockDevice(env, 0, array)
    array.fence(0)
    # Re-admission: the client re-establishes state and picks up the
    # current generation (RedbudCluster._readmit_client does this).
    dev.write_generation = array.fence_generations[(0, 0)]

    def proc(env):
        yield dev.submit_write(0, 4096, file_id=1, sync=True)

    env.process(proc(env))
    env.run()
    assert array.fenced_writes == 0
    assert array.stable.total() == 4096


def test_elevator_never_merges_across_generations():
    env = Environment()
    array = make_array(env)
    dev = BlockDevice(env, 0, array)
    dev.submit_write(0, 4096, file_id=1)
    dev.write_generation = 1  # readmitted mid-stream
    dev.submit_write(4096, 4096, file_id=1)
    # Adjacent, same op, same file -- but different generations: the
    # elevator must not fold the stale write into the fresh one.
    assert dev.scheduler.stats.merges == 0


def test_elevator_still_merges_within_a_generation():
    env = Environment()
    array = make_array(env)
    dev = BlockDevice(env, 0, array)
    dev.submit_write(0, 4096, file_id=1)
    dev.submit_write(4096, 4096, file_id=1)
    assert dev.scheduler.stats.merges == 1
