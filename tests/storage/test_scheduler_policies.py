"""Tests for the scheduler policies: plugging, deadlines, read preference,
sync-request semantics and per-spindle dispatch."""

import pytest

from repro.sim import Environment
from repro.sim.events import Event
from repro.storage.scheduler import READ, BlockRequest, ElevatorScheduler


def make_request(env, start, length=4096, op="write", sync=False, file_id=0):
    return BlockRequest(
        op=op,
        start=start,
        length=length,
        client_id=0,
        file_id=file_id,
        submit_time=env.now,
        completion=Event(env),
        sync=sync,
    )


def one_spindle(_start):
    return 0


@pytest.fixture
def env():
    return Environment()


def test_plug_holds_young_async_writes(env):
    sched = ElevatorScheduler(env, 0)
    sched.submit(make_request(env, 0))
    got = sched.pop_next_for_spindle(0, 0, one_spindle, write_plug=0.01)
    assert got is None  # plugged

    def later(env):
        yield env.timeout(0.02)

    env.process(later(env))
    env.run()
    got = sched.pop_next_for_spindle(0, 0, one_spindle, write_plug=0.01)
    assert got is not None  # plug expired


def test_sync_writes_never_plugged(env):
    sched = ElevatorScheduler(env, 0)
    sched.submit(make_request(env, 0, sync=True))
    got = sched.pop_next_for_spindle(0, 0, one_spindle, write_plug=0.01)
    assert got is not None


def test_reads_never_plugged(env):
    sched = ElevatorScheduler(env, 0)
    sched.submit(make_request(env, 0, op=READ, sync=True))
    got = sched.pop_next_for_spindle(
        0, 0, one_spindle, op=READ, write_plug=0.01
    )
    assert got is not None


def test_op_filter(env):
    sched = ElevatorScheduler(env, 0)
    sched.submit(make_request(env, 0, op="write", sync=True))
    sched.submit(make_request(env, 8192, op=READ))
    got = sched.pop_next_for_spindle(0, 0, one_spindle, op=READ)
    assert got.op == READ
    got = sched.pop_next_for_spindle(0, 0, one_spindle, op="write")
    assert got.op == "write"


def test_spindle_filter(env):
    sched = ElevatorScheduler(env, 0)
    sched.submit(make_request(env, 0, sync=True))
    sched.submit(make_request(env, 1 << 20, sync=True))
    by_mb = lambda start: start // (1 << 20)  # noqa: E731
    got = sched.pop_next_for_spindle(0, 1, by_mb)
    assert got.start == 1 << 20
    assert sched.pop_next_for_spindle(0, 1, by_mb) is None
    assert sched.has_request_for_spindle(0, by_mb)
    assert not sched.has_request_for_spindle(1, by_mb)


def test_expired_request_served_first(env):
    sched = ElevatorScheduler(env, 0, read_deadline=0.01)
    old = make_request(env, 1 << 30, op=READ)  # far away, will expire
    sched.submit(old)

    def later(env):
        yield env.timeout(0.05)
        sched.submit(make_request(env, 0, op=READ))  # near the head

    env.process(later(env))
    env.run()
    got = sched.pop_next_for_spindle(0, 0, one_spindle)
    assert got is old  # expired beats C-LOOK order


def test_earliest_plug_expiry(env):
    sched = ElevatorScheduler(env, 0)
    assert sched.earliest_plug_expiry(0, one_spindle, 0.01) is None
    sched.submit(make_request(env, 0))
    assert sched.earliest_plug_expiry(0, one_spindle, 0.01) == pytest.approx(
        0.01
    )
    # Sync requests do not count (already dispatchable).
    sched2 = ElevatorScheduler(env, 0)
    sched2.submit(make_request(env, 0, sync=True))
    assert sched2.earliest_plug_expiry(0, one_spindle, 0.01) is None


def test_expedite_file_unplugs(env):
    sched = ElevatorScheduler(env, 0)
    notified = []
    sched.on_submit = lambda: notified.append(1)
    sched.submit(make_request(env, 0, file_id=7))
    sched.submit(make_request(env, 1 << 20, file_id=8))
    sched.expedite_file(7)
    got = sched.pop_next_for_spindle(0, 0, one_spindle, write_plug=1.0)
    assert got is not None and got.file_id == 7
    # File 8 remains plugged.
    assert (
        sched.pop_next_for_spindle(0, 0, one_spindle, write_plug=1.0) is None
    )
    assert len(notified) >= 3  # two submits + expedite
