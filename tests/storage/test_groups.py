"""Storage-group quorum math, loss/readmit, and re-silver semantics.

The quorum property tests (an ISSUE satellite) enumerate *every*
single- and double-loss pattern for both arrangements and assert the
recoverable set matches the uniform rule: a range survives iff at
least ``data`` live members hold it.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, StreamRNG
from repro.storage.groups import (
    ARRANGEMENTS,
    StorageGroup,
    arrangement_named,
)
from repro.util.intervals import IntervalSet


def make_group(name="mirror3", seed=7):
    env = Environment()
    rng = StreamRNG(seed).stream("group")
    return StorageGroup(env, arrangement_named(name), rng=rng)


ranges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=1, max_value=300),
    ),
    min_size=0,
    max_size=12,
)


class TestArrangements:
    def test_registry(self):
        assert arrangement_named("mirror3").size == 3
        assert arrangement_named("block4-2").size == 6
        assert arrangement_named("block4-2").data == 4
        for arr in ARRANGEMENTS.values():
            assert arr.tolerates == arr.size - arr.data or arr.name == "none"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown replication"):
            arrangement_named("mirror9")

    def test_none_has_no_group(self):
        with pytest.raises(ValueError, match="nothing to replicate"):
            make_group("none")


class TestReplicate:
    def test_fans_to_all_members(self):
        group = make_group()
        delay = group.replicate(0, 4096)
        assert delay > 0
        for member in group.members:
            assert member.durable.contains(0, 4096)

    def test_skips_dead_members(self):
        group = make_group()
        group.lose(1)
        group.replicate(0, 4096)
        assert not group.members[1].durable
        assert group.members[0].durable.contains(0, 4096)
        assert group.members[2].durable.contains(0, 4096)
        assert group.degraded_writes == 1

    def test_delay_is_deterministic(self):
        a = make_group(seed=3)
        b = make_group(seed=3)
        delays_a = [a.replicate(i * 100, i * 100 + 50) for i in range(20)]
        delays_b = [b.replicate(i * 100, i * 100 + 50) for i in range(20)]
        assert delays_a == delays_b


def _quorum_reference(group, writes, lost):
    """Oracle: range survives iff >= data live members hold it.

    With full fan-out every member alive at write time holds the range;
    losses wipe a member entirely, so the reference is simply: written
    ranges survive iff (size - len(lost)) >= data.
    """
    survivors = group.size - len(lost)
    expected = IntervalSet()
    if survivors >= group.arrangement.data:
        for start, length in writes:
            expected.add(start, start + length)
    return expected


class TestQuorumMath:
    @pytest.mark.parametrize("name", ["mirror3", "block4-2"])
    @given(writes=ranges)
    @settings(max_examples=40, deadline=None)
    def test_every_single_and_double_loss_pattern(self, name, writes):
        arr = arrangement_named(name)
        patterns = [()]
        patterns += [(i,) for i in range(arr.size)]
        patterns += list(itertools.combinations(range(arr.size), 2))
        for lost in patterns:
            group = make_group(name)
            for start, length in writes:
                group.replicate(start, start + length)
            for member in lost:
                group.lose(member)
            expected = _quorum_reference(group, writes, lost)
            assert group.recoverable_set() == expected, (
                f"{name}: loss pattern {lost} gave "
                f"{group.recoverable_set()}, expected {expected}"
            )

    def test_mirror3_survives_double_loss(self):
        group = make_group("mirror3")
        group.replicate(100, 200)
        group.lose(0)
        group.lose(2)
        assert group.recoverable_set().contains(100, 200)

    def test_block42_triple_loss_exceeds_budget(self):
        group = make_group("block4-2")
        group.replicate(0, 100)
        group.lose(0)
        group.lose(1)
        with pytest.raises(RuntimeError, match="fault budget"):
            group.lose(2)

    def test_partial_holders_counted(self):
        # A readmitted-but-not-resilvered style divergence: quorum must
        # count actual holders, not just liveness.
        group = make_group("block4-2")
        group.replicate(0, 1000)
        # Manually wipe two members' durable sets (not via lose()).
        group.members[4].durable.clear()
        group.members[5].durable.clear()
        assert group.recoverable_set().contains(0, 1000)
        group.members[3].durable.clear()
        assert not group.recoverable_set().overlaps(0, 1000)


class TestLossAndResilver:
    def test_lose_destroys_durable_set(self):
        group = make_group()
        group.replicate(0, 4096)
        group.lose(1)
        assert not group.members[1].alive
        assert not group.members[1].durable

    def test_readmit_resilvers_from_survivors(self):
        group = make_group()
        group.replicate(0, 4096)
        group.lose(1)
        group.replicate(8192, 12288)
        copied = group.readmit(1)
        assert copied == 4096 + 4096
        assert group.members[1].durable == group.members[0].durable
        assert group.resilvered_bytes == copied
        assert group.divergent_members() == []

    def test_repair_converges_all_members(self):
        group = make_group("block4-2")
        group.replicate(0, 1000)
        group.lose(5)
        group.replicate(2000, 3000)
        group.readmit(5)
        assert group.divergent_members() == []
        group.members[2].durable.remove(0, 500)
        assert group.divergent_members()
        copied = group.repair()
        assert copied == 500
        assert group.divergent_members() == []

    def test_readmit_alive_member_is_noop(self):
        group = make_group()
        group.replicate(0, 100)
        assert group.readmit(1) == 0

    def test_summary_counters(self):
        group = make_group()
        group.replicate(0, 4096)
        group.lose(2)
        group.readmit(2)
        summary = group.summary()
        assert summary["arrangement"] == "mirror3"
        assert summary["losses"] == 1
        assert summary["readmissions"] == 1
        assert summary["replicated_bytes"] == 4096 * 3
        assert summary["resilvered_bytes"] == 4096


class TestStripeShares:
    def test_mirror_shares_are_copies(self):
        group = make_group("mirror3")
        shares = group.stripe_shares(b"abc")
        assert shares == [b"abc"] * 3

    def test_block_shares_reconstruct(self):
        from repro.storage.erasure import reconstruct_stripe

        group = make_group("block4-2")
        data = bytes(range(64))
        shares = group.stripe_shares(data)
        assert len(shares) == 6
        rebuilt = reconstruct_stripe(
            {i: shares[i] for i in (1, 2, 4, 5)}, len(data)
        )
        assert rebuilt == data
