"""Properties of the rotated RAID-0 striping model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import DiskParameters


def make_params(num_spindles=8, stripe=256 * 1024):
    return DiskParameters(num_spindles=num_spindles, stripe=stripe)


def test_row_places_one_stripe_per_spindle():
    """Rotation permutes spindles within a row -- never doubles up."""
    p = make_params(num_spindles=8)
    row_bytes = p.stripe * p.num_spindles
    for row in range(64):
        spindles = [
            p.spindle_of(row * row_bytes + i * p.stripe) for i in range(8)
        ]
        assert sorted(spindles) == list(range(8)), f"row {row}"


def test_power_of_two_chunks_do_not_pin_one_spindle():
    """The pathology rotation exists to prevent: 16 MB-aligned starts."""
    p = make_params(num_spindles=8)
    chunk = 16 * 1024 * 1024
    spindles = {p.spindle_of(k * chunk) for k in range(64)}
    assert len(spindles) >= 4


def test_spindle_local_contiguous_for_sequential_stream():
    """A logically sequential stream is physically sequential on every
    spindle it touches."""
    p = make_params(num_spindles=4, stripe=1024)
    last_local_end = {}
    for addr in range(0, 64 * 1024, 1024):
        spindle = p.spindle_of(addr)
        local = p.spindle_local(addr)
        if spindle in last_local_end:
            assert local == last_local_end[spindle], f"gap at {addr}"
        last_local_end[spindle] = p.spindle_local(addr + 1024 - 1) + 1


@settings(max_examples=200, deadline=None)
@given(
    addr=st.integers(0, (1 << 36) - 1),
    n=st.sampled_from([1, 2, 4, 8, 16]),
    stripe_kb=st.sampled_from([64, 256, 1024]),
)
def test_spindle_of_in_range_and_stable(addr, n, stripe_kb):
    p = DiskParameters(num_spindles=n, stripe=stripe_kb * 1024)
    s = p.spindle_of(addr)
    assert 0 <= s < n
    assert p.spindle_of(addr) == s  # deterministic


@settings(max_examples=200, deadline=None)
@given(
    row=st.integers(0, 1 << 20),
    n=st.sampled_from([2, 4, 8, 16]),
)
def test_local_addresses_partition_per_spindle(row, n):
    """Within a row, the n stripes map to n distinct spindles and all
    share the same local row offset."""
    p = DiskParameters(num_spindles=n, stripe=4096)
    row_bytes = p.stripe * n
    base = row * row_bytes
    locals_seen = set()
    spindles_seen = set()
    for i in range(n):
        addr = base + i * p.stripe
        spindles_seen.add(p.spindle_of(addr))
        locals_seen.add(p.spindle_local(addr))
    assert spindles_seen == set(range(n))
    assert locals_seen == {row * p.stripe}


def test_seek_time_properties():
    p = make_params()
    assert p.seek_time(0) == 0.0
    assert p.seek_time(-5) == 0.0
    small = p.seek_time(4096)
    large = p.seek_time(p.volume_size)
    assert 0 < small < large
    # sqrt concavity: quadrupling distance less than doubles extra time.
    d = p.volume_size // 16
    assert p.seek_time(4 * d) < 2 * p.seek_time(d) + p.seek_base
