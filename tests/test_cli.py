"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, build_parser, main


def test_parser_builds_and_validates():
    parser = build_parser()
    args = parser.parse_args(
        ["run", "--system", "nfs3", "--workload", "varmail"]
    )
    assert args.system == "nfs3"
    assert args.workload == "varmail"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--system", "gfs"])
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_all_workload_factories_construct():
    for name, factory in WORKLOADS.items():
        workload = factory()
        assert workload.threads_per_client >= 1, name


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "bench_fig4_merge_ratio.py" in out


def test_run_command_small(capsys):
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "ops/s" in out
    assert "merge_ratio" in out


def test_run_command_json(capsys):
    code = main(
        [
            "run",
            "--system",
            "nfs3",
            "--workload",
            "varmail",
            "--clients",
            "2",
            "--duration",
            "0.5",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["system"] == "nfs3"
    assert payload["workload"] == "varmail"
    assert payload["ops_completed"] > 0
    assert payload["latency"]["p95"] >= payload["latency"]["p50"]
    assert all(
        isinstance(v, (int, float, str, bool))
        for v in payload["extras"].values()
    )


def test_run_command_with_trace(capsys, tmp_path):
    trace_path = str(tmp_path / "run-trace.json")
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.5",
            "--trace",
            trace_path,
        ]
    )
    assert code == 0
    with open(trace_path) as fh:
        trace = json.load(fh)
    assert any(
        e.get("name") == "commit_queued" for e in trace["traceEvents"]
    )


def test_trace_command_produces_complete_chains(capsys, tmp_path):
    out_path = str(tmp_path / "trace.json")
    code = main(
        [
            "trace",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.5",
            "--out",
            out_path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "complete enqueue->dispatch chains" in out
    with open(out_path) as fh:
        trace = json.load(fh)
    names = {e.get("name") for e in trace["traceEvents"]}
    for stage in (
        "commit_queued",
        "compound_assembly",
        "rpc:commit",
        "mds_handle",
        "disk_dispatch",
    ):
        assert stage in names, stage


def test_trace_command_jsonl_format(tmp_path):
    out_path = str(tmp_path / "trace.jsonl")
    code = main(
        [
            "trace",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.5",
            "--out",
            out_path,
            "--format",
            "jsonl",
        ]
    )
    assert code == 0
    with open(out_path) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    assert records
    assert {r["type"] for r in records} <= {"span", "instant"}


def test_stats_command(capsys):
    code = main(
        [
            "stats",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    for name in (
        "commit_queue.depth",
        "elevator.merge_ratio",
        "mds.utilization",
        "commit.compound_degree",
    ):
        assert name in out


def test_stats_command_json(capsys):
    code = main(
        [
            "stats",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.5",
            "--json",
        ]
    )
    assert code == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["commit.rpcs"] > 0
    assert snap["commit.compound_degree"]["count"] > 0


def test_crash_command_delayed_consistent(capsys):
    code = main(
        [
            "crash",
            "--mode",
            "delayed",
            "--clients",
            "2",
            "--workload",
            "xcdn-32K",
            "--at",
            "0.15",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "CONSISTENT" in out
    assert "recovery reclaimed" in out


def test_run_command_with_aggregate_processes(capsys):
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "6",
            "--processes",
            "2",
            "--duration",
            "0.4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "ops/s" in out


def test_run_command_scheduler_choice(capsys):
    for scheduler in ("heap", "calendar"):
        code = main(
            [
                "run",
                "--system",
                "redbud-delayed",
                "--workload",
                "xcdn-32K",
                "--clients",
                "2",
                "--duration",
                "0.3",
                "--scheduler",
                scheduler,
            ]
        )
        assert code == 0
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(
            ["run", "--system", "nfs3", "--scheduler", "splay"]
        )


def test_processes_rejects_only_client_death_faults(capsys):
    # client_death addresses one workload personality by index, which
    # aggregation makes meaningless -- the error names the clause.
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "4",
            "--processes",
            "2",
            "--faults",
            "loss=0.05,client_death=3@0.1",
            "--duration",
            "0.2",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "client_death clauses" in err
    assert "client_death=3@0.1" in err


def test_processes_allows_faults_without_client_death(capsys):
    # Link/MDS-level faults survive aggregation: every other clause
    # family targets links, shards, or storage members.
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "4",
            "--processes",
            "2",
            "--faults",
            "loss=0.02,mds_restart@0.1:0.05",
            "--duration",
            "0.3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fault summary" in out
