"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_parser, main


def test_parser_builds_and_validates():
    parser = build_parser()
    args = parser.parse_args(
        ["run", "--system", "nfs3", "--workload", "varmail"]
    )
    assert args.system == "nfs3"
    assert args.workload == "varmail"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--system", "gfs"])
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_all_workload_factories_construct():
    for name, factory in WORKLOADS.items():
        workload = factory()
        assert workload.threads_per_client >= 1, name


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "bench_fig4_merge_ratio.py" in out


def test_run_command_small(capsys):
    code = main(
        [
            "run",
            "--system",
            "redbud-delayed",
            "--workload",
            "xcdn-32K",
            "--clients",
            "2",
            "--duration",
            "0.5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "ops/s" in out
    assert "merge_ratio" in out


def test_crash_command_delayed_consistent(capsys):
    code = main(
        [
            "crash",
            "--mode",
            "delayed",
            "--clients",
            "2",
            "--workload",
            "xcdn-32K",
            "--at",
            "0.15",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "CONSISTENT" in out
    assert "recovery reclaimed" in out
