"""Performance smoke tests for the hot-path engine work.

Two guards travel together:

- a **throughput floor** on a fixed synthetic workload (marked ``slow``
  so tier-1 stays fast) catches gross engine regressions -- an O(n)
  queue sneaking back into ``Store._dispatch`` roughly halves it;
- **byte-identity goldens** pin the blktrace rows and tracer spans of a
  seeded fig3-style run to hashes captured on pre-optimisation main,
  proving the deque/early-exit restructuring changed *nothing* about
  event ordering.  These run in tier-1: determinism is the contract
  every optimisation in this repo must clear.
"""

import hashlib
import time

import pytest

from repro.fs.factory import build_cluster
from repro.obs import Instrumentation
from repro.sim import Environment
from repro.sim.resources import FilterStore, Store
from repro.workloads.xcdn import XcdnWorkload

# -- synthetic engine workload ---------------------------------------------------


def build_synthetic(env, scale=1000):
    """Timeout churn, store ping-pong, fan-in, and filtered gets.

    Mirrors the simulator's hot patterns: RPC inboxes with many waiting
    daemons (fan-in), commit-daemon filtered checkouts, and dense
    timeout scheduling.  Event count is a pure function of ``scale``.
    """
    inbox = Store(env)
    fstore = FilterStore(env)

    def ticker(env, n, dt):
        for _ in range(n):
            yield env.timeout(dt)

    def producer(env, n):
        for i in range(n):
            yield inbox.put(i)
            if i % 8 == 0:
                yield env.timeout(0.0001)

    def daemon(env, n):
        # Fan-in: many daemons block on one inbox.
        for _ in range(n):
            yield inbox.get()

    def fproducer(env, n):
        for i in range(n):
            yield fstore.put(i)

    def fconsumer(env, parity, n):
        for _ in range(n):
            yield fstore.get(lambda x, p=parity: x % 4 == p)

    env.process(ticker(env, scale * 10, 0.001))
    env.process(producer(env, scale * 16))
    for _ in range(32):
        env.process(daemon(env, scale // 2))
    env.process(fproducer(env, scale * 4))
    for parity in range(4):
        env.process(fconsumer(env, parity, scale))


#: Exact calendar size of ``build_synthetic(scale=2000)``; drift here
#: means the engine's scheduling behaviour changed, not just its speed.
SYNTHETIC_EVENTS = 104078

#: Conservative floor in events/sec.  The optimised engine clears
#: ~500k/s on the 1-CPU reference host and ~200k/s *before* the
#: dispatch rework, so 250k fails the old code path while leaving slack
#: for slower CI machines.
FLOOR_EVENTS_PER_SECOND = 250_000


@pytest.mark.slow
def test_synthetic_throughput_floor():
    env = Environment()
    build_synthetic(env, scale=2000)
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    assert env.scheduled_events == SYNTHETIC_EVENTS
    rate = env.scheduled_events / wall
    assert rate >= FLOOR_EVENTS_PER_SECOND, (
        f"engine throughput regressed: {rate:,.0f} events/s "
        f"< floor {FLOOR_EVENTS_PER_SECOND:,}"
    )


# -- byte-identity goldens -------------------------------------------------------

#: Captured on main at 846e976 (pre-optimisation) with the recipe in
#: ``_run_seeded_fig3``.  Any ordering change in the engine, stores, or
#: commit queue shows up here as a different hash.
GOLDENS = {
    11: {
        "ops": 4556,
        "events": 66971,
        "blk_rows": 932,
        "blk": "60f86d21449cbf82e0e3ff288117057a54b861d2e1d534173b106ed0da2ee93c",
        "trace": "c93ab87cf102fc8278ab5261871971033490d086adc8b2993da674d82f4e2eea",
    },
    29: {
        "ops": 4258,
        "events": 67333,
        "blk_rows": 930,
        "blk": "81d587ae997bdb6cb26be256a14ce9b972be9c7f798c9eb3df0387196a31a461",
        "trace": "720484a57314331193c449821affe909ae3ff9187d3c6f01bcdfcfe3e3c6ab12",
    },
}


def _run_seeded_fig3(seed):
    obs = Instrumentation()
    cluster = build_cluster(
        "redbud-delayed", num_clients=4, seed=seed, obs=obs
    )
    workload = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=10)
    result = cluster.run_workload(workload, duration=0.6, warmup=0.1)
    return cluster, obs, result


def _span_fingerprint(span):
    end = span.end if span.end is not None else -1.0
    return (
        span.name,
        span.cat,
        round(span.start, 12),
        round(end, 12),
        span.node,
        span.update_ids,
    )


@pytest.mark.parametrize("seed", sorted(GOLDENS))
def test_seeded_fig3_run_is_byte_identical(seed):
    golden = GOLDENS[seed]
    cluster, obs, result = _run_seeded_fig3(seed)

    assert result.ops_completed == golden["ops"]
    assert cluster.env.scheduled_events == golden["events"]

    rows = cluster.blktrace.to_rows()
    assert len(rows) == golden["blk_rows"]
    blk_hash = hashlib.sha256(repr(rows).encode()).hexdigest()
    assert blk_hash == golden["blk"], "blktrace ordering diverged from golden"

    spans = [_span_fingerprint(s) for s in obs.tracer.spans]
    trace_hash = hashlib.sha256(repr(spans).encode()).hexdigest()
    assert trace_hash == golden["trace"], "tracer spans diverged from golden"
