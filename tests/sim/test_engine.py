"""Tests for the event calendar and run loop."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(2.5)
        seen.append(env.now)
        yield env.timeout(1.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [2.5, 3.5]


def test_zero_delay_timeout_runs_same_time():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0.0]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 3.0


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 7

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 7


def test_run_until_unreachable_event_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3, "c"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_fifo_order_on_time_ties():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        env.process(proc(env, tag))
    env.run()
    assert order == list("abcd")


def test_unhandled_process_failure_raises_simulation_error():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_failure_caught_by_waiter_does_not_escape():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def watcher(env, target):
        try:
            yield target
        except ValueError as exc:
            caught.append(str(exc))

    target = env.process(bad(env))
    env.process(watcher(env, target))
    env.run()
    assert caught == ["boom"]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.process(iter_timeout(env, 4.0))
    assert env.peek() == 0.0  # process initialisation event


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_deterministic_event_sequence_is_replayable():
    def build():
        env = Environment()
        trace = []

        def proc(env, tag, delay):
            for _ in range(3):
                yield env.timeout(delay)
                trace.append((round(env.now, 9), tag))

        env.process(proc(env, "x", 0.7))
        env.process(proc(env, "y", 1.1))
        env.run()
        return trace

    assert build() == build()
