"""Tests for reproducible RNG streams."""

import numpy as np
import pytest

from repro.sim import StreamRNG


def test_same_seed_same_draws():
    a, b = StreamRNG(42), StreamRNG(42)
    assert [a.uniform(0, 1) for _ in range(5)] == [
        b.uniform(0, 1) for _ in range(5)
    ]


def test_named_streams_are_independent_and_stable():
    root = StreamRNG(42)
    s1 = root.stream("disk")
    s2 = root.stream("workload", 3)
    s1_again = StreamRNG(42).stream("disk")
    assert s1.uniform(0, 1) == s1_again.uniform(0, 1)
    # Different stream keys give different sequences.
    r1 = StreamRNG(42).stream("disk")
    r2 = StreamRNG(42).stream("workload", 3)
    assert [r1.random() for _ in range(4)] != [r2.random() for _ in range(4)]


def test_adding_a_stream_does_not_perturb_others():
    def draws(with_extra):
        root = StreamRNG(7)
        if with_extra:
            root.stream("new-subsystem").random()
        return [root.stream("disk").random() for _ in range(3)]

    assert draws(False) == draws(True)


def test_string_and_int_keys_hash_stably():
    a = StreamRNG(1).stream("client", 0)
    b = StreamRNG(1).stream("client", 0)
    assert a.integers(0, 1000) == b.integers(0, 1000)


def test_draw_helpers_in_range():
    rng = StreamRNG(3).stream("t")
    for _ in range(50):
        assert 0.0 <= rng.uniform(0, 1) < 1.0
        assert 0 <= rng.integers(0, 10) < 10
        assert rng.exponential(2.0) >= 0.0
        assert rng.pareto(2.0, scale=5.0) >= 5.0
        assert rng.random() < 1.0


def test_choice_and_weighted_choice():
    rng = StreamRNG(3).stream("c")
    seq = ["a", "b", "c"]
    assert rng.choice(seq) in seq
    assert rng.weighted_choice(seq, [0, 0, 1]) == "c"
    with pytest.raises(ValueError):
        rng.choice([])
    with pytest.raises(ValueError):
        rng.weighted_choice(seq, [1, 2])
    with pytest.raises(ValueError):
        rng.weighted_choice(seq, [0, 0, 0])


def test_shuffle_deterministic():
    def shuffled():
        rng = StreamRNG(9).stream("s")
        items = list(range(20))
        rng.shuffle(items)
        return items

    assert shuffled() == shuffled()
    assert shuffled() != list(range(20))


def test_generator_exposed_for_vectorised_draws():
    rng = StreamRNG(1)
    arr = rng.generator.random(10)
    assert isinstance(arr, np.ndarray)
    assert arr.shape == (10,)


def test_lognormal_and_normal():
    rng = StreamRNG(4).stream("n")
    assert rng.lognormal(0.0, 0.5) > 0
    values = [rng.normal(10.0, 1.0) for _ in range(100)]
    assert 8.0 < np.mean(values) < 12.0
