"""Calendar-queue scheduler: equivalence with the reference heap.

The calendar queue must be observationally identical to the binary
heap -- same dispatch order under ties, far-future outliers (overflow
heap) and cancellations -- plus the engine-level guarantees the heap
path historically got wrong: ``peek()`` on an empty calendar, bounded
growth under cancel/reschedule churn, and Timeout recycling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.engine import SCHEDULERS, SimulationError


def _run_trace(scheduler, items, outliers=()):
    """Fire the given (delay, cancel?) schedule; return the dispatch log."""
    env = Environment(scheduler=scheduler)
    fired = []

    def spawn(env, idx, delay, cancel):
        timer = env.timeout(delay)
        if cancel:
            timer.cancel()
            yield env.timeout(0.0)
        else:
            yield timer
        fired.append((idx, env.now))

    for idx, (delay, cancel) in enumerate(items):
        env.process(spawn(env, idx, delay, cancel))
    for j, delay in enumerate(outliers):
        env.process(spawn(env, 10_000 + j, delay, False))
    env.run()
    return fired


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
            st.booleans(),
        ),
        min_size=1,
        max_size=30,
    ),
    st.lists(st.floats(1e4, 1e8, allow_nan=False), max_size=3),
)
def test_calendar_matches_heap_dispatch_order(items, outliers):
    """Identical programs dispatch identically on both schedulers.

    The outliers land far beyond the calendar horizon, forcing the
    overflow-heap path and its migration on horizon advance.
    """
    assert _run_trace("calendar", items, outliers) == _run_trace(
        "heap", items, outliers
    )


@settings(max_examples=80, deadline=None)
@given(st.lists(st.sampled_from([0.0, 0.5, 1.0, 2.0]), min_size=2,
                max_size=40))
def test_tie_heavy_schedules_preserve_fifo_on_both(delays):
    """Massive timestamp collisions: FIFO among equals, both backends."""
    items = [(d, False) for d in delays]
    calendar = _run_trace("calendar", items)
    assert calendar == _run_trace("heap", items)
    # Among equal fire times, creation (index) order is preserved.
    for i in range(1, len(calendar)):
        if calendar[i][1] == calendar[i - 1][1]:
            assert calendar[i][0] > calendar[i - 1][0]


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_peek_on_empty_calendar_is_inf(scheduler):
    env = Environment(scheduler=scheduler)
    assert env.peek() == float("inf")
    timer = env.timeout(3.5)
    assert env.peek() == 3.5
    timer.cancel()
    # A tombstone still occupies its slot until swept.
    assert env.peek() == 3.5
    env.run()
    assert env.peek() == float("inf")


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_step_on_empty_calendar_raises(scheduler):
    env = Environment(scheduler=scheduler)
    with pytest.raises(SimulationError):
        env.step()


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_cancel_churn_keeps_calendar_bounded(scheduler):
    """Regression: cancelled timers must not pile up as tombstones.

    An RPC retry loop cancels and re-arms its timer every round; before
    lazy-purge landed, each round leaked one queue entry and a long run
    grew the calendar without bound.
    """
    env = Environment(scheduler=scheduler)
    for _ in range(5_000):
        env.timeout(1e6).cancel()
    assert env.pending_events < 256


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        Environment(scheduler="splay-tree")


def test_timeout_pool_recycles_objects():
    """A popped Timeout nobody references is served again by identity."""
    env = Environment()

    def proc(env):
        for _ in range(4):
            yield env.timeout(0.25)

    env.process(proc(env))
    env.run()
    pool = env._timeout_pool
    assert pool, "finished timeouts should land on the free list"
    recycled = pool[-1]
    timer = env.timeout(1.5)
    assert timer is recycled
    assert timer.delay == 1.5
    # The recycled timer behaves like a fresh one.
    fired = []

    def waiter(env, timer):
        yield timer
        fired.append(env.now)

    env.process(waiter(env, timer))
    env.run()
    assert fired and fired[0] == pytest.approx(2.5)


def test_timeout_pool_skips_referenced_timeouts():
    """A Timeout still held by user code must never be resurrected."""
    env = Environment()
    held = []

    def proc(env):
        timer = env.timeout(0.1)
        held.append(timer)
        yield timer

    env.process(proc(env))
    env.run()
    assert held[0] not in env._timeout_pool
