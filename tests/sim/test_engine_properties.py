"""Property-based tests of the event-calendar ordering laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=40,
    )
)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert fired == sorted(delays)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=20),
)
def test_equal_time_events_fire_in_creation_order(tags):
    """FIFO among simultaneous events, regardless of how many."""
    env = Environment()
    fired = []

    def proc(env, tag):
        yield env.timeout(1.0)
        fired.append(tag)

    for tag in tags:
        env.process(proc(env, tag))
    env.run()
    assert fired == tags


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 10.0, allow_nan=False), st.integers(0, 99)),
        min_size=1,
        max_size=30,
    ),
    st.floats(0.1, 11.0, allow_nan=False),
)
def test_run_until_time_only_fires_due_events(items, horizon):
    env = Environment()
    fired = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        fired.append((delay, tag))

    for delay, tag in items:
        env.process(proc(env, delay, tag))
    env.run(until=horizon)
    assert env.now == horizon
    expected = sorted(
        (d, t) for d, t in items if d < horizon
    )
    assert sorted(fired) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.001, 5.0, allow_nan=False), min_size=1,
                max_size=15))
def test_nested_process_joins_compose(delays):
    """A chain of processes each joining the next totals the sum."""
    env = Environment()

    def chain(env, remaining):
        if not remaining:
            return 0
        yield env.timeout(remaining[0])
        total = yield env.process(chain(env, remaining[1:]))
        return total + remaining[0]

    import pytest

    root = env.process(chain(env, delays))
    result = env.run(until=root)
    # Summation order differs between the sim (reverse) and sum().
    assert result == pytest.approx(sum(delays), rel=1e-12)
    assert env.now == pytest.approx(sum(delays), rel=1e-12)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0.01, 2.0, allow_nan=False), min_size=2, max_size=10)
)
def test_all_of_completes_at_max_any_of_at_min(delays):
    env = Environment()
    times = {}

    def waiter(env, kind):
        events = [env.timeout(d) for d in delays]
        if kind == "all":
            yield env.all_of(events)
        else:
            yield env.any_of(events)
        times[kind] = env.now

    env.process(waiter(env, "all"))
    env.run()
    env2 = Environment()

    def waiter2(env):
        events = [env.timeout(d) for d in delays]
        yield env.any_of(events)
        times["any"] = env.now

    env2.process(waiter2(env2))
    env2.run()
    assert times["all"] == max(delays)
    assert times["any"] == min(delays)
