"""Tests for process semantics: join, return values, interrupts."""

import pytest

from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


def test_process_return_value(env):
    def child(env):
        yield env.timeout(1)
        return 99

    def parent(env, results):
        value = yield env.process(child(env))
        results.append(value)

    results = []
    env.process(parent(env, results))
    env.run()
    assert results == [99]


def test_process_is_alive(env):
    def child(env):
        yield env.timeout(5)

    p = env.process(child(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yield_non_event_fails_process(env):
    def bad(env):
        yield "not an event"

    def watcher(env, p, caught):
        try:
            yield p
        except RuntimeError as exc:
            caught.append("non-event" in str(exc))

    caught = []
    p = env.process(bad(env))
    env.process(watcher(env, p, caught))
    env.run()
    assert caught == [True]


def test_interrupt_delivers_cause(env):
    log = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(env, target):
        yield env.timeout(3)
        target.interrupt(cause="shrink")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [(3.0, "shrink")]


def test_interrupt_detaches_from_target(env):
    """After an interrupt, the original wait target must not resume us."""
    log = []

    def victim(env):
        try:
            yield env.timeout(5)
        except Interrupt:
            log.append("interrupted")
        yield env.timeout(100)
        log.append("second wait done")

    def attacker(env, target):
        yield env.timeout(1)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == ["interrupted", "second wait done"]
    assert env.now == 101.0


def test_interrupting_terminated_process_raises(env):
    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected(env):
    def proc(env):
        with pytest.raises(RuntimeError):
            env.active_process.interrupt()
        yield env.timeout(1)

    env.process(proc(env))
    env.run()


def test_interrupt_on_about_to_terminate_process_is_dropped(env):
    """Interrupt scheduled the same instant the victim terminates is benign."""

    def victim(env):
        yield env.timeout(1)

    def attacker(env, target):
        yield env.timeout(1)
        if target.is_alive:
            target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()  # must not raise


def test_active_process_visible_inside(env):
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_process_rejects_non_generator(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_chained_processes(env):
    def level3(env):
        yield env.timeout(1)
        return 3

    def level2(env):
        v = yield env.process(level3(env))
        return v + 10

    def level1(env, out):
        v = yield env.process(level2(env))
        out.append(v)

    out = []
    env.process(level1(env, out))
    env.run()
    assert out == [13]
