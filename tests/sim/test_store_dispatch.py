"""FIFO and ordering proofs for the deque-based store dispatch.

``Store._dispatch`` was restructured from rebuild-the-list passes to
deque rotation with early exit.  These tests pin the externally visible
contract the restructure must preserve:

- items are delivered to blocked getters in *getter registration order*
  (fan-in FIFO);
- puts complete in submission order under a capacity bound, and the
  put/get cascade drains fully in one delta cycle;
- ``FilterStore`` keeps unsatisfied getters in relative order while
  satisfied ones are served (rotation fairness);
- two identical runs interleave identically (determinism).
"""

import pytest

from repro.sim import Environment, FilterStore, PriorityItem, PriorityStore, Store


@pytest.fixture
def env():
    return Environment()


def test_fan_in_getters_served_in_registration_order(env):
    store = Store(env)
    served = []

    def getter(env, tag):
        item = yield store.get()
        served.append((tag, item))

    for tag in range(8):
        env.process(getter(env, tag))

    def producer(env):
        yield env.timeout(1)
        for i in range(8):
            yield store.put(i)

    env.process(producer(env))
    env.run()
    # Getter k receives item k: FIFO among blocked getters.
    assert served == [(k, k) for k in range(8)]


def test_bounded_puts_complete_in_submission_order(env):
    store = Store(env, capacity=2)
    completed = []

    def putter(env, i):
        yield store.put(i)
        completed.append(i)

    for i in range(6):
        env.process(putter(env, i))

    drained = []

    def consumer(env):
        yield env.timeout(1)
        for _ in range(6):
            item = yield store.get()
            drained.append(item)

    env.process(consumer(env))
    env.run()
    assert completed == list(range(6))
    assert drained == list(range(6))


def test_put_get_cascade_drains_in_one_pass(env):
    # A full store with parked puts AND parked gets: each get frees a
    # slot, which must admit the next put in the same dispatch cascade.
    store = Store(env, capacity=1)
    log = []

    def putter(env, i):
        yield store.put(i)
        log.append(("put", i))

    def getter(env, i):
        item = yield store.get()
        log.append(("got", item))

    for i in range(4):
        env.process(putter(env, i))
    for i in range(4):
        env.process(getter(env, i))
    env.run()
    assert [e for e in log if e[0] == "got"] == [("got", i) for i in range(4)]
    assert [e for e in log if e[0] == "put"] == [("put", i) for i in range(4)]
    assert len(store.items) == 0


def test_filter_store_preserves_unsatisfied_getter_order(env):
    fstore = FilterStore(env)
    served = []

    def getter(env, tag, want):
        item = yield fstore.get(lambda x, w=want: x % 2 == w)
        served.append((tag, item))

    # a wants odd, b wants even, c wants odd.
    env.process(getter(env, "a", 1))
    env.process(getter(env, "b", 0))
    env.process(getter(env, "c", 1))

    def producer(env):
        yield env.timeout(1)
        yield fstore.put(3)  # odd -> a (earliest odd-getter)
        yield env.timeout(1)
        yield fstore.put(5)  # odd -> c (b keeps its place, unsatisfied)
        yield env.timeout(1)
        yield fstore.put(2)  # even -> b

    env.process(producer(env))
    env.run()
    assert served == [("a", 3), ("c", 5), ("b", 2)]


def test_filter_store_skipped_item_stays_available(env):
    fstore = FilterStore(env)
    got = []

    def wants_even(env):
        item = yield fstore.get(lambda x: x % 2 == 0)
        got.append(("even", item))

    def wants_any(env):
        yield env.timeout(1)
        item = yield fstore.get()
        got.append(("any", item))

    env.process(wants_even(env))
    env.process(wants_any(env))

    def producer(env):
        yield fstore.put(1)  # skipped by the even-getter
        yield env.timeout(2)
        yield fstore.put(4)

    env.process(producer(env))
    env.run()
    # The any-getter drains the skipped odd item; the even-getter gets 4.
    assert got == [("any", 1), ("even", 4)]
    assert len(fstore.items) == 0


def test_priority_store_orders_after_deque_rework(env):
    pstore = PriorityStore(env)
    got = []

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            item = yield pstore.get()
            got.append(item.priority)

    env.process(consumer(env))

    def producer(env):
        for prio in (5, 1, 3):
            yield pstore.put(PriorityItem(prio, str(prio)))

    env.process(producer(env))
    env.run()
    assert got == [1, 3, 5]


def _interleaved_trace(seed_offset):
    env = Environment()
    store = Store(env, capacity=3)
    fstore = FilterStore(env)
    trace = []

    def producer(env, n):
        for i in range(n):
            yield store.put(i)
            trace.append(("p", i, env.now))
            if i % 3 == 0:
                yield env.timeout(0.001)

    def consumer(env, tag, n):
        for _ in range(n):
            item = yield store.get()
            trace.append(("c", tag, item, env.now))

    def fproducer(env, n):
        for i in range(n):
            yield fstore.put(i + seed_offset)
            yield env.timeout(0.0005)

    def fconsumer(env, parity, n):
        for _ in range(n):
            item = yield fstore.get(lambda x, p=parity: x % 2 == p)
            trace.append(("f", parity, item, env.now))

    env.process(producer(env, 30))
    for tag in range(3):
        env.process(consumer(env, tag, 10))
    env.process(fproducer(env, 20))
    for parity in range(2):
        env.process(fconsumer(env, parity, 10))
    env.run()
    return trace


def test_dispatch_is_deterministic():
    assert _interleaved_trace(0) == _interleaved_trace(0)
    # And genuinely sensitive to the workload, not vacuously equal.
    assert _interleaved_trace(0) != _interleaved_trace(1)
