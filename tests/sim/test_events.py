"""Tests for event primitives: success/failure, conditions, composition."""

import pytest

from repro.sim import AllOf, AnyOf, Environment
from repro.sim.events import ConditionValue


@pytest.fixture
def env():
    return Environment()


def test_event_lifecycle(env):
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(41)
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.processed
    assert ev.value == 41


def test_event_value_unavailable_before_trigger(env):
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_double_trigger_rejected(env):
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception(env):
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_yielding_succeeded_event_passes_value(env):
    got = []

    def proc(env):
        ev = env.event()
        ev.succeed("payload")
        value = yield ev
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_all_of_collects_all_values(env):
    results = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        cond = yield AllOf(env, [t1, t2])
        results.append(list(cond.values()))
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [["a", "b"], 2]


def test_any_of_returns_first(env):
    results = []

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(1, value="fast")
        cond = yield AnyOf(env, [t1, t2])
        results.append(list(cond.values()))
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [["fast"], 1]


def test_and_or_operators(env):
    results = []

    def proc(env):
        t1 = env.timeout(1, value=1)
        t2 = env.timeout(2, value=2)
        cond = yield (t1 & t2)
        results.append(len(cond))

    env.process(proc(env))
    env.run()
    assert results == [2]


def test_empty_all_of_fires_immediately(env):
    results = []

    def proc(env):
        value = yield AllOf(env, [])
        results.append((env.now, len(value)))

    env.process(proc(env))
    env.run()
    assert results == [(0.0, 0)]


def test_condition_failure_propagates(env):
    caught = []

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("inner")

    def proc(env, p):
        try:
            yield AllOf(env, [p, env.timeout(5)])
        except RuntimeError as exc:
            caught.append(str(exc))

    p = env.process(bad(env))
    env.process(proc(env, p))
    env.run()
    assert caught == ["inner"]


def test_condition_value_mapping(env):
    e1, e2 = env.timeout(1, value="x"), env.timeout(2, value="y")
    cond = AllOf(env, [e1, e2])
    env.run()
    cv = cond.value
    assert isinstance(cv, ConditionValue)
    assert cv[e1] == "x" and cv[e2] == "y"
    assert cv == {e1: "x", e2: "y"}
    assert e1 in cv
    with pytest.raises(KeyError):
        _ = cv[env.event()]


def test_negative_timeout_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_cross_environment_condition_rejected(env):
    other = Environment()
    with pytest.raises(ValueError):
        AllOf(env, [env.timeout(1), other.timeout(1)])
