"""Tests for Resource, Store, PriorityStore, FilterStore and Container."""

import pytest

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)


@pytest.fixture
def env():
    return Environment()


# -- Resource ----------------------------------------------------------------


def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    log = []

    def worker(env, res, tag):
        with res.request() as req:
            yield req
            log.append((tag, "start", env.now))
            yield env.timeout(10)
        log.append((tag, "end", env.now))

    for tag in "abc":
        env.process(worker(env, res, tag))
    env.run()
    starts = {tag: t for tag, what, t in log if what == "start"}
    assert starts["a"] == 0 and starts["b"] == 0
    assert starts["c"] == 10  # had to wait for a slot


def test_resource_release_without_hold_raises(env):
    res = Resource(env)

    def proc(env):
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    env.process(proc(env))
    env.run()


def test_resource_capacity_growth_grants_waiters(env):
    res = Resource(env, capacity=1)
    granted = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(100)

    def waiter(env):
        req = res.request()
        yield req
        granted.append(env.now)

    def grower(env):
        yield env.timeout(5)
        res.capacity = 2

    env.process(holder(env))
    env.process(waiter(env))
    env.process(grower(env))
    env.run()
    assert granted == [5.0]


def test_resource_cancel_waiting_request(env):
    res = Resource(env, capacity=1)

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def impatient(env, log):
        req = res.request()
        result = yield req | env.timeout(1)
        if req not in result:
            req.cancel()
            log.append("gave up")
        yield env.timeout(0)

    log = []
    env.process(holder(env))
    env.process(impatient(env, log))
    env.run()
    assert log == ["gave up"]
    assert list(res.queue) == []


def test_resource_invalid_capacity(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


# -- Store --------------------------------------------------------------------


def test_store_fifo(env):
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put(env):
    store = Store(env)
    log = []

    def consumer(env):
        item = yield store.get()
        log.append((env.now, item))

    def producer(env):
        yield env.timeout(7)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [(7.0, "x")]


def test_store_capacity_blocks_put(env):
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a in", env.now))
        yield store.put("b")
        log.append(("b in", env.now))

    def consumer(env):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("a in", 0.0), ("b in", 5.0)]


def test_store_len(env):
    store = Store(env)
    store.put("a")
    store.put("b")
    env.run()
    assert len(store) == 2


# -- PriorityStore -------------------------------------------------------------


def test_priority_store_orders_items(env):
    store = PriorityStore(env)
    got = []

    def producer(env):
        yield store.put(PriorityItem(3, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(2, "mid"))

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            got.append(item.item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["high", "mid", "low"]


# -- FilterStore ---------------------------------------------------------------


def test_filter_store_matches_predicate(env):
    store = FilterStore(env)
    got = []

    def producer(env):
        for i in range(5):
            yield store.put(i)

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 1)
        got.append(item)
        item = yield store.get(lambda x: x % 2 == 1)
        got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [1, 3]
    assert sorted(store.items) == [0, 2, 4]


def test_filter_store_notify_rechecks_predicates(env):
    store = FilterStore(env)
    box = {"ready": False}
    got = []

    def consumer(env):
        item = yield store.get(lambda x: box["ready"])
        got.append((env.now, item))

    def mutator(env):
        yield store.put("record")
        yield env.timeout(4)
        box["ready"] = True
        store.notify()

    env.process(consumer(env))
    env.process(mutator(env))
    env.run()
    assert got == [(4.0, "record")]


# -- Container -------------------------------------------------------------------


def test_container_levels(env):
    box = Container(env, capacity=100, init=50)

    def proc(env):
        yield box.get(30)
        assert box.level == 20
        yield box.put(60)
        assert box.level == 80

    env.process(proc(env))
    env.run()


def test_container_get_blocks_until_enough(env):
    box = Container(env, capacity=100, init=0)
    log = []

    def consumer(env):
        yield box.get(10)
        log.append(env.now)

    def producer(env):
        yield env.timeout(2)
        yield box.put(5)
        yield env.timeout(2)
        yield box.put(5)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [4.0]


def test_container_put_blocks_at_capacity(env):
    box = Container(env, capacity=10, init=10)
    log = []

    def producer(env):
        yield box.put(5)
        log.append(env.now)

    def consumer(env):
        yield env.timeout(3)
        yield box.get(5)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [3.0]


def test_container_validation(env):
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    box = Container(env, capacity=10)
    with pytest.raises(ValueError):
        box.get(0)
    with pytest.raises(ValueError):
        box.put(-1)
