"""Shared test fixtures and factories: a miniature Redbud stack."""

import pytest

from repro.client.client import RedbudClient
from repro.core.delegation import DoubleSpacePool
from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.mds.server import MdsParameters, MetadataServer
from repro.net.link import Link
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment, StreamRNG
from repro.storage.blockdev import BlockDevice
from repro.storage.blktrace import BlkTrace
from repro.storage.disk import DiskArray, DiskParameters


class MiniCluster:
    """A hand-assembled small cluster for unit/integration tests."""

    def __init__(
        self,
        env,
        num_clients=1,
        commit_mode="synchronous",
        delegation_chunk=None,
        mds_params=None,
        disk_params=None,
        volume_size=1 << 30,
        seed=7,
        obs=None,
        **client_kw,
    ):
        self.env = env
        self.obs = obs
        if obs is not None:
            obs.attach(env)
        rng = StreamRNG(seed)
        self.trace = BlkTrace()
        self.array = DiskArray(
            env,
            disk_params or DiskParameters(volume_size=volume_size),
            rng.stream("disk"),
            trace=self.trace,
            obs=obs,
        )
        self.port = RpcServerPort(env)
        self.namespace = Namespace()
        self.space = SpaceManager(volume_size=volume_size, num_groups=4)
        downlinks = {}
        self.clients = []
        for cid in range(num_clients):
            up = Link(env, name=f"up-{cid}")
            down = Link(env, name=f"down-{cid}")
            downlinks[cid] = down
            rpc = RpcClient(
                env, cid, RpcTransport(env, up, down, self.port), obs=obs
            )
            delegation = (
                DoubleSpacePool(chunk_size=delegation_chunk)
                if delegation_chunk
                else None
            )
            client = RedbudClient(
                env,
                cid,
                rpc,
                BlockDevice(env, cid, self.array, obs=obs),
                commit_mode=commit_mode,
                delegation=delegation,
                obs=obs,
                **client_kw,
            )
            self.clients.append(client)
        self.mds = MetadataServer(
            env,
            mds_params or MdsParameters(num_daemons=4),
            self.namespace,
            self.space,
            self.port,
            downlinks,
            obs=obs,
        )

    @property
    def client(self):
        return self.clients[0]

    def run_ops(self, *generators, settle=1.0):
        """Run generator ops to completion; returns their results.

        Background daemons (thread-pool controller, compound controller)
        tick forever, so we run until every op process finishes, then let
        the cluster settle for ``settle`` virtual seconds so in-flight
        background commits can land.
        """
        results = [None] * len(generators)

        def runner(env, idx, gen):
            results[idx] = yield from gen
            return None

        processes = [
            self.env.process(runner(self.env, i, gen))
            for i, gen in enumerate(generators)
        ]
        self.env.run(until=self.env.all_of(processes))
        if settle:
            self.env.run(until=self.env.now + settle)
        return results


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def sync_cluster(env):
    return MiniCluster(env, commit_mode="synchronous")


@pytest.fixture
def delayed_cluster(env):
    return MiniCluster(env, commit_mode="delayed")


@pytest.fixture
def delegated_cluster(env):
    return MiniCluster(
        env, commit_mode="delayed", delegation_chunk=16 * 1024 * 1024
    )
