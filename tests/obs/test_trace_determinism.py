"""Tracing must not perturb the simulation (the zero-perturbation rule).

A traced run and an untraced run of the same seeded cluster must produce
byte-identical BlkTrace rows and identical workload metrics: the hooks
only record, so turning them on cannot change event ordering, RNG
consumption, or any timing.
"""

import pytest

from repro.fs import build_cluster
from repro.obs import Instrumentation
from repro.workloads import VarmailWorkload, XcdnWorkload


def _run(system, workload_factory, obs):
    cluster = build_cluster(system, num_clients=2, seed=11, obs=obs)
    result = cluster.run_workload(
        workload_factory(), duration=1.0, warmup=0.1
    )
    rows = (
        cluster.blktrace.to_rows()
        if hasattr(cluster, "blktrace")
        else None
    )
    return cluster, result, rows


def _xcdn():
    return XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=5, threads_per_client=2
    )


def _varmail():
    return VarmailWorkload(seed_files_per_client=5)


@pytest.mark.parametrize(
    "system", ["redbud-delayed", "redbud-original"]
)
def test_tracing_does_not_change_blktrace(system):
    _, bare_result, bare_rows = _run(system, _xcdn, obs=None)
    _, traced_result, traced_rows = _run(
        system, _xcdn, obs=Instrumentation()
    )
    assert bare_rows == traced_rows
    assert bare_result.ops_completed == traced_result.ops_completed
    assert bare_result.metrics.total_bytes == (
        traced_result.metrics.total_bytes
    )
    assert bare_result.latency().mean == traced_result.latency().mean


def test_tracing_does_not_change_final_time_varmail():
    bare_cluster, bare_result, bare_rows = _run(
        "redbud-delayed", _varmail, obs=None
    )
    traced_cluster, traced_result, traced_rows = _run(
        "redbud-delayed", _varmail, obs=Instrumentation()
    )
    assert bare_rows == traced_rows
    assert bare_cluster.env.now == traced_cluster.env.now
    assert bare_result.latency().p95 == traced_result.latency().p95


def test_traced_run_actually_recorded_something():
    obs = Instrumentation()
    _run("redbud-delayed", _xcdn, obs=obs)
    assert len(obs.tracer.spans) > 0
    assert len(obs.tracer.events) > 0
    assert obs.probe.steps > 0


def test_two_traced_runs_identical_trace():
    obs_a = Instrumentation()
    obs_b = Instrumentation()
    _run("redbud-delayed", _xcdn, obs=obs_a)
    _run("redbud-delayed", _xcdn, obs=obs_b)
    from repro.obs import to_jsonl_records

    assert to_jsonl_records(obs_a.tracer) == to_jsonl_records(obs_b.tracer)
