"""Log-bucketed quantile histograms: accuracy bound and merge laws.

The documented contract (DESIGN §12): a quantile estimate is the
geometric midpoint of the bucket holding the ``ceil(q * count)``-th
smallest observation, so it sits within ``sqrt(GROWTH) - 1`` (< 1%)
relative error of that *exact order statistic* -- for any sample shape,
including bimodal sets where interpolating percentiles would be
meaningless.  Bucket counts must merge associatively, because per-shard
and per-window histograms aggregate by merging.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import Histogram

#: The documented relative-error bound, plus float fuzz.
REL_BOUND = math.sqrt(Histogram.GROWTH) - 1 + 1e-9

QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0)


def _fill(samples):
    hist = Histogram("t")
    for s in samples:
        hist.observe(float(s))
    return hist


def _exact(samples, q):
    """The order statistic the histogram documents itself against."""
    ordered = np.sort(np.asarray(samples, dtype=float))
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


def _assert_within_bound(samples):
    hist = _fill(samples)
    for q in QUANTILES:
        exact = _exact(samples, q)
        est = hist.quantile(q)
        if exact < Histogram.TINY:
            assert est == 0.0 or est <= max(samples)
            continue
        assert abs(est - exact) <= REL_BOUND * exact, (
            f"q={q}: estimate {est} vs exact {exact} "
            f"(rel err {abs(est - exact) / exact:.4%})"
        )


# -- accuracy over random sample shapes --------------------------------------


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 4000))
def test_uniform_within_bound(seed, n):
    rng = np.random.default_rng(seed)
    _assert_within_bound(rng.uniform(1e-6, 10.0, size=n))


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 4000))
def test_lognormal_within_bound(seed, n):
    rng = np.random.default_rng(seed)
    _assert_within_bound(rng.lognormal(mean=-6.0, sigma=2.0, size=n))


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 4000))
def test_bimodal_within_bound(seed, n):
    """Fast-path / slow-path mixture: the shape interpolation gets wrong."""
    rng = np.random.default_rng(seed)
    fast = rng.uniform(1e-5, 1e-4, size=n // 2 + 1)
    slow = rng.uniform(0.5, 2.0, size=n - n // 2 - 1 + 1)
    samples = np.concatenate([fast, slow])[:n]
    _assert_within_bound(samples)


def test_zero_and_tiny_samples():
    hist = _fill([0.0, 0.0, 0.0, 5e-13, 1.0])
    assert hist.zero_count == 4
    assert hist.quantile(0.5) == 0.0
    assert hist.quantile(1.0) == 1.0


def test_extreme_quantiles_are_exact():
    samples = [0.003, 0.017, 0.4, 1.9]
    hist = _fill(samples)
    assert hist.quantile(0.0) == min(samples)
    assert hist.quantile(1.0) == max(samples)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_empty_histogram_quantile_is_zero():
    assert Histogram("e").quantile(0.99) == 0.0


# -- merge associativity ------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    sizes=st.lists(st.integers(0, 500), min_size=2, max_size=5),
)
def test_merge_matches_pooled_observation(seed, sizes):
    """Per-shard histograms merged == one histogram over all samples."""
    rng = np.random.default_rng(seed)
    shards = [rng.lognormal(-5.0, 1.5, size=n) for n in sizes]
    pooled = _fill([s for shard in shards for s in shard])
    merged = Histogram("m")
    for shard in shards:
        merged.merge_from(_fill(shard))
    assert merged.count == pooled.count
    assert merged.buckets == pooled.buckets
    assert merged.zero_count == pooled.zero_count
    assert merged.int_counts == pooled.int_counts
    assert merged.min == pooled.min and merged.max == pooled.max
    assert merged.total == pytest.approx(pooled.total)
    for q in QUANTILES:
        assert merged.quantile(q) == pooled.quantile(q)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_merge_is_order_independent(seed):
    rng = np.random.default_rng(seed)
    parts = [rng.uniform(1e-4, 1.0, size=rng.integers(0, 200))
             for _ in range(3)]
    ab_c = Histogram("x")
    ab_c.merge_from(_fill(parts[0]))
    ab_c.merge_from(_fill(parts[1]))
    ab_c.merge_from(_fill(parts[2]))
    c_ba = Histogram("y")
    c_ba.merge_from(_fill(parts[2]))
    c_ba.merge_from(_fill(parts[1]))
    c_ba.merge_from(_fill(parts[0]))
    assert ab_c.buckets == c_ba.buckets
    assert ab_c.count == c_ba.count
    for q in QUANTILES:
        assert ab_c.quantile(q) == c_ba.quantile(q)


# -- the bool regression (satellite) -----------------------------------------


def test_bool_observations_do_not_pollute_int_counts():
    """``bool`` subclasses ``int``: observe(True) must not count as 1."""
    hist = Histogram("flags")
    hist.observe(True)
    hist.observe(False)
    hist.observe(1)
    hist.observe(1.0)
    assert hist.count == 4
    assert hist.int_counts == {1: 2}
    # Bools still participate in count/sum/buckets like any number.
    assert hist.total == pytest.approx(3.0)
    assert hist.zero_count == 1  # False == 0.0


def test_summary_exposes_tail_quantiles():
    hist = _fill([0.001 * i for i in range(1, 1001)])
    summary = hist.summary()
    for key in ("p50", "p90", "p99", "p999"):
        assert key in summary
    assert summary["p50"] == pytest.approx(0.5, rel=0.02)
    assert summary["p999"] == pytest.approx(0.999, rel=0.02)
