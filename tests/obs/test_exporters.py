"""Exporter round-trips: JSONL and Chrome trace_event schemas."""

import json

from repro.obs import (
    Instrumentation,
    Tracer,
    load_chrome_trace,
    read_jsonl,
    stats_table,
    to_chrome_trace,
    to_jsonl_records,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import Environment


def _sample_tracer():
    env = Environment()
    tracer = Tracer(env)
    uid = tracer.new_update()
    root = tracer.begin(
        "update", "client", node="client-0", actor="app",
        update_ids=(uid,), file_id=3,
    )
    child = tracer.begin(
        "writepage", "client", node="client-0", actor="writeback",
        parent=root.span_id, update_ids=(uid,), length=4096,
    )
    env.run(until=0.25)
    tracer.end(child)
    tracer.end(root)
    tracer.instant(
        "commit_merge", "queue", node="client-0", update_ids=(uid,)
    )
    tracer.begin("unfinished", "test")  # open span: excluded from chrome
    return tracer


def test_jsonl_roundtrip(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.jsonl")
    count = write_jsonl(tracer, path)
    records = read_jsonl(path)
    assert len(records) == count == len(tracer.spans) + len(tracer.events)
    assert records == to_jsonl_records(tracer)
    spans = [r for r in records if r["type"] == "span"]
    instants = [r for r in records if r["type"] == "instant"]
    assert len(spans) == 3
    assert len(instants) == 1
    wp = next(r for r in spans if r["name"] == "writepage")
    assert wp["end"] == 0.25
    assert wp["update_ids"] == [1]
    assert wp["parent_id"] == spans[0]["span_id"]


def test_chrome_trace_schema(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.json")
    write_chrome_trace(tracer, path)
    trace = load_chrome_trace(path)
    events = trace["traceEvents"]
    # Metadata names for process/thread, X for spans, i for instants.
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"update", "writepage"}
    wp = next(e for e in complete if e["name"] == "writepage")
    assert wp["ts"] == 0.0
    assert wp["dur"] == 0.25 * 1e6  # virtual seconds -> microseconds
    assert wp["args"]["update_ids"] == [1]
    assert "parent_span" in wp["args"]
    names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "client-0" in names
    # The whole object must survive a plain JSON round-trip.
    assert json.loads(json.dumps(trace)) == trace


def test_unfinished_spans_not_exported_to_chrome():
    tracer = _sample_tracer()
    trace = to_chrome_trace(tracer)
    assert all(
        e["name"] != "unfinished" for e in trace["traceEvents"]
    )


def test_trace_summary_mentions_chains():
    tracer = _sample_tracer()
    text = trace_summary(tracer)
    assert "complete enqueue->dispatch chains" in text
    assert "writepage" in text


def test_stats_table_renders():
    obs = Instrumentation()
    obs.registry.counter("a.count").inc(3)
    obs.registry.gauge("b.depth").set(7.0)
    obs.registry.histogram("c.degree").observe(2)
    text = stats_table(obs.registry).render()
    for fragment in ("a.count", "b.depth", "c.degree", "counter", "gauge"):
        assert fragment in text


def test_end_to_end_export_from_minicluster(tmp_path, env):
    from tests.conftest import MiniCluster

    obs = Instrumentation()
    cluster = MiniCluster(env, commit_mode="delayed", obs=obs)
    fs = cluster.client
    (fid,) = cluster.run_ops(fs.create("f"), settle=0)
    cluster.run_ops(fs.write(fid, 0, 65536), settle=2.0)

    chrome_path = str(tmp_path / "t.json")
    jsonl_path = str(tmp_path / "t.jsonl")
    assert write_chrome_trace(obs.tracer, chrome_path) > 0
    assert write_jsonl(obs.tracer, jsonl_path) > 0
    trace = load_chrome_trace(chrome_path)
    assert any(e.get("name") == "disk_dispatch" for e in trace["traceEvents"])
    records = read_jsonl(jsonl_path)
    assert any(r["name"] == "commit_queued" for r in records)
