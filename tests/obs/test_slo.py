"""The SLO layer: spec parsing, critical-path attribution, timeline,
fault-excused evaluation, and the zero-perturbation contract.
"""

import json

import pytest

from repro.analysis.metrics import OpMetrics
from repro.fs import build_cluster
from repro.obs import Instrumentation, SloSpec, Timeline
from repro.obs.slo import (
    STAGES,
    decompose_updates,
    critical_path_table,
    excused_histogram,
    timeline_counter_events,
)
from repro.obs.tracer import Tracer
from repro.workloads import XcdnWorkload


class FakeEnv:
    """A settable clock (the tracer only reads ``.now``)."""

    def __init__(self):
        self.now = 0.0


# -- SLO spec parsing --------------------------------------------------------


def test_spec_parse_and_describe():
    spec = SloSpec.parse("write:p99<=0.05, *:p999<=0.5, mean<=0.01")
    assert [r.op for r in spec.rules] == ["write", "*", "*"]
    assert [r.metric for r in spec.rules] == ["p99", "p999", "mean"]
    assert spec.rules[0].threshold == 0.05
    assert "write:p99<=0.05" in spec.describe()


@pytest.mark.parametrize(
    "bad",
    ["", "write:p99", "write:p42<=0.1", "write:p99<=oops", "p99<=-1"],
)
def test_spec_parse_rejects(bad):
    with pytest.raises(ValueError):
        SloSpec.parse(bad)


# -- critical-path decomposition --------------------------------------------


def _synthetic_chain(tracer, env, uid, base=0.0):
    """One update's full enqueue -> dispatch chain at known offsets."""
    env.now = base
    queue = tracer.begin(
        "commit_queued", "queue", node="client-0", update_ids=(uid,)
    )
    env.now = base + 0.010
    tracer.instant("commit_checkout", "queue", update_ids=(uid,))
    tracer.end(queue)
    env.now = base + 0.012
    tracer.instant("compound_assembly", "daemon", update_ids=(uid,))
    rpc = tracer.begin("rpc:commit", "rpc", update_ids=(uid,))
    env.now = base + 0.013
    mds = tracer.begin("mds_handle", "mds", node="mds", update_ids=(uid,))
    env.now = base + 0.016
    tracer.end(mds)
    env.now = base + 0.018
    disk = tracer.begin(
        "disk_dispatch", "blk", node="array", update_ids=(uid,)
    )
    env.now = base + 0.020
    tracer.end(rpc)
    env.now = base + 0.030
    tracer.end(disk)
    return queue


def test_exclusive_decomposition_sums_to_total():
    env = FakeEnv()
    tracer = Tracer(env)
    uid = tracer.new_update()
    _synthetic_chain(tracer, env, uid)
    (b,) = decompose_updates(tracer)
    assert b.update_id == uid
    assert b.total == pytest.approx(0.030)
    assert b.stages["disk"] == pytest.approx(0.012)
    assert b.stages["mds_service"] == pytest.approx(0.003)
    # rpc span [0.012, 0.020] minus mds [0.013, 0.016] and disk
    # [0.018, 0.030] leaves [0.012, 0.013] + [0.016, 0.018].
    assert b.stages["rpc"] == pytest.approx(0.003)
    assert b.stages["compound_assembly"] == pytest.approx(0.002)
    assert b.stages["dedup_merge"] == 0.0
    assert b.stages["queue_wait"] == pytest.approx(0.010)
    assert b.stages["client_other"] == pytest.approx(0.0, abs=1e-12)
    assert sum(b.stages.values()) == pytest.approx(b.total)
    assert set(b.stages) == set(STAGES)


def test_merged_update_charged_to_dedup_merge():
    env = FakeEnv()
    tracer = Tracer(env)
    resident, merged = tracer.new_update(), tracer.new_update()
    queue = _synthetic_chain(tracer, env, resident)
    # Ride-along merge at t=0.004: the merged update shares the
    # resident record's spans from the merge instant onward.
    env.now = 0.004
    tracer.instant(
        "commit_merge",
        "queue",
        update_ids=(resident, merged),
        merged_update=merged,
    )
    queue.update_ids = (resident, merged)
    for span in tracer.spans:
        if span.name in ("rpc:commit", "mds_handle", "disk_dispatch"):
            span.update_ids = (resident, merged)
    for event in tracer.events:
        if event.name in ("commit_checkout", "compound_assembly"):
            event.update_ids = (resident, merged)
    by_uid = {b.update_id: b for b in decompose_updates(tracer)}
    assert set(by_uid) == {resident, merged}
    assert by_uid[resident].stages["dedup_merge"] == 0.0
    # Merged update: queue span end 0.010 - merge 0.004 = 0.006 charged
    # to dedup_merge, the pre-merge wait stays queue_wait.
    assert by_uid[merged].stages["dedup_merge"] == pytest.approx(0.006)
    assert by_uid[merged].stages["queue_wait"] == pytest.approx(0.004)
    assert sum(by_uid[merged].stages.values()) == pytest.approx(
        by_uid[merged].total
    )


def test_critical_path_table_renders():
    env = FakeEnv()
    tracer = Tracer(env)
    for i in range(20):
        _synthetic_chain(tracer, env, tracer.new_update(), base=0.05 * i)
    table = critical_path_table(decompose_updates(tracer))
    text = table.render()
    for stage in STAGES:
        assert stage in text


# -- the timeline and fault-excused evaluation -------------------------------


def _metrics_with(fault_latency=0.5):
    metrics = OpMetrics()
    for now in (0.05, 0.10, 0.15, 0.90, 0.95):
        metrics.record("write", 0.001, nbytes=1, now=now)
    # Two slow ops inside the faulty window [0.25, 0.50).
    metrics.record("write", fault_latency, nbytes=1, now=0.30)
    metrics.record("write", fault_latency, nbytes=1, now=0.45)
    return metrics


def _fault_tracer():
    env = FakeEnv()
    tracer = Tracer(env)
    env.now = 0.30
    tracer.instant("message_drop", "fault", node="uplink-0")
    env.now = 0.40
    tracer.instant("partition_start", "fault", client=0, until=0.55)
    return tracer


def test_timeline_marks_fault_windows():
    metrics = _metrics_with()
    timeline = Timeline.build(metrics, _fault_tracer())
    # Window width 0.25: the point fault and the [0.40, 0.55] range both
    # land in windows 1-2; clean data windows are 0 and 3.
    assert timeline.fault_window_indexes == {1, 2}
    by_index = {w.index: w for w in timeline.windows}
    assert by_index[0].ops == 3
    assert not by_index[0].fault_active
    assert "message_drop" in by_index[1].faults
    assert "partition_start" in by_index[2].faults


def test_fault_excused_evaluation_flips_verdict():
    metrics = _metrics_with(fault_latency=0.5)
    timeline = Timeline.build(metrics, _fault_tracer())
    spec = SloSpec.parse("write:p99<=0.01")
    (unexcused,) = spec.evaluate(metrics)
    assert not unexcused.passed
    (excused,) = spec.evaluate(metrics, timeline.fault_window_indexes)
    assert excused.passed
    assert excused.excused_count == 5
    assert excused.count == 7
    assert excused.value > excused.excused_value


def test_excused_histogram_drops_only_excluded_windows():
    metrics = _metrics_with()
    hist = excused_histogram(metrics, "write", {1, 2})
    assert hist.count == 5
    assert hist.max == pytest.approx(0.001)
    pooled = excused_histogram(metrics, None, frozenset())
    assert pooled.count == metrics.total_ops


def test_timeline_counter_events_are_counter_tracks():
    metrics = _metrics_with()
    timeline = Timeline.build(metrics, _fault_tracer())
    events = timeline_counter_events(timeline)
    counters = [e for e in events if e.get("ph") == "C"]
    assert counters, "expected ph=C counter events"
    names = {e["name"] for e in counters}
    assert {"slo.throughput", "slo.latency_ms", "slo.queue_depth",
            "slo.merge_ratio", "slo.fault_active"} <= names
    # Fault-active annotation rides the counter track too.
    active = [
        e["args"]["active"]
        for e in counters
        if e["name"] == "slo.fault_active"
    ]
    assert 1 in active and 0 in active


# -- end-to-end on a live cluster -------------------------------------------


def _xcdn():
    return XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=5, threads_per_client=2
    )


def test_live_decomposition_and_slo():
    obs = Instrumentation()
    cluster = build_cluster("redbud-delayed", num_clients=2, seed=11,
                            obs=obs)
    result = cluster.run_workload(_xcdn(), duration=1.0, warmup=0.1)
    cluster.settle()
    breakdowns = decompose_updates(obs.tracer)
    assert breakdowns, "a delayed-commit run must yield complete chains"
    for b in breakdowns:
        assert b.total > 0
        assert sum(b.stages.values()) == pytest.approx(b.total)
        assert all(v >= -1e-12 for v in b.stages.values())
    timeline = Timeline.build(result.metrics, obs.tracer, breakdowns)
    assert timeline.windows
    assert sum(w.ops for w in timeline.windows) == result.ops_completed
    results = SloSpec.parse("write:p99<=10,*:p999<=10").evaluate(
        result.metrics, timeline.fault_window_indexes
    )
    assert all(r.passed for r in results)
    # The run harness published per-op tails into the registry.
    assert "slo.latency.write" in obs.registry
    snap = obs.registry.snapshot()["slo.latency.write"]
    assert snap["count"] == result.metrics.count("write")
    assert "p999" in snap


def test_slo_layer_preserves_zero_perturbation():
    """Arming obs + evaluating SLOs must not change the simulation."""

    def run(obs):
        cluster = build_cluster(
            "redbud-delayed", num_clients=2, seed=11, obs=obs
        )
        result = cluster.run_workload(_xcdn(), duration=1.0, warmup=0.1)
        return cluster.blktrace.to_rows(), result

    bare_rows, bare_result = run(None)
    obs = Instrumentation()
    armed_rows, armed_result = run(obs)
    # Evaluating is a pure read -- do it, then re-check the rows.
    timeline = Timeline.build(armed_result.metrics, obs.tracer,
                              decompose_updates(obs.tracer))
    SloSpec.parse("*:p999<=100").evaluate(
        armed_result.metrics, timeline.fault_window_indexes
    )
    assert bare_rows == armed_rows
    assert bare_result.ops_completed == armed_result.ops_completed
    assert bare_result.latency().p999 == armed_result.latency().p999


# -- the CLI verb ------------------------------------------------------------


def test_cli_slo_json_smoke(capsys):
    from repro.cli import main

    code = main(
        [
            "slo",
            "--systems", "redbud-delayed",
            "--clients", "2",
            "--duration", "0.5",
            "--slo", "write:p99<=10,*:p999<=10",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    entry = payload["systems"]["redbud-delayed"]
    assert entry["slo"] and all(r["passed"] for r in entry["slo"])
    assert entry["critical_path_updates"] > 0
    assert entry["timeline"]
    assert "p999" in entry["per_op"]["write"]


def test_cli_slo_violation_exits_nonzero(capsys):
    from repro.cli import main

    code = main(
        [
            "slo",
            "--systems", "nfs3",
            "--clients", "2",
            "--duration", "0.5",
            "--slo", "write:p99<=0.000000001",
            "--json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    (verdict,) = payload["systems"]["nfs3"]["slo"]
    assert not verdict["passed"]
