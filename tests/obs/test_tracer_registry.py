"""Unit tests for the tracer and the metrics registry."""

import pytest

from repro.obs import (
    CHAIN_STAGES,
    Instrumentation,
    MetricsRegistry,
    Tracer,
    complete_chains,
    update_stages,
)
from repro.sim import Environment


class TestTracer:
    def test_span_lifecycle(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.begin("work", "test", node="n", actor="a", k=1)
        assert not span.finished
        assert span.duration == 0.0
        env.run(until=0.5)
        tracer.end(span, extra=2)
        assert span.finished
        assert span.start == 0.0
        assert span.end == 0.5
        assert span.duration == 0.5
        assert span.args == {"k": 1, "extra": 2}

    def test_clock_follows_environment(self):
        env = Environment()
        tracer = Tracer()
        assert tracer.now == 0.0
        tracer.attach(env)
        env.run(until=1.25)
        assert tracer.now == 1.25
        event = tracer.instant("tick", "test")
        assert event.time == 1.25

    def test_update_ids_are_unique_and_sequential(self):
        tracer = Tracer()
        ids = [tracer.new_update() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_span_ids_unique(self):
        tracer = Tracer()
        spans = [tracer.begin(f"s{i}", "t") for i in range(10)]
        assert len({s.span_id for s in spans}) == 10

    def test_parent_linkage(self):
        tracer = Tracer()
        parent = tracer.begin("outer", "t")
        child = tracer.begin("inner", "t", parent=parent.span_id)
        assert child.parent_id == parent.span_id

    def test_views(self):
        tracer = Tracer()
        a = tracer.begin("alpha", "t")
        tracer.begin("beta", "t")
        tracer.end(a)
        tracer.instant("blip", "t")
        assert len(tracer.finished_spans()) == 1
        assert len(tracer.spans_named("alpha")) == 1
        assert len(tracer.events_named("blip")) == 1
        assert len(tracer) == 3


class TestChains:
    def test_complete_chain_detected(self):
        tracer = Tracer()
        uid = tracer.new_update()
        for stage in CHAIN_STAGES:
            tracer.end(tracer.begin(stage, "t", update_ids=(uid,)))
        assert complete_chains(tracer) == [uid]

    def test_partial_chain_excluded(self):
        tracer = Tracer()
        uid = tracer.new_update()
        for stage in CHAIN_STAGES[:-1]:
            tracer.end(tracer.begin(stage, "t", update_ids=(uid,)))
        assert complete_chains(tracer) == []

    def test_require_merge(self):
        tracer = Tracer()
        plain = tracer.new_update()
        merged = tracer.new_update()
        for stage in CHAIN_STAGES:
            tracer.end(
                tracer.begin(stage, "t", update_ids=(plain, merged))
            )
        tracer.instant("commit_merge", "t", update_ids=(merged,))
        assert complete_chains(tracer) == [plain, merged]
        assert complete_chains(tracer, require_merge=True) == [merged]

    def test_update_stages_includes_instants(self):
        tracer = Tracer()
        uid = tracer.new_update()
        tracer.begin("commit_queued", "t", update_ids=(uid,))
        tracer.instant("commit_merge", "t", update_ids=(uid,))
        assert update_stages(tracer)[uid] == {
            "commit_queued",
            "commit_merge",
        }


class TestRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2)
        assert reg.counter("x").read() == 3
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_pull_and_set(self):
        reg = MetricsRegistry()
        state = {"v": 5}
        g = reg.gauge("pull", lambda: state["v"])
        assert g.read() == 5
        state["v"] = 9
        assert g.read() == 9
        with pytest.raises(ValueError):
            g.set(1.0)
        s = reg.gauge("set")
        s.set(2.5)
        assert s.read() == 2.5

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("deg")
        for v in (1, 3, 3, 6):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(3.25)
        assert h.min == 1
        assert h.max == 6
        assert h.int_counts == {1: 1, 3: 2, 6: 1}

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_snapshot_and_rows(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(4)
        snap = reg.snapshot()
        assert snap["c"] == 1
        assert snap["g"] == 2.0
        assert snap["h"]["count"] == 1
        kinds = {name: kind for name, kind, _ in reg.rows()}
        assert kinds == {"c": "counter", "g": "gauge", "h": "histogram"}


class TestInstrumentation:
    def test_attach_registers_engine_gauges(self):
        env = Environment()
        obs = Instrumentation()
        obs.attach(env)
        assert env.probe is obs.probe

        def proc():
            yield env.timeout(0.1)
            yield env.timeout(0.2)

        env.process(proc())
        env.run()
        snap = obs.registry.snapshot()
        assert snap["sim.events_processed"] >= 2
        assert snap["sim.event_lag.max"] >= 0.1
        assert snap["sim.now"] == pytest.approx(0.3)
