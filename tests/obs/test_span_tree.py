"""Span-tree integrity: every delayed-commit update completes its chain.

Drives a MiniCluster with instrumentation and checks the causal record:
each logical update must pass through ``commit_queued ->
compound_assembly -> rpc:commit -> mds_handle -> disk_dispatch``, dedup
merges must extend the resident record's id set, and parent links must
form a tree rooted at the ``update`` span.
"""

import pytest

from repro.obs import (
    Instrumentation,
    complete_chains,
    update_stages,
)
from tests.conftest import MiniCluster


@pytest.fixture
def traced_cluster(env):
    return MiniCluster(env, commit_mode="delayed", obs=Instrumentation())


def _write_files(cluster, file_ids, writes_per_file=3, size=8192):
    """Repeated writes per file -- repeats force commit-queue dedup."""
    def ops(fs, fid):
        for i in range(writes_per_file):
            yield from fs.write(fid, i * size, size)

    fs = cluster.client
    created = cluster.run_ops(
        *[fs.create(f"f{n}") for n in range(file_ids)], settle=0
    )
    cluster.run_ops(*[ops(fs, fid) for fid in created], settle=2.0)
    return created


def test_every_update_completes_chain(traced_cluster):
    obs = traced_cluster.obs
    _write_files(traced_cluster, file_ids=4, writes_per_file=3)

    update_spans = obs.tracer.spans_named("update")
    assert len(update_spans) == 12  # 4 files x 3 writes
    all_updates = {uid for s in update_spans for uid in s.update_ids}
    chains = set(complete_chains(obs.tracer))
    missing = all_updates - chains
    assert not missing, (
        f"updates missing causal stages: "
        f"{ {u: update_stages(obs.tracer).get(u) for u in missing} }"
    )


def test_some_chain_includes_dedup_merge(traced_cluster):
    obs = traced_cluster.obs
    _write_files(traced_cluster, file_ids=2, writes_per_file=5)
    # Back-to-back writes to one file land while the previous commit
    # record is still resident, so at least one update must have taken
    # the merge path.
    merged = complete_chains(obs.tracer, require_merge=True)
    assert merged, "no update went through commit_merge"
    assert obs.registry.counter("commit_queue.merges").read() > 0


def test_stage_order_is_causal(traced_cluster):
    obs = traced_cluster.obs
    _write_files(traced_cluster, file_ids=3, writes_per_file=2)
    starts = {}
    for span in obs.tracer.finished_spans():
        for uid in span.update_ids:
            starts.setdefault(uid, {}).setdefault(span.name, span.start)
    for event in obs.tracer.events:
        for uid in event.update_ids:
            starts.setdefault(uid, {}).setdefault(event.name, event.time)
    for uid in complete_chains(obs.tracer):
        per = starts[uid]
        # Ordered writes: data hits the disk (disk_dispatch) BEFORE the
        # metadata leaves the client -- so the dispatch precedes the
        # compound/commit stages, which then proceed in order.
        assert per["commit_queued"] <= per["compound_assembly"], per
        assert per["disk_dispatch"] <= per["compound_assembly"], per
        assert per["compound_assembly"] <= per["rpc:commit"], per
        assert per["rpc:commit"] <= per["mds_handle"], per


def test_parent_links_form_tree(traced_cluster):
    obs = traced_cluster.obs
    _write_files(traced_cluster, file_ids=2, writes_per_file=2)
    by_id = {s.span_id: s for s in obs.tracer.spans}
    for span in obs.tracer.spans:
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.span_id != span.span_id
            assert parent.start <= span.start
    # writepage spans hang off their update root.
    for wp in obs.tracer.spans_named("writepage"):
        assert by_id[wp.parent_id].name == "update"
    # MDS handling links back to the client-side RPC span.
    mds_spans = obs.tracer.spans_named("mds_handle")
    assert mds_spans
    for span in mds_spans:
        assert by_id[span.parent_id].name.startswith("rpc:")


def test_commit_queued_span_carries_merged_ids(traced_cluster):
    obs = traced_cluster.obs
    _write_files(traced_cluster, file_ids=1, writes_per_file=5)
    queued = obs.tracer.spans_named("commit_queued")
    assert queued
    # With 5 rapid writes to one file at least one record absorbed
    # another update, so some span names more than one update id.
    assert any(len(s.update_ids) > 1 for s in queued)


def test_registry_saw_commit_activity(traced_cluster):
    obs = traced_cluster.obs
    _write_files(traced_cluster, file_ids=3, writes_per_file=2)
    reg = obs.registry
    assert reg.counter("client.updates").read() == 6
    assert reg.counter("commit.rpcs").read() > 0
    assert reg.counter("commit.ops_committed").read() > 0
    assert reg.histogram("commit.compound_degree").count > 0
    assert reg.histogram("commit.latency").mean > 0
