"""Behavioural tests: each personality produces its signature op mix."""

import pytest

from repro.fs import ClusterConfig, RedbudCluster
from repro.workloads import (
    FileserverWorkload,
    NpbBtIoWorkload,
    VarmailWorkload,
    WebproxyWorkload,
    XcdnWorkload,
)


def run(workload, duration=1.0, num_clients=2, commit_mode="delayed"):
    config = ClusterConfig(
        num_clients=num_clients,
        commit_mode=commit_mode,
        space_delegation=(commit_mode == "delayed"),
    )
    cluster = RedbudCluster(config, seed=5)
    return cluster.run_workload(workload, duration=duration, warmup=0.1)


def test_xcdn_mix_mostly_writes():
    res = run(XcdnWorkload(file_size=32 * 1024, seed_files_per_client=8,
                           write_fraction=0.65))
    assert res.ops_completed > 50
    # Ingest is create+write+close; reads are the remainder.
    assert res.metrics.count("write") > res.metrics.count("read")
    assert res.metrics.count("create") == res.metrics.count("write")
    assert res.metrics.bytes_for("write") > 0


def test_xcdn_read_only_variant():
    res = run(XcdnWorkload(file_size=32 * 1024, write_fraction=0.0,
                           seed_files_per_client=8))
    assert res.metrics.count("write") == 0
    assert res.metrics.count("read") > 0


def test_xcdn_validation():
    with pytest.raises(ValueError):
        XcdnWorkload(write_fraction=1.5)
    with pytest.raises(ValueError):
        XcdnWorkload(file_size=0)


def test_varmail_is_fsync_heavy():
    res = run(VarmailWorkload(seed_files_per_client=8))
    assert res.metrics.count("fsync") > 0
    # Every compose fsyncs; read-append flowlets fsync again.
    assert res.metrics.count("fsync") >= res.metrics.count("create")
    assert res.metrics.count("read") > 0


def test_webproxy_read_biased():
    res = run(WebproxyWorkload(seed_files_per_client=10, reads_per_write=5))
    assert res.metrics.count("read") > 2 * res.metrics.count("write")


def test_fileserver_has_full_op_mix():
    res = run(FileserverWorkload(seed_files_per_client=10), duration=2.0)
    kinds = set(res.metrics.op_types())
    assert {"create", "write", "read", "append"} <= kinds
    assert res.metrics.count("delete") + res.metrics.count("stat") > 0


def test_npb_writes_grow_file_sequentially():
    res = run(NpbBtIoWorkload(slab_size=256 * 1024, compute_time=0.002,
                              steps_per_barrier=2))
    assert res.metrics.count("write") > 0
    assert res.metrics.count("barrier") > 0
    assert res.metrics.count("verify-read") > 0
    # One rank per client: threads_per_client must be 1.
    assert NpbBtIoWorkload().threads_per_client == 1


def test_npb_verify_reads_are_correct_after_commit():
    """Conflict reads (§V.C) must succeed -- served from cache/committed."""
    res = run(NpbBtIoWorkload(slab_size=128 * 1024, compute_time=0.001,
                              steps_per_barrier=2), duration=1.5)
    # verify() reads everything back; no read should be 'short'.
    assert res.metrics.count("verify-read") > 0


def test_workloads_run_on_sync_mode_too():
    res = run(XcdnWorkload(file_size=32 * 1024, seed_files_per_client=5),
              commit_mode="synchronous", duration=0.5)
    assert res.ops_completed > 0
