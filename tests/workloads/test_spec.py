"""Tests for the workload abstraction: contexts, timing, registries."""

import pytest

from repro.analysis.metrics import OpMetrics
from repro.sim import Environment, StreamRNG
from repro.workloads.spec import Workload, WorkloadContext, timed


def make_ctx(env, client_index=0, shared=None):
    return WorkloadContext(
        env=env,
        fs=None,
        rng=StreamRNG(5).stream("t", client_index),
        client_index=client_index,
        num_clients=2,
        metrics=OpMetrics(),
        shared=shared if shared is not None else {},
    )


def test_unique_names_are_unique():
    env = Environment()
    ctx = make_ctx(env)
    names = {ctx.unique_name("f") for _ in range(100)}
    assert len(names) == 100
    other = make_ctx(env, client_index=1)
    assert not names & {other.unique_name("f") for _ in range(100)}


def test_timed_records_only_while_measuring():
    env = Environment()
    ctx = make_ctx(env)

    def op(env):
        yield env.timeout(0.5)
        return "ok"

    def driver(env):
        result = yield from timed(ctx, "op", op(env), nbytes=10)
        assert result == "ok"
        ctx.measuring = True
        yield from timed(ctx, "op", op(env), nbytes=10)

    env.process(driver(env))
    env.run()
    assert ctx.metrics.count("op") == 1  # only the measured one
    assert ctx.metrics.latency("op").mean == pytest.approx(0.5)
    assert ctx.metrics.total_bytes == 10


def test_registry_shared_across_contexts():
    env = Environment()
    shared = {}
    a = make_ctx(env, 0, shared)
    b = make_ctx(env, 1, shared)
    Workload.register_file(a, file_id=1, size=100)
    Workload.register_file(b, file_id=2, size=200)
    assert len(Workload.registry(a)) == 2
    assert Workload.registry(a) is Workload.registry(b)


def test_seed_registry_only_during_setup():
    env = Environment()
    ctx = make_ctx(env)
    Workload.register_file(ctx, 1, 100)  # in_setup: a seed
    ctx.in_setup = False
    Workload.register_file(ctx, 2, 100)  # runtime file (even pre-measure)
    ctx.measuring = True
    Workload.register_file(ctx, 3, 100)  # runtime file
    assert [e[1] for e in Workload.seed_registry(ctx)] == [1]
    assert [e[1] for e in Workload.registry(ctx)] == [1, 2, 3]


def test_pick_file_prefer_remote():
    env = Environment()
    shared = {}
    a = make_ctx(env, 0, shared)
    b = make_ctx(env, 1, shared)
    Workload.register_file(a, 1, 100)
    Workload.register_file(b, 2, 100)
    for _ in range(20):
        entry = Workload.pick_file(a, prefer_remote=True)
        assert entry[0] == 1  # always the remote client's file


def test_pick_file_seeds_only():
    env = Environment()
    ctx = make_ctx(env)
    Workload.register_file(ctx, 1, 100)
    ctx.in_setup = False
    Workload.register_file(ctx, 2, 100)
    for _ in range(10):
        assert Workload.pick_file(ctx, seeds_only=True)[1] == 1


def test_pick_file_empty_registry():
    env = Environment()
    ctx = make_ctx(env)
    assert Workload.pick_file(ctx) is None


def test_think_advances_clock():
    env = Environment()
    ctx = make_ctx(env)

    class W(Workload):
        think_time = 0.01

    def driver(env):
        yield from W().think(ctx)

    env.process(driver(env))
    env.run()
    assert env.now > 0
