"""xcdn-specific behaviours: cold serves, registry growth, mixes."""

import pytest

from repro.analysis.metrics import OpMetrics
from repro.fs import ClusterConfig, RedbudCluster
from repro.sim import StreamRNG
from repro.workloads import XcdnWorkload
from repro.workloads.spec import WorkloadContext


def run(wl, num_clients=2, duration=1.0, commit_mode="delayed"):
    config = ClusterConfig(
        num_clients=num_clients,
        commit_mode=commit_mode,
        space_delegation=(commit_mode == "delayed"),
    )
    cluster = RedbudCluster(config, seed=5)
    return cluster, cluster.run_workload(wl, duration=duration, warmup=0.1)


def test_serves_hit_disk_not_cache():
    """Cold serves: the whole point of the scattered seed corpus."""
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=10,
                      threads_per_client=2, write_fraction=0.3)
    cluster, res = run(wl)
    hits = sum(c.cache.hits for c in cluster.clients)
    misses = sum(c.cache.misses for c in cluster.clients)
    assert misses > 3 * hits


def test_reads_only_touch_seeds():
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=6,
                      threads_per_client=2)
    cluster, res = run(wl)
    # No short reads: every served object exists and is committed.
    assert sum(c.short_reads for c in cluster.clients) == 0


def test_namespace_grows_with_ingest():
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=4,
                      threads_per_client=2)
    cluster, res = run(wl)
    seeded = 2 * 4
    created_total = len(cluster.namespace) - seeded
    assert created_total > 0
    # Measured creates exclude warmup-time and cut-off in-flight ones.
    assert 0 < res.metrics.count("create") <= created_total


def test_recommended_cache_scales_with_corpus():
    small = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=10)
    large = XcdnWorkload(file_size=1024 * 1024, seed_files_per_client=10)
    assert large.recommended_cache_capacity > small.recommended_cache_capacity


def test_name_derived_from_size():
    assert XcdnWorkload(file_size=32 * 1024).name == "xcdn-32K"
    assert XcdnWorkload(file_size=1024 * 1024).name == "xcdn-1024K"


def test_write_fraction_extremes():
    wl = XcdnWorkload(file_size=32 * 1024, write_fraction=1.0,
                      seed_files_per_client=3, threads_per_client=2)
    cluster, res = run(wl, duration=0.5)
    assert res.metrics.count("read") == 0
    assert res.metrics.count("write") > 0


def test_serve_with_empty_corpus_is_noop():
    """A read roll with no seeds must not crash (picks nothing)."""
    env_cfg = ClusterConfig(num_clients=1, commit_mode="synchronous")
    cluster = RedbudCluster(env_cfg, seed=5)
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=0,
                      write_fraction=0.0, threads_per_client=1)
    ctx = WorkloadContext(
        env=cluster.env,
        fs=cluster.clients[0],
        rng=StreamRNG(1).stream("x"),
        client_index=0,
        num_clients=1,
        metrics=OpMetrics(),
        shared={},
    )

    def one_op():
        yield from wl.op(ctx, 0)

    proc = cluster.env.process(one_op())
    cluster.env.run(until=proc)
    assert ctx.metrics.count("read") == 0
