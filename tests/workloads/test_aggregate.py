"""Aggregate client processes: mapping, validation, metrics, rejection."""

import pytest

from repro.fs.config import ClusterConfig
from repro.fs.factory import build_cluster
from repro.workloads.aggregate import assign_personalities
from repro.workloads.npb import NpbBtIoWorkload
from repro.workloads.xcdn import XcdnWorkload


def test_assign_personalities_round_robin():
    assert assign_personalities(7, 3) == [
        [0, 3, 6],
        [1, 4],
        [2, 5],
    ]
    # Identity map when every personality gets its own node.
    assert assign_personalities(4, 4) == [[0], [1], [2], [3]]


@pytest.mark.parametrize("nodes", [0, -1, 8])
def test_assign_personalities_rejects_bad_node_counts(nodes):
    with pytest.raises(ValueError, match="nodes must be in"):
        assign_personalities(7, nodes)


@pytest.mark.parametrize("processes", [0, -3, 9])
def test_config_rejects_out_of_range_client_processes(processes):
    with pytest.raises(ValueError, match="client_processes"):
        ClusterConfig(num_clients=8, client_processes=processes)


def test_config_accepts_boundary_client_processes():
    low = ClusterConfig(num_clients=8, client_processes=1)
    high = ClusterConfig(num_clients=8, client_processes=8)
    assert low.client_nodes == 1
    assert high.client_nodes == 8
    assert ClusterConfig(num_clients=8).client_nodes == 8


def test_aggregated_run_completes_and_merges_metrics():
    """8 personalities on 2 nodes: every personality does real work."""
    cluster = build_cluster(
        "redbud-delayed",
        num_clients=8,
        client_processes=2,
        seed=3,
    )
    result = cluster.run_workload(
        XcdnWorkload(file_size=32 * 1024, seed_files_per_client=4),
        duration=0.4,
        warmup=0.05,
    )
    assert result.ops_completed > 0
    assert result.latency().count == result.ops_completed
    # The merged metrics aggregate over all 8 personalities even though
    # only 2 client nodes were simulated.
    assert cluster.num_clients == 8
    assert cluster.num_client_nodes == 2


def test_npb_rejects_aggregation():
    """BT-IO synchronises all ranks; multiplexing would deadlock the
    collective, so the runner must refuse up front."""
    cluster = build_cluster(
        "redbud-delayed",
        num_clients=4,
        client_processes=2,
        seed=3,
    )
    with pytest.raises(ValueError, match="cannot run on aggregate"):
        cluster.run_workload(
            NpbBtIoWorkload(), duration=0.2, warmup=0.0
        )


def test_npb_still_runs_unaggregated():
    cluster = build_cluster("redbud-delayed", num_clients=4, seed=3)
    result = cluster.run_workload(
        NpbBtIoWorkload(), duration=0.5, warmup=0.0
    )
    assert result.ops_completed >= 0
