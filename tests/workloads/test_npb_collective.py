"""NPB's collective-vs-strided I/O asymmetry and barrier semantics."""

import pytest

from repro.fs import ClusterConfig, Pvfs2Cluster, RedbudCluster
from repro.workloads import NpbBtIoWorkload


def run_redbud(commit_mode="synchronous", duration=1.5, **wl_kw):
    config = ClusterConfig(
        num_clients=3,
        commit_mode=commit_mode,
        space_delegation=(commit_mode == "delayed"),
    )
    cluster = RedbudCluster(config, seed=7)
    wl = NpbBtIoWorkload(
        slab_size=256 * 1024, compute_time=0.005, steps_per_barrier=2,
        **wl_kw,
    )
    return cluster, cluster.run_workload(wl, duration=duration, warmup=0.1)


def test_posix_path_issues_strided_pieces():
    cluster, res = run_redbud(strided_pieces=4)
    writes = res.metrics.count("write")
    nbytes = res.metrics.bytes_for("write")
    # 4 strided records per slab: mean write size is slab/4.
    assert nbytes / writes == pytest.approx(256 * 1024 / 4)


def test_collective_path_issues_whole_slabs():
    config = ClusterConfig(num_clients=3, commit_mode="synchronous")
    cluster = Pvfs2Cluster(config, seed=7)
    wl = NpbBtIoWorkload(
        slab_size=256 * 1024, compute_time=0.005, steps_per_barrier=2
    )
    res = cluster.run_workload(wl, duration=1.5, warmup=0.1)
    writes = res.metrics.count("write")
    nbytes = res.metrics.bytes_for("write")
    assert nbytes / writes == pytest.approx(256 * 1024)


def test_barrier_synchronises_ranks():
    cluster, res = run_redbud()
    # Every rank passes the same number of barriers (+-1 at the cutoff).
    barriers = res.metrics.count("barrier")
    assert barriers % 3 in (0, 1, 2)
    assert barriers >= 3


def test_epoch_sync_makes_data_durable():
    cluster, res = run_redbud(commit_mode="delayed")
    cluster.settle(2.0)
    # All written bytes that were fsync'd are committed at the MDS.
    committed = sum(
        meta.committed_bytes() for meta in cluster.namespace.all_files()
    )
    assert committed > 0
    # And consistent with stable data.
    from repro.consistency import check_ordered_writes

    report = check_ordered_writes(
        cluster.namespace, cluster.array.stable, cluster.space
    )
    assert report.consistent


def test_verify_reads_cover_last_epoch():
    cluster, res = run_redbud()
    per_epoch_bytes = 2 * 256 * 1024  # steps_per_barrier * slab
    verify_bytes = res.metrics.bytes_for("verify-read")
    syncs = res.metrics.count("sync")
    assert verify_bytes >= syncs * per_epoch_bytes * 0.5


def test_compute_phase_recorded():
    cluster, res = run_redbud()
    assert res.latency("compute").mean == pytest.approx(0.005)
