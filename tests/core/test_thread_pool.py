"""Tests for the adaptive commit thread pool (§IV.B)."""

import pytest

from repro.core.commit_queue import CommitQueue
from repro.core.compound import CompoundController
from repro.core.daemon import CommitDaemonContext
from repro.core.thread_pool import AdaptiveCommitThreadPool, ThreadPoolPolicy
from repro.mds.extent import Extent
from repro.net.link import Link
from repro.net.messages import CommitPayload
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment
from repro.sim.events import Event


def ext(fo=0):
    return Extent(file_offset=fo, length=4096, device_id=0, volume_offset=fo)


def make_pool(env, max_threads=9, max_queue_len=90, control_period=0.1,
              server_delay=0.01):
    """Pool + slow echo MDS so the queue can actually back up."""
    up, down = Link(env), Link(env)
    port = RpcServerPort(env)
    rpc = RpcClient(env, 0, RpcTransport(env, up, down, port))

    def server(env):
        while True:
            msg = yield port.next_request()
            yield env.timeout(server_delay)
            results = [True] * msg.op_count()
            port.reply(msg, results, down)

    env.process(server(env))
    queue = CommitQueue(env)
    controller = CompoundController(env, up, fixed_degree=1)
    ctx = CommitDaemonContext(env, queue, rpc, controller)
    policy = ThreadPoolPolicy(
        max_threads=max_threads,
        max_queue_len=max_queue_len,
        control_period=control_period,
    )
    pool = AdaptiveCommitThreadPool(env, ctx, policy)
    return pool, queue, ctx


def stable_event(env):
    ev = Event(env)
    ev.succeed()
    return ev


def test_pool_starts_at_min_threads():
    env = Environment()
    pool, queue, ctx = make_pool(env)
    assert pool.thread_count == 1


def test_target_formula_matches_paper():
    env = Environment()
    pool, _, _ = make_pool(env, max_threads=9, max_queue_len=450)
    # rho = 9/450 = 0.02 threads per queued record.
    assert pool.target_threads(0) == 1
    assert pool.target_threads(50) == 1
    assert pool.target_threads(100) == 2
    assert pool.target_threads(225) == 5
    assert pool.target_threads(450) == 9
    assert pool.target_threads(10_000) == 9  # clamped at max


def test_pool_grows_under_load_and_shrinks_after():
    env = Environment()
    pool, queue, ctx = make_pool(
        env, max_threads=9, max_queue_len=90, server_delay=0.05
    )
    peak = {"threads": 0}

    def flood(env):
        for i in range(120):
            queue.insert(i, [ext()], [stable_event(env)])
        yield env.timeout(0)

    def watcher(env):
        while True:
            yield env.timeout(0.05)
            peak["threads"] = max(peak["threads"], pool.thread_count)

    env.process(flood(env))
    env.process(watcher(env))
    env.run(until=3.0)
    assert peak["threads"] > 3  # grew with the queue
    env.run(until=30.0)
    assert len(queue) == 0  # everything committed
    assert pool.thread_count == 1  # shrank back to min
    assert pool.retires > 0


def test_samples_record_thread_and_queue_series():
    env = Environment()
    pool, queue, ctx = make_pool(env)

    def trickle(env):
        for i in range(10):
            queue.insert(i, [ext()], [stable_event(env)])
            yield env.timeout(0.05)

    env.process(trickle(env))
    env.run(until=2.0)
    assert len(pool.samples) >= 10
    times = [s[0] for s in pool.samples]
    assert times == sorted(times)
    # Samples carry both series of Fig. 6.
    assert any(s[2] >= 0 for s in pool.samples)


def test_all_ops_committed_despite_retires():
    env = Environment()
    pool, queue, ctx = make_pool(env, server_delay=0.02)

    def bursty(env):
        for burst in range(4):
            for i in range(30):
                queue.insert(burst * 100 + i, [ext()], [stable_event(env)])
            yield env.timeout(1.0)

    env.process(bursty(env))
    env.run(until=20.0)
    assert ctx.stats.ops_committed == 120
    assert len(queue) == 0


def test_stop_halts_everything():
    env = Environment()
    pool, queue, ctx = make_pool(env)
    env.run(until=0.5)
    pool.stop()
    before = env.now
    env.run()  # must terminate: no live controller ticking forever
    assert pool.thread_count == 0


def test_policy_validation():
    env = Environment()
    with pytest.raises(ValueError):
        make_pool(env, max_threads=0)
