"""The acceptance gate for the effects refactor.

The protocol stack -- ``repro.core.*``, ``repro.client``, ``repro.mds``,
``repro.net`` -- and the asyncio substrate must import without pulling
in a single ``repro.sim`` module: the simulator is one substrate among
two, not a dependency of the protocol.  Each module is imported in a
fresh interpreter so nothing cached in this test process can mask a
transitive leak.
"""

import json
import subprocess
import sys

import pytest

PROTOCOL_MODULES = [
    "repro.core",
    "repro.core.commit_queue",
    "repro.core.compound",
    "repro.core.daemon",
    "repro.core.delegation",
    "repro.core.effects",
    "repro.core.kernel",
    "repro.core.protocol",
    "repro.core.records",
    "repro.core.thread_pool",
    "repro.core.witness",
    "repro.client.client",
    "repro.mds.allocation",
    "repro.mds.extent",
    "repro.mds.namespace",
    "repro.mds.server",
    "repro.mds.sharding",
    "repro.net.link",
    "repro.net.messages",
    "repro.net.rpc",
    "repro.net.wire",
    "repro.rt",
    "repro.rt.disk",
    "repro.rt.effects",
    "repro.rt.server",
    "repro.rt.transport",
]

_PROBE = """
import importlib, json, sys
importlib.import_module(sys.argv[1])
leaked = sorted(
    name for name in sys.modules
    if name == "repro.sim" or name.startswith("repro.sim.")
)
print(json.dumps(leaked))
"""


def _sim_modules_pulled_by(module: str) -> list:
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE, module],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, (
        f"importing {module} failed:\n{proc.stderr}"
    )
    return json.loads(proc.stdout)


@pytest.mark.parametrize("module", PROTOCOL_MODULES)
def test_protocol_module_is_substrate_free(module):
    leaked = _sim_modules_pulled_by(module)
    assert leaked == [], (
        f"{module} transitively imports the simulator: {leaked}"
    )


def test_no_source_level_sim_import_in_protocol_layer():
    """Belt and braces: grep the protocol sources for ``repro.sim``
    import statements (docstring cross-references are fine)."""
    import pathlib
    import re

    pattern = re.compile(
        r"^\s*(from\s+repro\.sim|import\s+repro\.sim)", re.MULTILINE
    )
    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    offenders = []
    for layer in ("core", "client", "mds", "net", "rt"):
        for path in sorted((src / layer).rglob("*.py")):
            if path.name == "smoke.py":
                # The smoke auditor borrows repro.consistency tooling,
                # which lives with the sim-side harness; it is a
                # driver, not a protocol module.
                continue
            if pattern.search(path.read_text()):
                offenders.append(str(path.relative_to(src)))
    assert offenders == [], (
        f"protocol sources import repro.sim: {offenders}"
    )


def test_sim_effects_is_the_kernel_environment():
    """Class identity across the boundary: the sim re-exports are the
    kernel classes themselves, which is what makes pre/post-refactor
    traces structurally identical."""
    from repro.core.effects import Effects
    from repro.core.kernel.events import Event, Timeout
    from repro.sim import Environment
    from repro.sim.effects import SimEffects
    import repro.sim.events as sim_events

    assert issubclass(Environment, Effects)
    assert issubclass(SimEffects, Environment)
    assert sim_events.Event is Event
    assert sim_events.Timeout is Timeout


def test_lazy_core_exports_resolve():
    from repro.core import (  # noqa: F401
        AdaptiveCommitThreadPool,
        CommitDaemonContext,
        CommitQueue,
        CommitRecord,
        CompoundController,
        DoubleSpacePool,
        Effects,
    )

    import repro.core as core

    with pytest.raises(AttributeError):
        core.NotAnExport
