"""Client-path coverage: delegation refills, throttling, segmentation."""

import pytest

from repro.sim import Environment
from tests.conftest import MiniCluster


def test_delegation_refill_on_pool_exhaustion(env):
    """Writes beyond the first chunk trigger a delegation RPC refill."""
    c = MiniCluster(env, commit_mode="delayed", delegation_chunk=64 * 1024)

    def ops(fs):
        fids = []
        for i in range(6):  # 6 x 32 KB > one 64 KB chunk
            fid = yield from fs.create(f"f{i}")
            yield from fs.write(fid, 0, 32 * 1024)
            fids.append(fid)
        for fid in fids:
            yield from fs.fsync(fid)

    c.run_ops(ops(c.client))
    pool = c.client.delegation
    assert pool.swaps >= 1
    assert pool.local_allocs == 6
    # Every file committed despite the pool churn.
    assert c.space.uncommitted_bytes(0) > 0  # leftover chunk space
    for fid in range(1, 7):
        assert c.namespace.get(fid).committed_bytes() == 32 * 1024


def test_large_write_bypasses_delegation(env):
    c = MiniCluster(env, commit_mode="delayed", delegation_chunk=64 * 1024)

    def ops(fs):
        fid = yield from fs.create("big")
        yield from fs.write(fid, 0, 1024 * 1024)  # > chunk size
        yield from fs.fsync(fid)
        return fid

    (fid,) = c.run_ops(ops(c.client))
    assert c.client.delegation.local_allocs == 0  # went to the MDS
    assert c.namespace.get(fid).committed_bytes() == 1024 * 1024


def test_dirty_throttle_blocks_heavy_writer(env):
    c = MiniCluster(env, commit_mode="delayed",
                    delegation_chunk=16 * 1024 * 1024)
    c.client.dirty_limit = 128 * 1024  # tiny: throttle quickly

    def ops(fs):
        fid = yield from fs.create("stream")
        for i in range(24):
            yield from fs.write(fid, i * 64 * 1024, 64 * 1024)
        yield from fs.fsync(fid)

    c.run_ops(ops(c.client))
    assert c.client.dirty_throttle_events > 0
    assert c.client.cache.dirty_bytes == 0  # fully drained by fsync


def test_async_write_segmentation_counts(env):
    """A large async write submits multiple block requests; a sync-mode
    write of the same size submits one per extent."""
    delayed = MiniCluster(env, commit_mode="delayed",
                          delegation_chunk=16 * 1024 * 1024)

    def ops(fs):
        fid = yield from fs.create("f")
        yield from fs.write(fid, 0, 256 * 1024)
        yield from fs.fsync(fid)

    delayed.run_ops(ops(delayed.client))
    assert delayed.client.blockdev.scheduler.stats.submitted > 1

    env2 = Environment()
    sync = MiniCluster(env2, commit_mode="synchronous")

    def ops2(fs):
        fid = yield from fs.create("f")
        yield from fs.write(fid, 0, 256 * 1024)

    sync.run_ops(ops2(sync.client))
    assert sync.client.blockdev.scheduler.stats.submitted == 1


def test_fsync_expedites_plugged_writes(env):
    """fsync latency must not include the full write-plug delay."""
    c = MiniCluster(env, commit_mode="delayed",
                    delegation_chunk=16 * 1024 * 1024)
    times = {}

    def ops(fs):
        fid = yield from fs.create("f")
        yield from fs.write(fid, 0, 16 * 1024)
        t0 = c.env.now
        yield from fs.fsync(fid)
        times["fsync"] = c.env.now - t0

    c.run_ops(ops(c.client))
    # Plug default is 12ms; an expedited fsync completes well under it
    # plus disk service (sub-5ms on an idle array).
    assert times["fsync"] < 0.010


def test_write_validation(env):
    c = MiniCluster(env, commit_mode="delayed")

    def ops(fs):
        fid = yield from fs.create("f")
        with pytest.raises(ValueError):
            yield from fs.write(fid, 0, 0)
        with pytest.raises(ValueError):
            yield from fs.read(fid, 0, -1)
        return fid

    c.run_ops(ops(c.client))


def test_scattered_write_skips_delegation(env):
    c = MiniCluster(env, commit_mode="delayed",
                    delegation_chunk=16 * 1024 * 1024)

    def ops(fs):
        fid = yield from fs.create("aged")
        yield from fs.write(fid, 0, 32 * 1024, scattered=True)
        yield from fs.fsync(fid)
        return fid

    (fid,) = c.run_ops(ops(c.client))
    assert c.client.delegation.local_allocs == 0
    meta = c.namespace.get(fid)
    assert meta.committed_bytes() == 32 * 1024


def test_crash_clears_client_state(env):
    c = MiniCluster(env, commit_mode="delayed",
                    delegation_chunk=16 * 1024 * 1024)

    def ops(fs):
        fid = yield from fs.create("f")
        yield from fs.write(fid, 0, 32 * 1024)
        # Crash immediately after the update returns: the commit record
        # is still queued (data write in flight).
        assert fs.pending_commit_count() == 1
        fs.crash()
        return fid

    c.env.process(ops(c.client))
    c.env.run(until=1.0)
    assert c.client.crashed
    assert c.client.pending_commit_count() == 0
    assert len(c.client.commit_queue) == 0
    assert c.client.cache.resident_bytes == 0
