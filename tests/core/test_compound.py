"""Tests for the adaptive RPC compound controller (§IV.B)."""

import pytest

from repro.core.compound import CompoundController, CompoundPolicy
from repro.net.link import Link
from repro.sim import Environment


def test_fixed_degree_never_adapts():
    env = Environment()
    link = Link(env)
    ctrl = CompoundController(env, link, fixed_degree=3)
    assert ctrl.degree == 3
    for latency in [0.001, 0.1, 1.0]:
        ctrl.observe_rpc_latency(latency)
    env.run(until=10.0)
    assert ctrl.degree == 3
    assert ctrl.adjustments == 0


def test_fixed_degree_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CompoundController(env, Link(env), fixed_degree=0)


def test_degree_grows_when_uplink_congested():
    env = Environment()
    # Slow link: sending anything creates a visible backlog.
    link = Link(env, bandwidth=1e4, propagation=0.0)
    policy = CompoundPolicy(max_degree=8, period=0.1, backlog_high=0.001)
    ctrl = CompoundController(env, link, policy=policy)

    def congestor(env):
        while True:
            link.send(5000)  # 0.5 s of serialisation each
            yield env.timeout(0.05)

    env.process(congestor(env))
    env.run(until=2.0)
    assert ctrl.degree > 1
    assert ctrl.adjustments > 0
    assert ctrl.history  # (time, degree) trail recorded


def test_degree_bounded_by_max():
    env = Environment()
    link = Link(env, bandwidth=1e3)
    policy = CompoundPolicy(max_degree=3, period=0.05)
    ctrl = CompoundController(env, link, policy=policy)

    def congestor(env):
        while True:
            link.send(10_000)
            yield env.timeout(0.02)

    env.process(congestor(env))
    env.run(until=5.0)
    assert ctrl.degree <= 3


def test_degree_relaxes_when_quiet():
    env = Environment()
    link = Link(env, bandwidth=1e4)
    policy = CompoundPolicy(max_degree=8, period=0.1)
    ctrl = CompoundController(env, link, policy=policy)

    def phase(env):
        # Congest for a while...
        for _ in range(10):
            link.send(5000)
            yield env.timeout(0.05)
        # ...then go quiet.
        yield env.timeout(20.0)

    env.process(phase(env))
    env.run(until=1.0)
    high = ctrl.degree
    assert high > 1
    env.run(until=25.0)
    assert ctrl.degree == 1  # relaxed back down
    assert ctrl.degree < high


def test_latency_ratio_triggers_growth():
    """MDS busyness is inferred from commit RPC latency inflation."""
    env = Environment()
    link = Link(env)  # fast link: no backlog signal
    policy = CompoundPolicy(
        max_degree=8, period=0.1, latency_ratio_high=1.5
    )
    ctrl = CompoundController(env, link, policy=policy)

    def observer(env):
        # Establish a fast baseline, then observe an overloaded MDS.
        for _ in range(20):
            ctrl.observe_rpc_latency(0.001)
            yield env.timeout(0.02)
        for _ in range(60):
            ctrl.observe_rpc_latency(0.02)
            yield env.timeout(0.02)

    env.process(observer(env))
    env.run(until=3.0)
    assert ctrl.degree > 1


def test_negative_latency_rejected():
    env = Environment()
    ctrl = CompoundController(env, Link(env), fixed_degree=1)
    with pytest.raises(ValueError):
        ctrl.observe_rpc_latency(-1.0)
