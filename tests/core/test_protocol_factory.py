"""Tests for the protocol strategy factory and mode semantics."""

import pytest

from repro.core.commit_queue import CommitQueue
from repro.core.protocol import (
    COMMIT_MODES,
    DelayedCommitProtocol,
    SynchronousCommitProtocol,
    UnorderedCommitProtocol,
    make_protocol,
)
from repro.net.link import Link
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment


def make_rpc(env):
    port = RpcServerPort(env)
    return RpcClient(env, 0, RpcTransport(env, Link(env), Link(env), port))


def test_factory_maps_modes():
    env = Environment()
    rpc = make_rpc(env)
    queue = CommitQueue(env)
    assert isinstance(
        make_protocol("synchronous", env, rpc, None),
        SynchronousCommitProtocol,
    )
    delayed = make_protocol("delayed", env, rpc, queue)
    assert isinstance(delayed, DelayedCommitProtocol)
    assert delayed.require_data_stable is True
    unordered = make_protocol("unordered", env, rpc, queue)
    assert isinstance(unordered, UnorderedCommitProtocol)
    assert unordered.require_data_stable is False


def test_queue_modes_require_queue():
    env = Environment()
    rpc = make_rpc(env)
    with pytest.raises(ValueError):
        make_protocol("delayed", env, rpc, None)
    with pytest.raises(ValueError):
        make_protocol("unordered", env, rpc, None)


def test_unknown_mode_rejected():
    env = Environment()
    rpc = make_rpc(env)
    with pytest.raises(ValueError):
        make_protocol("eventually", env, rpc, CommitQueue(env))
    assert set(COMMIT_MODES) == {"synchronous", "delayed", "unordered"}


def test_daemon_usage_flags():
    env = Environment()
    rpc = make_rpc(env)
    queue = CommitQueue(env)
    assert not make_protocol("synchronous", env, rpc, None).uses_daemons
    assert make_protocol("delayed", env, rpc, queue).uses_daemons
    assert make_protocol("unordered", env, rpc, queue).uses_daemons


def test_unordered_records_skip_stability_gate():
    from repro.mds.extent import Extent
    from repro.sim.events import Event

    env = Environment()
    rpc = make_rpc(env)
    queue = CommitQueue(env)
    protocol = make_protocol("unordered", env, rpc, queue)
    pending_data = Event(env)  # never completes

    def proc():
        record = yield from protocol.finish_update(
            1,
            [Extent(file_offset=0, length=4096, device_id=0,
                    volume_offset=0)],
            [pending_data],
        )
        return record

    p = env.process(proc())
    record = env.run(until=p)
    assert record.data_stable  # the broken semantics, on purpose
    assert queue.checkout_stable() == [record]
