"""Tests for the double-space-pool (space delegation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delegation import DoubleSpacePool
from repro.mds.extent import Chunk


def test_starts_needing_refill():
    pool = DoubleSpacePool(chunk_size=1024)
    assert pool.needs_refill
    assert pool.free_bytes == 0
    assert pool.alloc(100) is None


def test_local_alloc_is_contiguous():
    pool = DoubleSpacePool(chunk_size=1024)
    pool.refill(Chunk(volume_offset=5000, length=1024))
    offsets = [pool.alloc(100) for _ in range(5)]
    assert offsets == [5000, 5100, 5200, 5300, 5400]
    assert pool.local_allocs == 5
    assert pool.bytes_allocated == 500


def test_large_request_not_servable():
    pool = DoubleSpacePool(chunk_size=1024)
    assert not pool.can_serve(1025)
    assert pool.can_serve(1024)
    assert not pool.can_serve(0)
    with pytest.raises(ValueError):
        pool.alloc(2000)


def test_swap_to_standby_when_active_exhausted():
    pool = DoubleSpacePool(chunk_size=1000)
    pool.refill(Chunk(volume_offset=0, length=1000))
    pool.refill(Chunk(volume_offset=5000, length=1000))
    assert not pool.needs_refill
    a = pool.alloc(800)
    b = pool.alloc(800)  # does not fit in active's remaining 200: swap
    assert a == 0
    assert b == 5000
    assert pool.swaps == 1
    assert pool.needs_refill  # standby (old active scraps) is empty
    assert pool.abandoned == [(800, 200)]


def test_alloc_none_when_both_exhausted():
    pool = DoubleSpacePool(chunk_size=100)
    pool.refill(Chunk(volume_offset=0, length=100))
    assert pool.alloc(100) == 0
    assert pool.alloc(100) is None
    assert pool.needs_refill


def test_refill_prefers_empty_active():
    pool = DoubleSpacePool(chunk_size=100)
    pool.refill(Chunk(volume_offset=0, length=100))
    pool.alloc(100)
    pool.refill(Chunk(volume_offset=500, length=100))
    assert pool.alloc(100) == 500


def test_spare_chunk_used_at_next_swap():
    pool = DoubleSpacePool(chunk_size=100)
    pool.refill(Chunk(volume_offset=0, length=100))
    pool.refill(Chunk(volume_offset=200, length=100))
    pool.refill(Chunk(volume_offset=400, length=100))  # both charged: spare
    a = pool.alloc(100)
    b = pool.alloc(100)
    c = pool.alloc(100)  # consumes the spare via swap
    assert (a, b, c) == (0, 200, 400)


def test_drain_returns_all_unused():
    pool = DoubleSpacePool(chunk_size=1000)
    pool.refill(Chunk(volume_offset=0, length=1000))
    pool.refill(Chunk(volume_offset=5000, length=1000))
    pool.alloc(800)
    pool.alloc(800)  # swap; abandons (800, 200)
    leftovers = pool.drain()
    # Abandoned scrap + remainder of the second chunk.
    assert sorted(leftovers) == [(800, 200), (5800, 200)]
    assert pool.free_bytes == 0
    assert pool.needs_refill


def test_drain_includes_spares():
    pool = DoubleSpacePool(chunk_size=100)
    pool.refill(Chunk(volume_offset=0, length=100))
    pool.refill(Chunk(volume_offset=200, length=100))
    pool.refill(Chunk(volume_offset=400, length=100))
    leftovers = pool.drain()
    assert (400, 100) in leftovers


def test_validation():
    with pytest.raises(ValueError):
        DoubleSpacePool(chunk_size=0)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(1, 64), min_size=1, max_size=100))
def test_pool_never_hands_out_overlapping_space(sizes):
    """Property: local allocations never overlap, within or across chunks."""
    pool = DoubleSpacePool(chunk_size=64)
    handed = []
    next_chunk = 0
    for size in sizes:
        while True:
            offset = pool.alloc(size)
            if offset is not None:
                break
            pool.refill(Chunk(volume_offset=next_chunk * 1000, length=64))
            next_chunk += 1
        for h_off, h_len in handed:
            assert offset + size <= h_off or offset >= h_off + h_len
        handed.append((offset, size))
    # Conservation: allocated + abandoned + drained == delegated.
    drained = pool.drain()
    total_returned = sum(ln for _, ln in drained)
    assert pool.bytes_allocated + total_returned == next_chunk * 64
