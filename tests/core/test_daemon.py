"""Focused tests for the background commit daemon."""

import pytest

from repro.core.commit_queue import CommitQueue
from repro.core.compound import CompoundController
from repro.core.daemon import (
    CommitDaemonContext,
    DaemonState,
    commit_daemon,
)
from repro.mds.extent import Extent
from repro.net.link import Link
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment
from repro.sim.events import Event


def ext(fo=0):
    return Extent(file_offset=fo, length=4096, device_id=0, volume_offset=fo)


def stable(env):
    ev = Event(env)
    ev.succeed()
    return ev


def make_ctx(env, degree=4, server_delay=0.001, on_committed=None):
    up, down = Link(env), Link(env)
    port = RpcServerPort(env)
    rpc = RpcClient(env, 0, RpcTransport(env, up, down, port))

    def server(env):
        while True:
            msg = yield port.next_request()
            yield env.timeout(server_delay)
            port.reply(msg, [True] * msg.op_count(), down)

    env.process(server(env))
    queue = CommitQueue(env)
    controller = CompoundController(env, up, fixed_degree=degree)
    return CommitDaemonContext(
        env, queue, rpc, controller, on_committed=on_committed
    )


def test_daemon_commits_single_record():
    env = Environment()
    ctx = make_ctx(env)
    env.process(commit_daemon(ctx, DaemonState()))
    record = ctx.queue.insert(1, [ext()], [stable(env)])
    env.run(until=1.0)
    assert record.committed
    assert ctx.stats.rpcs_sent == 1
    assert ctx.stats.ops_committed == 1
    assert ctx.stats.degree_histogram == {1: 1}


def test_daemon_batches_up_to_degree():
    env = Environment()
    ctx = make_ctx(env, degree=3, server_delay=0.01)
    env.process(commit_daemon(ctx, DaemonState()))
    for fid in range(7):
        ctx.queue.insert(fid, [ext()], [stable(env)])
    env.run(until=1.0)
    assert ctx.stats.ops_committed == 7
    # First checkout may be smaller; later ones batch to the degree.
    assert max(ctx.stats.degree_histogram) == 3
    assert ctx.stats.rpcs_sent < 7
    assert ctx.stats.mean_degree > 1.5


def test_daemon_waits_for_data_stability():
    env = Environment()
    ctx = make_ctx(env)
    env.process(commit_daemon(ctx, DaemonState()))
    pending = Event(env)
    record = ctx.queue.insert(1, [ext()], [pending])

    def complete_later(env):
        yield env.timeout(0.5)
        pending.succeed()

    env.process(complete_later(env))
    env.run(until=0.4)
    assert not record.committed  # ordered-writes gate held
    env.run(until=1.5)
    assert record.committed
    assert record.committed_event.value is None or True


def test_on_committed_callback_invoked():
    env = Environment()
    seen = []
    ctx = make_ctx(env, on_committed=lambda r: seen.append(r.file_id))
    env.process(commit_daemon(ctx, DaemonState()))
    for fid in (5, 9):
        ctx.queue.insert(fid, [ext()], [stable(env)])
    env.run(until=1.0)
    assert sorted(seen) == [5, 9]


def test_retire_flag_stops_loop_between_batches():
    env = Environment()
    ctx = make_ctx(env)
    state = DaemonState()
    proc = env.process(commit_daemon(ctx, state))
    ctx.queue.insert(1, [ext()], [stable(env)])
    env.run(until=0.5)
    state.retire_requested = True
    ctx.queue.insert(2, [ext()], [stable(env)])
    # Daemon is parked; interrupt retires it without touching record 2.
    proc.interrupt("retire")
    env.run(until=1.0)
    assert not proc.is_alive
    assert len(ctx.queue) == 1  # record 2 still queued


def test_commit_latency_accounting():
    env = Environment()
    ctx = make_ctx(env, server_delay=0.01)
    env.process(commit_daemon(ctx, DaemonState()))
    ctx.queue.insert(1, [ext()], [stable(env)])
    env.run(until=1.0)
    # Enqueue-to-commit latency at least covers the server round trip.
    assert ctx.stats.mean_commit_latency >= 0.01


def test_controller_observes_latency():
    env = Environment()
    ctx = make_ctx(env, degree=2, server_delay=0.005)
    env.process(commit_daemon(ctx, DaemonState()))
    ctx.queue.insert(1, [ext()], [stable(env)])
    env.run(until=1.0)
    # The daemon fed the round trip into the compound controller
    # (shard 0: the single-destination deployment).
    assert 0 in ctx.controller._latency_ewma
    assert ctx.controller._latency_ewma[0] >= 0.005
