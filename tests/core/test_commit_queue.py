"""Tests for the commit queue: dedup, stability gating, backpressure."""

import pytest

from repro.core.commit_queue import CommitQueue
from repro.mds.extent import Extent
from repro.sim import Environment
from repro.sim.events import Event


def ext(fo, ln=4096, vo=0):
    return Extent(file_offset=fo, length=ln, device_id=0, volume_offset=vo)


@pytest.fixture
def env():
    return Environment()


def processed_event(env):
    ev = Event(env)
    ev.succeed()
    env.run()  # process it
    return ev


def test_insert_creates_record(env):
    q = CommitQueue(env)
    rec = q.insert(1, [ext(0)], [Event(env)])
    assert len(q) == 1
    assert q.record_for(1) is rec
    assert not rec.data_stable


def test_per_file_dedup_absorbs(env):
    q = CommitQueue(env)
    r1 = q.insert(1, [ext(0)], [Event(env)])
    r2 = q.insert(1, [ext(4096, vo=4096)], [Event(env)])
    assert r1 is r2
    assert len(q) == 1
    assert len(r1.extents) == 2
    assert q.dedup_hits == 1


def test_different_files_not_deduped(env):
    q = CommitQueue(env)
    q.insert(1, [ext(0)], [Event(env)])
    q.insert(2, [ext(0)], [Event(env)])
    assert len(q) == 2
    assert q.dedup_hits == 0


def test_checkout_requires_data_stable(env):
    q = CommitQueue(env)
    pending = Event(env)
    q.insert(1, [ext(0)], [pending])
    assert q.checkout_stable() == []
    pending.succeed()
    env.run()
    batch = q.checkout_stable()
    assert len(batch) == 1
    assert batch[0].checked_out
    assert len(q) == 0


def test_checkout_fifo_order_and_limit(env):
    q = CommitQueue(env)
    for fid in [1, 2, 3]:
        q.insert(fid, [ext(0)], [processed_event(env)])
    batch = q.checkout_stable(limit=2)
    assert [r.file_id for r in batch] == [1, 2]
    assert len(q) == 1


def test_checkout_skips_unstable(env):
    q = CommitQueue(env)
    q.insert(1, [ext(0)], [Event(env)])  # unstable
    q.insert(2, [ext(0)], [processed_event(env)])
    batch = q.checkout_stable(limit=5)
    assert [r.file_id for r in batch] == [2]
    assert len(q) == 1


def test_insert_after_checkout_makes_new_record(env):
    q = CommitQueue(env)
    r1 = q.insert(1, [ext(0)], [processed_event(env)])
    q.checkout_stable()
    r2 = q.insert(1, [ext(4096)], [processed_event(env)])
    assert r1 is not r2
    assert len(q) == 1


def test_wait_for_stable_fires_when_data_completes(env):
    q = CommitQueue(env)
    pending = Event(env)
    fired = []

    def waiter(env):
        yield q.wait_for_stable()
        fired.append(env.now)

    def writer(env):
        q.insert(1, [ext(0)], [pending])
        yield env.timeout(5)
        pending.succeed()

    env.process(waiter(env))
    env.process(writer(env))
    env.run()
    assert fired == [5.0]


def test_wait_for_stable_immediate_when_available(env):
    q = CommitQueue(env)
    q.insert(1, [ext(0)], [processed_event(env)])
    ev = q.wait_for_stable()
    assert ev.triggered


def test_backpressure(env):
    q = CommitQueue(env, capacity=2)
    q.insert(1, [ext(0)], [processed_event(env)])
    q.insert(2, [ext(0)], [processed_event(env)])
    assert not q.has_room()
    times = []

    def writer(env):
        yield q.wait_for_room()
        times.append(env.now)

    def drainer(env):
        yield env.timeout(3)
        q.checkout_stable()

    env.process(writer(env))
    env.process(drainer(env))
    env.run()
    assert times == [3.0]


def test_absorb_into_checked_out_record_rejected(env):
    q = CommitQueue(env)
    rec = q.insert(1, [ext(0)], [processed_event(env)])
    q.checkout_stable()
    with pytest.raises(RuntimeError):
        rec.absorb([ext(4096)], [])


def test_drop_all_returns_lost_records(env):
    q = CommitQueue(env)
    q.insert(1, [ext(0)], [Event(env)])
    q.insert(2, [ext(0)], [Event(env)])
    lost = q.drop_all()
    assert len(lost) == 2
    assert len(q) == 0
    assert q.record_for(1) is None


def test_length_change_listener(env):
    q = CommitQueue(env)
    lengths = []
    q.on_length_change = lengths.append
    q.insert(1, [ext(0)], [processed_event(env)])
    q.insert(2, [ext(0)], [processed_event(env)])
    q.checkout_stable(limit=2)
    assert lengths == [1, 2, 0]


def test_peak_length_tracked(env):
    q = CommitQueue(env)
    for fid in range(5):
        q.insert(fid, [ext(0)], [processed_event(env)])
    q.checkout_stable(limit=5)
    assert q.peak_length == 5


def test_unordered_record_is_always_stable(env):
    q = CommitQueue(env)
    q.insert(1, [ext(0)], [Event(env)], require_data_stable=False)
    batch = q.checkout_stable()
    assert len(batch) == 1  # checked out despite pending data


def test_validation(env):
    with pytest.raises(ValueError):
        CommitQueue(env, capacity=0)
    q = CommitQueue(env)
    with pytest.raises(ValueError):
        q.checkout_stable(limit=0)


def test_dedup_merge_registers_stability_callback_once(env):
    """Regression: repeat merges used to stack duplicate wake callbacks.

    A long-lived file whose writes dedup into one resident record
    presents the same data event on every merge; each presentation
    appended another wake callback, so one write completion fired a
    wakeup per *merge* instead of per *event*.
    """
    q = CommitQueue(env)
    ev = Event(env)
    q.insert(1, [ext(0)], [ev])
    assert ev.callbacks.count(q._on_data_stable) == 1

    for k in range(1, 6):
        q.insert(1, [ext(4096 * k, vo=4096 * k)], [ev])
    assert q.dedup_hits == 5
    assert ev.callbacks.count(q._on_data_stable) == 1

    before = q.wakeups
    ev.succeed()
    env.run()
    assert q.wakeups == before + 1
    assert ev not in q._stability_watch


def test_shared_data_event_across_records_wakes_once(env):
    """One event backing several records still yields a single wakeup."""
    q = CommitQueue(env)
    ev = Event(env)
    q.insert(1, [ext(0)], [ev])
    q.insert(2, [ext(0)], [ev])
    assert ev.callbacks.count(q._on_data_stable) == 1

    waiter = q.wait_for_stable()
    before = q.wakeups
    ev.succeed()
    env.run()
    assert q.wakeups == before + 1
    assert waiter.triggered
    assert len(q.checkout_stable(limit=2)) == 2
