"""Integration tests: write paths, commit daemons, ordered-writes gating."""

import pytest

from repro.sim import Environment
from tests.conftest import MiniCluster


def test_sync_write_commits_inline(sync_cluster):
    c = sync_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        return fid

    (fid,) = c.run_ops(ops(c.client))
    meta = c.namespace.get(fid)
    assert meta.committed_bytes() == 4096
    assert c.client.pending_commit_count() == 0
    # Synchronous mode never instantiates the queue machinery.
    assert c.client.commit_queue is None


def test_sync_write_waits_for_disk_and_commit(sync_cluster):
    """Sync update latency includes the disk write plus the commit RTT."""
    c = sync_cluster
    latencies = []

    def ops(fs, env):
        fid = yield from fs.create("f1")
        t0 = env.now
        yield from fs.write(fid, 0, 4096)
        latencies.append(c.env.now - t0)

    c.run_ops(ops(c.client, c.env))
    # Layout-get RTT + 4 KB transfer + commit RTT; well above memory speed
    # even though the first-ever write lands at offset 0 with no seek.
    assert latencies[0] > 0.0003


def test_delayed_write_returns_before_commit(delayed_cluster):
    c = delayed_cluster
    write_done_at = []

    def ops(fs, env):
        fid = yield from fs.create("f1")
        t0 = env.now
        yield from fs.write(fid, 0, 4096)
        write_done_at.append(env.now - t0)
        assert c.client.pending_commit_count() == 1
        yield from fs.fsync(fid)
        return fid

    (fid,) = c.run_ops(ops(c.client, c.env))
    # The write returned at memory speed (no disk, no RPC in path).
    assert write_done_at[0] < 0.0005
    # After fsync everything is durable at the MDS.
    assert c.namespace.get(fid).committed_bytes() == 4096
    assert c.client.pending_commit_count() == 0


def test_delayed_commit_happens_without_fsync(delayed_cluster):
    """Daemons commit in the background even if the app never waits."""
    c = delayed_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        return fid

    (fid,) = c.run_ops(ops(c.client))
    assert c.namespace.get(fid).committed_bytes() == 4096
    assert c.client.daemon_ctx.stats.ops_committed == 1


def test_ordered_writes_commit_rpc_after_data_stable(delayed_cluster):
    """The commit RPC must leave the client only after the data write."""
    c = delayed_cluster
    data_done = {}

    def ops(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        rec = c.client.commit_queue.record_for(fid)
        assert rec is not None
        ev = rec.data_events[0]
        ev.callbacks.append(lambda _e: data_done.setdefault("t", c.env.now))
        yield from fs.fsync(fid)
        return fid

    c.run_ops(ops(c.client))
    stats = c.client.daemon_ctx.stats
    assert stats.rpcs_sent == 1
    # Commit latency (enqueue -> committed) exceeds the data-write time.
    assert stats.mean_commit_latency >= 0
    assert "t" in data_done


def test_per_file_dedup_one_rpc_for_many_updates(delegated_cluster):
    """N updates to one file before checkout produce a single commit op.

    Needs space delegation: local allocation makes back-to-back writes
    instantaneous, so the commit record is still resident (data not yet
    stable) when the next update arrives -- the dedup window of §III.A.
    """
    c = delegated_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        for i in range(6):
            yield from fs.write(fid, i * 4096, 4096)
        yield from fs.fsync(fid)
        return fid

    (fid,) = c.run_ops(ops(c.client))
    assert c.namespace.get(fid).committed_bytes() == 6 * 4096
    # Dedup should have folded several updates into few records.
    assert c.client.commit_queue.dedup_hits >= 1


def test_multiple_files_compound_into_fewer_rpcs(env):
    c = MiniCluster(
        env,
        commit_mode="delayed",
        fixed_compound_degree=4,
        delegation_chunk=16 * 1024 * 1024,
    )

    def ops(fs):
        fids = []
        for i in range(8):
            fid = yield from fs.create(f"f{i}")
            fids.append(fid)
        for fid in fids:
            yield from fs.write(fid, 0, 4096)
        for fid in fids:
            yield from fs.fsync(fid)

    c.run_ops(ops(c.client))
    stats = c.client.daemon_ctx.stats
    assert stats.ops_committed == 8
    assert stats.rpcs_sent < 8  # compounding happened
    assert stats.mean_degree > 1.0


def test_read_hits_client_cache_after_write(delayed_cluster):
    c = delayed_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        hit = yield from fs.read(fid, 0, 4096)
        return hit

    (hit,) = c.run_ops(ops(c.client))
    assert hit is True
    assert c.client.cache.hits == 1
    assert c.client.rpc.calls_sent >= 1


def test_read_miss_goes_to_disk(sync_cluster):
    c = sync_cluster

    def writer(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        fs.cache.drop_volatile()  # force a miss
        hit = yield from fs.read(fid, 0, 4096)
        return hit

    (hit,) = c.run_ops(writer(c.client))
    assert hit is True
    assert c.client.read_disk_hits == 1


def test_read_of_never_committed_range_is_short(sync_cluster):
    c = sync_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        fs.cache.drop_volatile()
        hit = yield from fs.read(fid, 0, 4096)
        return hit

    (hit,) = c.run_ops(ops(c.client))
    assert hit is False
    assert c.client.short_reads == 1


def test_unlink_waits_for_pending_commits(delayed_cluster):
    c = delayed_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        yield from fs.unlink(fid)
        return fid

    (fid,) = c.run_ops(ops(c.client))
    assert fid not in c.namespace
    # The unlinked file's space went back to the allocator.
    assert c.space.free_bytes == c.space.volume_size


def test_stat_roundtrip(sync_cluster):
    c = sync_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        meta = yield from fs.stat(fid)
        return meta

    (meta,) = c.run_ops(ops(c.client))
    assert meta.name == "f1"


def test_close_sync_flag_waits(delayed_cluster):
    c = delayed_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        yield from fs.close(fid, sync=True)
        return fid

    (fid,) = c.run_ops(ops(c.client))
    assert c.namespace.get(fid).committed_bytes() == 4096
    assert c.client.pending_commit_count() == 0


def test_shutdown_flushes_and_releases(delegated_cluster):
    c = delegated_cluster

    def ops(fs):
        fid = yield from fs.create("f1")
        yield from fs.write(fid, 0, 4096)
        yield from fs.shutdown()
        return fid

    (fid,) = c.run_ops(ops(c.client))
    assert c.namespace.get(fid).committed_bytes() == 4096
    # Everything not committed was released: only the 4 KB file remains.
    assert c.space.free_bytes == c.space.volume_size - 4096
    assert c.space.uncommitted_bytes() == 0
