"""End-to-end behaviour of the sharded metadata service (shards=2).

The golden tests prove shards=1 is byte-identical to the legacy
cluster; these prove the sharded deployment actually *works*: files
spread across shards, every invariant (including the new cross-shard
disjointness oracle) holds under load, shard-targeted faults hit only
their target, and the explorer stays deterministic with the extra
nemesis family armed.
"""

import json

import pytest

from repro.check import explore, run_schedule
from repro.faults.spec import FaultSpec


def test_fault_free_sharded_run_is_balanced_and_clean():
    out = run_schedule(FaultSpec(), seed=0, shards=2)
    cluster = out.cluster
    assert out.verdict.ok, out.verdict.violations
    assert cluster.metadata.num_shards == 2

    stats = cluster.metadata.per_shard_stats()
    assert [row["shard"] for row in stats] == [0, 1]
    files = [row["files"] for row in stats]
    requests = [row["mds_requests"] for row in stats]
    # The hash router spreads the workload's files across both shards
    # within the 2x-of-ideal acceptance bound.
    assert all(n > 0 for n in files)
    assert max(files) <= 2 * (sum(files) / 2)
    assert all(n > 0 for n in requests)
    # Aggregates equal the per-shard sums.
    assert cluster.metadata.requests_processed == sum(requests)

    # The oracle ran its new cross-shard panel and found nothing.
    assert any(
        s.startswith("shard-disjointness: 2 shards, 0 violations")
        for s in out.verdict.summaries
    )
    assert any("[shard 0]" in s for s in out.verdict.summaries)
    assert any("[shard 1]" in s for s in out.verdict.summaries)


def test_shard_targeted_restart_hits_only_that_shard():
    out = run_schedule(
        FaultSpec.parse("mds_restart@0.1:0.05:shard=1"), seed=0, shards=2
    )
    cluster = out.cluster
    assert out.verdict.ok, out.verdict.violations
    assert cluster.metadata.shard(0).restarts == 0
    assert cluster.metadata.shard(1).restarts == 1


def test_shard_partition_drops_confined_to_target():
    out = run_schedule(
        FaultSpec.parse("shard_partition=1@0.05-0.15"), seed=0, shards=2
    )
    cluster = out.cluster
    assert out.verdict.ok, out.verdict.violations
    drops = [port.partition_drops for port in cluster.ports]
    assert drops[0] == 0
    assert drops[1] > 0


def test_sharded_crash_recovers_clean():
    out = run_schedule(FaultSpec.parse("crash@0.1"), seed=0, shards=2)
    assert out.crashed
    assert out.verdict.ok, out.verdict.violations
    assert any(
        s.startswith("shard-disjointness") for s in out.verdict.summaries
    )


def test_shard_clauses_rejected_on_single_shard_cluster():
    with pytest.raises(ValueError):
        run_schedule(
            FaultSpec.parse("shard_partition=1@0.05-0.15"), seed=0
        )
    with pytest.raises(ValueError):
        run_schedule(
            FaultSpec.parse("mds_restart@0.1:0.05:shard=1"), seed=0
        )


def test_sharded_explore_is_deterministic():
    first = explore(budget=5, seed=0, shards=2)
    second = explore(budget=5, seed=0, shards=2)
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        second.as_dict(), sort_keys=True
    )
    assert first.as_dict()["shards"] == 2
    assert first.ok, [s for s in first.schedules if not s["ok"]]


def test_sharded_nemesis_preserves_unsharded_draws():
    """Arming the shard nemesis family must not perturb the shards=1
    draw sequence: shards=1 CI reports stay byte-identical."""
    from repro.check.explorer import _nemesis_spec
    from repro.sim import StreamRNG

    def batch(shards):
        root = StreamRNG(0).stream("check", "nemesis")
        return [
            _nemesis_spec(root.stream(i), clients=3, shards=shards).serialize()
            for i in range(12)
        ]

    legacy = [
        _nemesis_spec(
            StreamRNG(0).stream("check", "nemesis").stream(i), clients=3
        ).serialize()
        for i in range(12)
    ]
    assert batch(1) == legacy  # default arg == explicit shards=1
    sharded = batch(2)
    assert sharded != legacy  # the new family actually fires...
    shard_clauses = [
        s for s in sharded if "shard" in s
    ]
    assert shard_clauses  # ...with shard-targeted clauses in the mix
