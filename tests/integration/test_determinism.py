"""Determinism: identical seeds must reproduce identical runs."""

import pytest

from repro.fs import build_cluster
from repro.fs.factory import SYSTEMS
from repro.workloads import XcdnWorkload


def fingerprint(system, seed):
    cluster = build_cluster(system, num_clients=2, seed=seed)
    workload = XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=5, threads_per_client=2
    )
    result = cluster.run_workload(workload, duration=1.0, warmup=0.1)
    return (
        result.ops_completed,
        round(result.metrics.latency().mean, 12),
        result.metrics.total_bytes,
        round(cluster.env.now, 9),
    )


@pytest.mark.parametrize("system", SYSTEMS)
def test_same_seed_same_run(system):
    assert fingerprint(system, 5) == fingerprint(system, 5)


def test_different_seeds_differ():
    # Not a strict requirement of correctness, but if every seed gave
    # identical op streams the RNG plumbing would be broken.
    assert fingerprint("redbud-delayed", 5) != fingerprint(
        "redbud-delayed", 6
    )


def test_trace_is_reproducible():
    def trace_rows(seed):
        cluster = build_cluster("redbud-delayed", num_clients=2, seed=seed)
        workload = XcdnWorkload(
            file_size=32 * 1024, seed_files_per_client=5,
            threads_per_client=2,
        )
        cluster.run_workload(workload, duration=0.5, warmup=0.1)
        return cluster.blktrace.to_rows()

    assert trace_rows(7) == trace_rows(7)
