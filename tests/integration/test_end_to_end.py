"""End-to-end integration: whole clusters running whole workloads."""

import pytest

from repro.consistency import check_ordered_writes
from repro.fs import ClusterConfig, RedbudCluster, build_cluster
from repro.fs.factory import SYSTEMS
from repro.workloads import VarmailWorkload, XcdnWorkload


@pytest.mark.parametrize("system", SYSTEMS)
def test_every_system_runs_xcdn(system):
    cluster = build_cluster(system, num_clients=3, seed=9)
    workload = XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=6, threads_per_client=2
    )
    result = cluster.run_workload(workload, duration=1.0, warmup=0.1)
    assert result.ops_completed > 10
    assert result.metrics.count("write") > 0
    assert result.system == cluster.system_name
    assert result.duration == 1.0


def test_delayed_commit_beats_sync_on_small_files():
    """The headline effect survives an end-to-end run."""

    def throughput(commit_mode, delegation):
        config = ClusterConfig(
            num_clients=3,
            commit_mode=commit_mode,
            space_delegation=delegation,
        )
        cluster = RedbudCluster(config, seed=9)
        workload = XcdnWorkload(
            file_size=32 * 1024,
            seed_files_per_client=8,
            threads_per_client=4,
        )
        result = cluster.run_workload(workload, duration=2.0, warmup=0.2)
        return result.ops_per_second

    sync = throughput("synchronous", False)
    delayed = throughput("delayed", True)
    assert delayed > 1.1 * sync


def test_cluster_state_consistent_after_clean_run():
    config = ClusterConfig.space_delegation_config(num_clients=3)
    cluster = RedbudCluster(config, seed=9)
    workload = XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=6, threads_per_client=2
    )
    cluster.run_workload(workload, duration=1.0, warmup=0.1)
    cluster.settle(3.0)  # let background commits land
    report = check_ordered_writes(
        cluster.namespace, cluster.array.stable, cluster.space
    )
    assert report.consistent, report.summary()
    cluster.space.check_invariants()
    cluster.namespace.check_invariants()


def test_extras_are_populated_for_redbud():
    config = ClusterConfig.space_delegation_config(num_clients=2)
    cluster = RedbudCluster(config, seed=9)
    result = cluster.run_workload(
        XcdnWorkload(file_size=32 * 1024, seed_files_per_client=5,
                     threads_per_client=2),
        duration=1.0,
    )
    extras = result.extras
    assert extras["merge_ratio"] >= 1.0
    assert extras["seek_analysis"].dispatches > 0
    assert 0.0 <= extras["array_utilization"] <= 1.0
    assert extras["mds_requests"] > 0
    assert len(extras["pool_samples"]) == 2
    assert extras["commit_rpcs"] > 0
    assert extras["ops_committed"] > 0


def test_fsync_heavy_workload_commits_everything():
    config = ClusterConfig.space_delegation_config(num_clients=2)
    cluster = RedbudCluster(config, seed=9)
    result = cluster.run_workload(
        VarmailWorkload(seed_files_per_client=6),
        duration=1.0,
    )
    cluster.settle(3.0)
    # No file may be left with pending (uncommitted) records.
    for client in cluster.clients:
        assert client.pending_commit_count() == 0
    assert result.metrics.count("fsync") > 0


def test_run_result_speedup_helper():
    config = ClusterConfig.original_redbud(num_clients=2)
    cluster = RedbudCluster(config, seed=9)
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=5,
                      threads_per_client=2)
    res = cluster.run_workload(wl, duration=1.0)
    assert res.speedup_over(res) == pytest.approx(1.0)
