"""Every personality runs on every system (the Fig. 3 grid, smoke-sized)."""

import pytest

from repro.fs import build_cluster
from repro.fs.factory import SYSTEMS
from repro.workloads import (
    FileserverWorkload,
    NpbBtIoWorkload,
    VarmailWorkload,
    WebproxyWorkload,
)

WORKLOADS = {
    "fileserver": lambda: FileserverWorkload(seed_files_per_client=5),
    "varmail": lambda: VarmailWorkload(seed_files_per_client=5),
    "webproxy": lambda: WebproxyWorkload(seed_files_per_client=6),
    "npb": lambda: NpbBtIoWorkload(
        slab_size=128 * 1024, compute_time=0.004, steps_per_barrier=2
    ),
}


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
@pytest.mark.parametrize("system", SYSTEMS)
def test_grid_cell(system, workload_name):
    cluster = build_cluster(system, num_clients=2, seed=13)
    workload = WORKLOADS[workload_name]()
    result = cluster.run_workload(workload, duration=0.8, warmup=0.1)
    assert result.ops_completed > 0
    assert result.metrics.latency().mean >= 0.0
    # Writes moved real bytes on every system.
    assert result.metrics.bytes_for("write") > 0 or (
        workload_name == "webproxy"
    )


@pytest.mark.parametrize("system", SYSTEMS)
def test_varmail_fsync_durability_everywhere(system):
    """fsync semantics exist on every system (no-ops only where the
    architecture makes them legitimately free)."""
    cluster = build_cluster(system, num_clients=2, seed=13)
    result = cluster.run_workload(
        VarmailWorkload(seed_files_per_client=5), duration=0.8, warmup=0.1
    )
    assert result.metrics.count("fsync") > 0
