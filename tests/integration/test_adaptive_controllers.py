"""Live-cluster behaviour of the two adaptive controllers (§IV.B)."""

import pytest

from repro.fs import ClusterConfig, RedbudCluster
from repro.mds.server import MdsParameters
from repro.workloads import NpbBtIoWorkload, XcdnWorkload


def test_pool_grows_under_xcdn_and_shrinks_after():
    config = ClusterConfig.space_delegation_config(num_clients=3)
    cluster = RedbudCluster(config, seed=9)
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=8,
                      threads_per_client=8)
    cluster.run_workload(wl, duration=2.0, warmup=0.2)
    pool = cluster.clients[0].thread_pool
    peak = max(threads for _t, threads, _q in pool.samples)
    assert peak > 1
    assert pool.spawns > 1
    # After the workload stops, the pool drains back to one thread.
    cluster.settle(3.0)
    assert pool.thread_count == 1
    assert pool.retires >= peak - 1


def test_pool_stays_at_one_for_npb():
    config = ClusterConfig.space_delegation_config(num_clients=3)
    cluster = RedbudCluster(config, seed=9)
    wl = NpbBtIoWorkload(slab_size=256 * 1024, compute_time=0.01,
                         steps_per_barrier=2)
    cluster.run_workload(wl, duration=2.0, warmup=0.2)
    for client in cluster.clients:
        threads = [t for _, t, _ in client.thread_pool.samples]
        assert max(threads) <= 2
        assert min(threads) == 1


def test_adaptive_degree_rises_when_mds_is_slow():
    """With a single overloaded MDS daemon, commit RPC latency inflates
    and the adaptive controller raises the compound degree."""
    config = ClusterConfig.space_delegation_config(
        num_clients=7,
        mds=MdsParameters(num_daemons=1, svc_message=200e-6),
    )
    cluster = RedbudCluster(config, seed=9)
    wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=8,
                      threads_per_client=8)
    cluster.run_workload(wl, duration=2.5, warmup=0.2)
    degrees = [c.compound.degree for c in cluster.clients]
    assert max(degrees) > 1, degrees
    mean_used = max(
        c.daemon_ctx.stats.mean_degree for c in cluster.clients
    )
    assert mean_used > 1.05


def test_fixed_degree_reduces_rpcs_proportionally():
    def commit_rpcs(degree):
        config = ClusterConfig.space_delegation_config(
            num_clients=3, fixed_compound_degree=degree
        )
        cluster = RedbudCluster(config, seed=9)
        wl = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=8,
                          threads_per_client=8)
        cluster.run_workload(wl, duration=1.5, warmup=0.2)
        stats = [c.daemon_ctx.stats for c in cluster.clients]
        ops = sum(s.ops_committed for s in stats)
        rpcs = sum(s.rpcs_sent for s in stats)
        return ops, rpcs

    ops1, rpcs1 = commit_rpcs(1)
    ops6, rpcs6 = commit_rpcs(6)
    assert rpcs1 == ops1  # degree 1: one RPC per op
    assert rpcs6 < 0.55 * ops6  # compounding took effect
