"""Bench-harness unit tests: cache fingerprint and scale cells.

The fingerprint bug these pin down: a brand-new (untracked) module
changes simulator behaviour but is invisible to ``git diff HEAD``, so
the result cache kept serving cells measured against code that no
longer existed.  The fingerprint must react to untracked files and --
in the no-git fallback -- to ``benchmarks/`` edits, not just ``src/``.
"""

import os
import subprocess

import pytest

from benchmarks.harness import (
    FIGURE_SWEEPS,
    _scale_cell,
    code_fingerprint,
    derive_scaling,
)


def _git(root, *argv):
    subprocess.run(
        ["git", "-C", str(root), *argv],
        check=True,
        capture_output=True,
        env={
            **os.environ,
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
        },
    )


@pytest.fixture
def repo(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "benchmarks").mkdir()
    (tmp_path / "src" / "mod.py").write_text("A = 1\n")
    (tmp_path / "benchmarks" / "bench.py").write_text("B = 1\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


def test_fingerprint_sees_untracked_files(repo):
    clean = code_fingerprint(str(repo))
    (repo / "src" / "new_scheduler.py").write_text("C = 3\n")
    with_untracked = code_fingerprint(str(repo))
    assert with_untracked != clean
    # Content matters, not just presence.
    (repo / "src" / "new_scheduler.py").write_text("C = 4\n")
    assert code_fingerprint(str(repo)) != with_untracked
    (repo / "src" / "new_scheduler.py").unlink()
    assert code_fingerprint(str(repo)) == clean


def test_fingerprint_sees_untracked_benchmark_files(repo):
    clean = code_fingerprint(str(repo))
    (repo / "benchmarks" / "bench_new.py").write_text("D = 1\n")
    assert code_fingerprint(str(repo)) != clean


def test_fingerprint_still_sees_tracked_modifications(repo):
    clean = code_fingerprint(str(repo))
    (repo / "src" / "mod.py").write_text("A = 2\n")
    assert code_fingerprint(str(repo)) != clean


def test_fingerprint_covers_rt_substrate(repo):
    """``src/repro/rt`` (the asyncio substrate) must invalidate the
    bench cache like any other src/ code: tracked edits, new untracked
    modules, and the no-git fallback walk all have to see it."""
    rt = repo / "src" / "repro" / "rt"
    rt.mkdir(parents=True)
    (rt / "effects.py").write_text("E = 1\n")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "rt")
    clean = code_fingerprint(str(repo))
    (rt / "effects.py").write_text("E = 2\n")
    assert code_fingerprint(str(repo)) != clean
    _git(repo, "checkout", "--", ".")
    assert code_fingerprint(str(repo)) == clean
    (rt / "transport.py").write_text("T = 1\n")
    assert code_fingerprint(str(repo)) != clean


def test_fallback_fingerprint_covers_rt_substrate(tmp_path):
    rt = tmp_path / "src" / "repro" / "rt"
    rt.mkdir(parents=True)
    (rt / "effects.py").write_text("E = 1\n")
    base = code_fingerprint(str(tmp_path))
    assert base.startswith("src-")
    (rt / "effects.py").write_text("E = 2\n")
    assert code_fingerprint(str(tmp_path)) != base


def test_fallback_fingerprint_covers_benchmarks(tmp_path):
    """Without git, the walk must include benchmarks/ alongside src/."""
    (tmp_path / "src").mkdir()
    (tmp_path / "benchmarks").mkdir()
    (tmp_path / "src" / "mod.py").write_text("A = 1\n")
    (tmp_path / "benchmarks" / "bench.py").write_text("B = 1\n")
    base = code_fingerprint(str(tmp_path))
    assert base.startswith("src-")
    (tmp_path / "benchmarks" / "bench.py").write_text("B = 2\n")
    changed = code_fingerprint(str(tmp_path))
    assert changed != base
    assert changed.startswith("src-")


def test_scale_cell_shape():
    cell = _scale_cell(1000, "calendar", processes=8)
    assert cell["clients"] == 1000
    assert cell["scheduler"] == "calendar"
    assert cell["processes"] == 8
    assert cell["workload"] == "xcdn-scale"
    assert cell["config"]["delegation_chunk"] == 1024 * 1024
    legacy = _scale_cell(1000, "heap")
    assert "processes" not in legacy


def test_clients_figure_spans_both_layouts():
    cells = FIGURE_SWEEPS["clients"]
    legacy = {c["clients"] for c in cells if "processes" not in c}
    aggregate = {c["clients"] for c in cells if "processes" in c}
    assert 10_000 in legacy and 10_000 in aggregate
    assert all(c["scheduler"] == "heap" for c in cells
               if "processes" not in c)
    assert all(c["scheduler"] == "calendar" for c in cells
               if "processes" in c)


def test_derive_scaling_pairs_layouts():
    def record(clients, scheduler, processes, events, wall):
        cell = {"clients": clients, "scheduler": scheduler}
        if processes:
            cell["processes"] = processes
        return {"cell": cell, "events": events, "wall_time": wall}

    rows = derive_scaling([
        record(1000, "heap", None, 100_000, 10.0),
        record(1000, "calendar", 8, 100_000, 2.0),
        record(10_000, "calendar", 16, 400_000, 10.0),
    ])
    assert rows == [
        {
            "clients": 1000,
            "legacy_events_per_second": 10_000.0,
            "aggregate_events_per_second": 50_000.0,
            "speedup": 5.0,
        },
        {
            "clients": 10_000,
            "aggregate_events_per_second": 40_000.0,
        },
    ]


def test_derive_scaling_ignores_classic_figures():
    assert derive_scaling(
        [{"cell": {"clients": 3, "system": "nfs3"},
          "events": 10, "wall_time": 1.0}]
    ) == []
