"""Tests for the metadata server daemon model and operation semantics."""

import pytest

from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.mds.server import MdsParameters, MetadataServer
from repro.net.link import Link
from repro.net.messages import (
    CommitOp,
    CommitPayload,
    CreatePayload,
    DelegationPayload,
    GetattrPayload,
    LayoutGetPayload,
    ReleasePayload,
    UnlinkPayload,
)
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment


def make_mds(env, num_daemons=2, num_clients=2, **param_kw):
    port = RpcServerPort(env)
    downlinks = {cid: Link(env) for cid in range(num_clients)}
    clients = {
        cid: RpcClient(
            env, cid, RpcTransport(env, Link(env), downlinks[cid], port)
        )
        for cid in range(num_clients)
    }
    params = MdsParameters(num_daemons=num_daemons, **param_kw)
    mds = MetadataServer(
        env,
        params,
        Namespace(),
        SpaceManager(volume_size=1 << 30, num_groups=4),
        port,
        downlinks,
    )
    return mds, clients


def run_call(env, client, kind, payload):
    box = {}

    def caller(env):
        box["reply"] = yield client.call(kind, payload)

    env.process(caller(env))
    env.run()
    return box.get("reply")


def test_create_via_rpc():
    env = Environment()
    mds, clients = make_mds(env)
    meta = run_call(env, clients[0], "create", CreatePayload(name="f1"))
    assert meta.name == "f1"
    assert mds.namespace.lookup("f1").file_id == meta.file_id
    assert mds.requests_processed == 1


def test_layout_get_allocates_holes():
    env = Environment()
    mds, clients = make_mds(env)
    meta = run_call(env, clients[0], "create", CreatePayload(name="f"))
    reply = run_call(
        env,
        clients[0],
        "layout_get",
        LayoutGetPayload(
            file_id=meta.file_id, offset=0, length=8192, allocate=True
        ),
    )
    assert len(reply.extents) == 1
    extent = reply.extents[0]
    assert extent.length == 8192
    assert extent.state == "new"
    assert reply.chunk is None
    # Allocation is tracked as uncommitted until the commit arrives.
    assert mds.space.uncommitted_bytes(0) == 8192


def test_layout_get_returns_committed_without_alloc():
    env = Environment()
    mds, clients = make_mds(env)
    meta = run_call(env, clients[0], "create", CreatePayload(name="f"))
    reply = run_call(
        env,
        clients[0],
        "layout_get",
        LayoutGetPayload(
            file_id=meta.file_id, offset=0, length=4096, allocate=True
        ),
    )
    extent = reply.extents[0]
    run_call(
        env,
        clients[0],
        "commit",
        CommitPayload(ops=[CommitOp(file_id=meta.file_id, extents=[extent])]),
    )
    reply2 = run_call(
        env,
        clients[0],
        "layout_get",
        LayoutGetPayload(file_id=meta.file_id, offset=0, length=4096),
    )
    assert len(reply2.extents) == 1
    assert reply2.extents[0].state == "committed"
    assert reply2.extents[0].volume_offset == extent.volume_offset
    assert mds.space.uncommitted_bytes() == 0


def test_delegation_hint_rides_on_layout_get():
    env = Environment()
    mds, clients = make_mds(env, delegation_chunk=1 << 20)
    meta = run_call(env, clients[0], "create", CreatePayload(name="f"))
    reply = run_call(
        env,
        clients[0],
        "layout_get",
        LayoutGetPayload(
            file_id=meta.file_id,
            offset=0,
            length=4096,
            allocate=True,
            delegation_hint=True,
        ),
    )
    assert reply.chunk is not None
    assert reply.chunk.length == 1 << 20


def test_explicit_delegation():
    env = Environment()
    mds, clients = make_mds(env)
    chunk = run_call(
        env, clients[1], "delegate", DelegationPayload(chunk_size=65536)
    )
    assert chunk.length == 65536
    assert mds.space.uncommitted_bytes(1) == 65536


def test_release_returns_chunk():
    env = Environment()
    mds, clients = make_mds(env)
    chunk = run_call(
        env, clients[0], "delegate", DelegationPayload(chunk_size=65536)
    )
    free_before = mds.space.free_bytes
    run_call(
        env,
        clients[0],
        "release",
        ReleasePayload(chunks=[(chunk.volume_offset, chunk.length)]),
    )
    assert mds.space.free_bytes == free_before + 65536
    assert mds.space.uncommitted_bytes(0) == 0


def test_compound_commit_applies_all_ops():
    env = Environment()
    mds, clients = make_mds(env)
    metas = [
        run_call(env, clients[0], "create", CreatePayload(name=f"f{i}"))
        for i in range(3)
    ]
    extents = {}
    for meta in metas:
        reply = run_call(
            env,
            clients[0],
            "layout_get",
            LayoutGetPayload(
                file_id=meta.file_id, offset=0, length=4096, allocate=True
            ),
        )
        extents[meta.file_id] = reply.extents
    results = run_call(
        env,
        clients[0],
        "commit",
        CommitPayload(
            ops=[
                CommitOp(file_id=m.file_id, extents=extents[m.file_id])
                for m in metas
            ]
        ),
    )
    assert results == [True, True, True]
    for meta in metas:
        assert mds.namespace.get(meta.file_id).committed_bytes() == 4096
    assert mds.ops_processed >= 3


def test_unlink_frees_space():
    env = Environment()
    mds, clients = make_mds(env)
    meta = run_call(env, clients[0], "create", CreatePayload(name="f"))
    reply = run_call(
        env,
        clients[0],
        "layout_get",
        LayoutGetPayload(
            file_id=meta.file_id, offset=0, length=4096, allocate=True
        ),
    )
    run_call(
        env,
        clients[0],
        "commit",
        CommitPayload(
            ops=[CommitOp(file_id=meta.file_id, extents=reply.extents)]
        ),
    )
    free_before = mds.space.free_bytes
    run_call(env, clients[0], "unlink", UnlinkPayload(file_id=meta.file_id))
    assert mds.space.free_bytes == free_before + 4096


def test_getattr():
    env = Environment()
    mds, clients = make_mds(env)
    meta = run_call(env, clients[0], "create", CreatePayload(name="f"))
    got = run_call(
        env, clients[0], "getattr", GetattrPayload(file_id=meta.file_id)
    )
    assert got.file_id == meta.file_id


def test_single_daemon_serialises_requests():
    """With one daemon, service times add; with many they overlap."""

    def total_time(num_daemons):
        env = Environment()
        mds, clients = make_mds(
            env, num_daemons=num_daemons, svc_message=0.001, svc_op=0.001
        )
        done = []

        def caller(env, name):
            yield clients[0].call("create", CreatePayload(name=name))
            done.append(env.now)

        for i in range(8):
            env.process(caller(env, f"f{i}"))
        env.run(until=10.0)
        assert len(done) == 8
        return max(done)

    assert total_time(1) > total_time(8) * 1.5


def test_contention_slows_parallel_daemons():
    """Contention factor makes highly parallel MDS slightly slower per op."""

    def busy_time(num_daemons, contention):
        env = Environment()
        mds, clients = make_mds(
            env,
            num_daemons=num_daemons,
            contention_factor=contention,
            svc_message=0.001,
            svc_op=0.001,
        )

        def caller(env, name):
            yield clients[0].call("create", CreatePayload(name=name))

        for i in range(16):
            env.process(caller(env, f"f{i}"))
        env.run(until=30.0)
        return mds.busy_time

    assert busy_time(16, 0.1) > busy_time(16, 0.0)


def test_queue_length_visible():
    env = Environment()
    mds, clients = make_mds(env, num_daemons=1, svc_message=0.01)

    def caller(env, name):
        yield clients[0].call("create", CreatePayload(name=name))

    for i in range(5):
        env.process(caller(env, f"f{i}"))
    env.run(until=0.005)
    # First request in service, some still queued.
    assert mds.queue_length >= 1
    env.run(until=10.0)
    assert mds.queue_length == 0
