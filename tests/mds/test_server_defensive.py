"""The MDS's defensive commit rule under races.

Delete/commit and overwrite/commit races are normal life for delayed
commit; the MDS must stay sound (no double frees, no resurrected
extents) no matter the arrival order.
"""

import pytest

from repro.mds.allocation import SpaceManager
from repro.mds.extent import Extent
from repro.mds.namespace import Namespace
from repro.mds.server import MdsParameters, MetadataServer
from repro.net.link import Link
from repro.net.messages import (
    CommitOp,
    CommitPayload,
    CreatePayload,
    LayoutGetPayload,
    UnlinkPayload,
)
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment


class Stack:
    def __init__(self, num_clients=2):
        self.env = Environment()
        self.port = RpcServerPort(self.env)
        downlinks = {c: Link(self.env) for c in range(num_clients)}
        self.clients = {
            c: RpcClient(
                self.env,
                c,
                RpcTransport(self.env, Link(self.env), downlinks[c], self.port),
            )
            for c in range(num_clients)
        }
        self.space = SpaceManager(
            volume_size=1 << 30, num_groups=4, cursor_align=0
        )
        self.mds = MetadataServer(
            self.env,
            MdsParameters(num_daemons=2),
            Namespace(),
            self.space,
            self.port,
            downlinks,
        )

    def call(self, client, kind, payload):
        box = {}

        def proc():
            box["v"] = yield self.clients[client].call(kind, payload)

        self.env.process(proc())
        self.env.run()
        return box["v"]


def test_commit_after_unlink_reclaims_fresh_space_only():
    s = Stack()
    meta = s.call(0, "create", CreatePayload(name="f"))
    reply = s.call(
        0,
        "layout_get",
        LayoutGetPayload(file_id=meta.file_id, offset=0, length=4096,
                         allocate=True),
    )
    extent = reply.extents[0]
    s.call(0, "unlink", UnlinkPayload(file_id=meta.file_id))
    # The late commit of the already-unlinked file is dropped; its fresh
    # allocation is reclaimed exactly once.
    free_before = s.space.free_bytes
    results = s.call(
        0,
        "commit",
        CommitPayload(ops=[CommitOp(file_id=meta.file_id, extents=[extent])]),
    )
    assert results == [False]
    assert s.space.free_bytes == free_before + 4096
    assert s.space.uncommitted_bytes() == 0
    s.space.check_invariants()


def test_in_place_recommit_is_a_noop():
    s = Stack()
    meta = s.call(0, "create", CreatePayload(name="f"))
    reply = s.call(
        0,
        "layout_get",
        LayoutGetPayload(file_id=meta.file_id, offset=0, length=4096,
                         allocate=True),
    )
    extent = reply.extents[0]
    s.call(
        0,
        "commit",
        CommitPayload(ops=[CommitOp(file_id=meta.file_id, extents=[extent])]),
    )
    free_after_first = s.space.free_bytes
    # Re-commit the same mapping (in-place data rewrite).
    s.call(
        0,
        "commit",
        CommitPayload(ops=[CommitOp(file_id=meta.file_id, extents=[extent])]),
    )
    assert s.space.free_bytes == free_after_first  # nothing freed/leaked
    committed = s.mds.namespace.get(meta.file_id)
    assert committed.committed_bytes() == 4096
    s.space.check_invariants()


def test_stale_commit_after_displacement_dropped():
    """Client A's mapping is displaced by client B's overwrite; A's late
    re-commit must not resurrect the freed extent."""
    s = Stack()
    meta = s.call(0, "create", CreatePayload(name="f"))
    ra = s.call(
        0,
        "layout_get",
        LayoutGetPayload(file_id=meta.file_id, offset=0, length=4096,
                         allocate=True),
    )
    ea = ra.extents[0]
    s.call(
        0,
        "commit",
        CommitPayload(ops=[CommitOp(file_id=meta.file_id, extents=[ea])]),
    )
    # Client 1 overwrites the same file range with fresh space from its
    # delegated chunk (the delegation write path always places new data
    # in fresh local space).
    from repro.net.messages import DelegationPayload

    chunk = s.call(1, "delegate", DelegationPayload(chunk_size=65536))
    eb = Extent(
        file_offset=0,
        length=4096,
        device_id=0,
        volume_offset=chunk.volume_offset,
    )
    s.call(
        1,
        "commit",
        CommitPayload(ops=[CommitOp(file_id=meta.file_id, extents=[eb])]),
    )
    stale_before = s.mds.stale_commits
    # Client 0 replays its old mapping (e.g. an in-place rewrite attempt
    # through a stale layout): dropped as stale.
    s.call(
        0,
        "commit",
        CommitPayload(ops=[CommitOp(file_id=meta.file_id, extents=[ea])]),
    )
    assert s.mds.stale_commits == stale_before + 1
    current = s.mds.namespace.get(meta.file_id).extents
    assert [e.volume_offset for e in current] == [eb.volume_offset]
    # Unlink at the end frees exactly the live extent; no double free.
    # Client 1 still legitimately holds the rest of its delegated chunk.
    s.call(0, "unlink", UnlinkPayload(file_id=meta.file_id))
    remainder = s.space.uncommitted_bytes(1)
    assert remainder == 65536 - 4096
    assert s.space.free_bytes == s.space.volume_size - remainder
    s.space.check_invariants()


def test_double_unlink_is_harmless():
    s = Stack()
    meta = s.call(0, "create", CreatePayload(name="f"))
    s.call(0, "unlink", UnlinkPayload(file_id=meta.file_id))
    s.call(0, "unlink", UnlinkPayload(file_id=meta.file_id))
    assert s.space.free_bytes == s.space.volume_size


def test_mapping_matches_partial_and_mismatch():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    e = Extent(file_offset=0, length=8192, device_id=0, volume_offset=100)
    ns.commit_extents(meta.file_id, [e], now=1.0)
    # Exact and sub-range matches.
    assert ns.mapping_matches(meta.file_id, e)
    sub = Extent(file_offset=4096, length=4096, device_id=0,
                 volume_offset=100 + 4096)
    assert ns.mapping_matches(meta.file_id, sub)
    # Wrong volume.
    wrong = Extent(file_offset=0, length=8192, device_id=0,
                   volume_offset=999_424)
    assert not ns.mapping_matches(meta.file_id, wrong)
    # Hole.
    beyond = Extent(file_offset=4096, length=8192, device_id=0,
                    volume_offset=100 + 4096)
    assert not ns.mapping_matches(meta.file_id, beyond)
    # Unknown file.
    assert not ns.mapping_matches(999, e)
