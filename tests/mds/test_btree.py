"""Unit and property-based tests for the B+ tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mds.btree import BPlusTree


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert not tree
    assert tree.get(1) is None
    assert tree.get(1, "d") == "d"
    assert 1 not in tree
    assert tree.floor_item(10) is None
    assert tree.ceiling_item(10) is None
    with pytest.raises(KeyError):
        tree.min_item()
    with pytest.raises(KeyError):
        tree.max_item()
    with pytest.raises(KeyError):
        tree.delete(1)


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


def test_insert_get_small():
    tree = BPlusTree(order=4)
    for k in [5, 1, 9, 3, 7]:
        tree.insert(k, k * 10)
    assert len(tree) == 5
    for k in [5, 1, 9, 3, 7]:
        assert tree.get(k) == k * 10
        assert k in tree
    assert tree.get(2) is None
    tree.check_invariants()


def test_insert_replace():
    tree = BPlusTree()
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert len(tree) == 1
    assert tree.get(1) == "b"


def test_ordered_iteration():
    tree = BPlusTree(order=4)
    keys = [8, 3, 5, 1, 9, 2, 7, 6, 4, 0]
    for k in keys:
        tree.insert(k, str(k))
    assert [k for k, _ in tree.items()] == sorted(keys)
    assert list(tree.keys()) == sorted(keys)


def test_bounded_iteration():
    tree = BPlusTree(order=4)
    for k in range(20):
        tree.insert(k, k)
    assert [k for k, _ in tree.items(lo=5, hi=9)] == [5, 6, 7, 8]
    assert [k for k, _ in tree.items(lo=18)] == [18, 19]
    assert [k for k, _ in tree.items(hi=2)] == [0, 1]


def test_min_max():
    tree = BPlusTree(order=4)
    for k in [5, 2, 8, 1, 9]:
        tree.insert(k, k)
    assert tree.min_item() == (1, 1)
    assert tree.max_item() == (9, 9)


def test_floor_ceiling():
    tree = BPlusTree(order=4)
    for k in [10, 20, 30, 40]:
        tree.insert(k, k)
    assert tree.floor_item(25) == (20, 20)
    assert tree.floor_item(20) == (20, 20)
    assert tree.floor_item(5) is None
    assert tree.ceiling_item(25) == (30, 30)
    assert tree.ceiling_item(30) == (30, 30)
    assert tree.ceiling_item(45) is None


def test_delete_returns_value():
    tree = BPlusTree(order=4)
    for k in range(10):
        tree.insert(k, k * 2)
    assert tree.delete(5) == 10
    assert 5 not in tree
    assert len(tree) == 9
    tree.check_invariants()


def test_delete_all_in_random_order():
    tree = BPlusTree(order=4)
    keys = [(k * 37) % 101 for k in range(101)]
    for k in keys:
        tree.insert(k, k)
    tree.check_invariants()
    for k in [(k * 53) % 101 for k in range(101)]:
        tree.delete(k)
        tree.check_invariants()
    assert len(tree) == 0


def test_large_sequential_insert_delete():
    tree = BPlusTree(order=8)
    n = 1000
    for k in range(n):
        tree.insert(k, k)
    tree.check_invariants()
    assert len(tree) == n
    for k in range(0, n, 2):
        tree.delete(k)
    tree.check_invariants()
    assert len(tree) == n // 2
    assert [k for k, _ in tree.items(hi=10)] == [1, 3, 5, 7, 9]


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(0, 100),
        ),
        max_size=120,
    ),
    st.sampled_from([3, 4, 5, 8, 32]),
)
def test_btree_matches_dict_model(ops, order):
    tree = BPlusTree(order=order)
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key * 3)
            model[key] = key * 3
        elif op == "delete":
            if key in model:
                assert tree.delete(key) == model.pop(key)
            else:
                with pytest.raises(KeyError):
                    tree.delete(key)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()


@settings(max_examples=100, deadline=None)
@given(
    st.sets(st.integers(0, 1000), min_size=1, max_size=80),
    st.integers(-5, 1005),
    st.sampled_from([3, 4, 16]),
)
def test_floor_ceiling_match_model(keys, probe, order):
    tree = BPlusTree(order=order)
    for k in keys:
        tree.insert(k, -k)
    below = [k for k in keys if k <= probe]
    above = [k for k in keys if k >= probe]
    expected_floor = (max(below), -max(below)) if below else None
    expected_ceiling = (min(above), -min(above)) if above else None
    assert tree.floor_item(probe) == expected_floor
    assert tree.ceiling_item(probe) == expected_ceiling
