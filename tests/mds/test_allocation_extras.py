"""Tests for cursor alignment, scattered allocation, random strategy."""

import pytest

from repro.mds.allocation import AllocationGroup, SpaceManager
from repro.sim import StreamRNG


def test_cursor_alignment_leaves_gaps():
    ag = AllocationGroup(0, start=0, size=1 << 20, cursor_align=64 * 1024)
    a = ag.alloc(32 * 1024)
    b = ag.alloc(32 * 1024)
    assert a == 0
    assert b == 64 * 1024  # aligned, not packed
    # The gap stays free and accounted.
    assert ag.free_bytes == (1 << 20) - 64 * 1024
    ag.check_invariants()


def test_cursor_alignment_gap_reusable_after_wrap():
    ag = AllocationGroup(0, start=0, size=256 * 1024, cursor_align=64 * 1024)
    offs = [ag.alloc(32 * 1024) for _ in range(4)]
    assert offs == [0, 65536, 131072, 196608]
    # Tail exhausted: the next allocation wraps into the gaps.
    g = ag.alloc(32 * 1024)
    assert g == 32 * 1024
    ag.check_invariants()


def test_no_alignment_packs():
    ag = AllocationGroup(0, start=0, size=1 << 20)
    assert [ag.alloc(100) for _ in range(3)] == [0, 100, 200]


def test_alloc_scattered_uses_origin():
    ag = AllocationGroup(0, start=0, size=1 << 20)
    off = ag.alloc_scattered(4096, origin=500_000)
    assert off == 500_000
    # Does not disturb the next-fit cursor.
    assert ag.alloc(4096) == 0
    ag.check_invariants()


def test_alloc_scattered_wraps_when_origin_tail_full():
    ag = AllocationGroup(0, start=0, size=1000)
    ag.alloc(900)
    off = ag.alloc_scattered(50, origin=990)
    assert off == 900  # wrapped to the first fit
    assert ag.alloc_scattered(200, origin=0) is None
    ag.check_invariants()


def test_space_manager_scattered_spreads():
    sm = SpaceManager(
        volume_size=1 << 26,
        num_groups=8,
        rng=StreamRNG(3).stream("a"),
        cursor_align=0,
    )
    offsets = [sm.alloc(4096, scattered=True) for _ in range(32)]
    # Never contiguous (overwhelmingly likely), spanning several AGs.
    gaps = [b - a for a, b in zip(sorted(offsets), sorted(offsets)[1:])]
    assert max(gaps) > (1 << 20)
    ags = {off >> 23 for off in offsets}
    assert len(ags) >= 3
    sm.check_invariants()


def test_random_strategy_rotates_groups():
    sm = SpaceManager(
        volume_size=1 << 26,
        num_groups=8,
        strategy="random",
        rng=StreamRNG(3).stream("b"),
        cursor_align=0,
    )
    offsets = [sm.alloc(4096) for _ in range(64)]
    ags = {off >> 23 for off in offsets}
    assert len(ags) >= 4  # rotated over many groups
    sm.check_invariants()


def test_scattered_tracks_uncommitted():
    sm = SpaceManager(
        volume_size=1 << 26, num_groups=4, rng=StreamRNG(1).stream("c")
    )
    off = sm.alloc(4096, client_id=2, scattered=True)
    assert sm.uncommitted_bytes(2) == 4096
    sm.note_committed(off, 4096)
    assert sm.uncommitted_bytes(2) == 0
