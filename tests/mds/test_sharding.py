"""Sharded metadata service: router properties and the disjointness oracle.

The router tests are property-based (satellite of the sharding PR):
routing must be deterministic across fresh instances, stable under
shard-count-preserving config round-trips, and balanced within 2x of
ideal over a large synthetic handle population.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.config import ClusterConfig
from repro.mds.allocation import SpaceManager
from repro.mds.extent import Extent
from repro.mds.namespace import Namespace
from repro.mds.server import MdsParameters, MetadataServer
from repro.mds.sharding import (
    PLACEMENT_POLICIES,
    ShardRouter,
    ShardedMetadataService,
    check_shard_disjointness,
    fnv1a_64,
)

names = st.text(min_size=1, max_size=40)
shard_counts = st.integers(min_value=1, max_value=16)


# -- router properties --------------------------------------------------------


def test_fnv1a_matches_reference_vectors():
    # Published FNV-1a 64-bit test vectors.
    assert fnv1a_64(b"") == 0xCBF29CE484222325
    assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C
    assert fnv1a_64(b"foobar") == 0x85944171F73967E8


@given(name=names, shards=shard_counts)
@settings(max_examples=200, deadline=None)
def test_routing_is_deterministic_across_fresh_routers(name, shards):
    """Same name -> same shard, no matter which router instance asks."""
    a = ShardRouter(shards).shard_for_name(name)
    b = ShardRouter(shards).shard_for_name(name)
    assert a == b
    assert 0 <= a < shards


@given(name=names, shards=st.integers(min_value=2, max_value=8))
@settings(max_examples=100, deadline=None)
def test_routing_survives_config_round_trip(name, shards):
    """A config round trip that preserves the shard count must not move
    any file: the routing function depends only on (name, shards)."""
    config = ClusterConfig.delayed_commit().with_shards(shards)
    before = ShardRouter(config.mds.shards).shard_for_name(name)
    # Round-trip through replace (as checkpoint/replay tooling does).
    config2 = dataclasses.replace(
        config, mds=dataclasses.replace(config.mds)
    )
    assert config2.mds.shards == shards
    after = ShardRouter(config2.mds.shards).shard_for_name(name)
    assert before == after


@given(file_id=st.integers(min_value=1, max_value=10**9),
       shards=shard_counts)
@settings(max_examples=200, deadline=None)
def test_owner_shard_matches_namespace_striding(file_id, shards):
    """shard_of_file inverts the id progression Namespace(first_id=k+1,
    id_step=N) hands out: ids from shard k always map back to k."""
    router = ShardRouter(shards)
    owner = router.shard_of_file(file_id)
    assert 0 <= owner < shards
    # Any id actually issued by shard k's namespace belongs to k.
    k = (file_id - 1) % shards
    assert owner == k


@pytest.mark.parametrize("shards", [2, 3, 4, 8])
def test_routing_is_balanced_within_2x_of_ideal(shards):
    """>= 1k synthetic file handles spread within 2x of the ideal
    per-shard share (the acceptance bound from the issue)."""
    router = ShardRouter(shards)
    population = [f"/bench/dir{i % 37}/file-{i:05d}.dat" for i in range(1200)]
    counts = [0] * shards
    for name in population:
        counts[router.shard_for_name(name)] += 1
    ideal = len(population) / shards
    assert sum(counts) == len(population)
    for shard, count in enumerate(counts):
        assert count <= 2 * ideal, (shard, count, ideal)
        assert count >= ideal / 2, (shard, count, ideal)


def test_router_rejects_bad_configs():
    with pytest.raises(ValueError):
        ShardRouter(0)
    with pytest.raises(ValueError):
        ShardRouter(2, policy="no-such-policy")
    # A custom policy that routes out of range is caught at call time.
    rogue = ShardRouter(2, policy=lambda name, n: n + 5)
    with pytest.raises(ValueError):
        rogue.shard_for_name("x")


def test_named_policies_registry_is_usable():
    assert "hash-name" in PLACEMENT_POLICIES
    router = ShardRouter(4, policy="hash-name")
    assert router.policy_name == "hash-name"


# -- sharded service aggregates ----------------------------------------------


def _make_service(shards=2, volume=1 << 20):
    from repro.net.rpc import RpcServerPort
    from repro.sim import Environment, StreamRNG

    env = Environment()
    servers = []
    slice_size = volume // shards
    for k in range(shards):
        namespace = Namespace(first_id=k + 1, id_step=shards)
        space = SpaceManager(
            volume_size=slice_size,
            base_offset=k * slice_size,
            rng=StreamRNG(7).stream("alloc", k),
        )
        servers.append(
            MetadataServer(
                env,
                MdsParameters(shards=shards),
                namespace,
                space,
                RpcServerPort(env),
                downlinks={},
            )
        )
    return ShardedMetadataService(servers, ShardRouter(shards))


def test_service_aggregates_and_shard_access():
    svc = _make_service(shards=3)
    assert svc.num_shards == 3
    assert len(svc) == 3
    assert [svc.shard(i) for i in range(3)] == list(svc)
    assert svc.requests_processed == 0
    assert svc.queue_length == 0
    stats = svc.per_shard_stats()
    assert [row["shard"] for row in stats] == [0, 1, 2]
    assert all(row["files"] == 0 for row in stats)


def test_targeted_crash_and_restart_touch_one_shard():
    svc = _make_service(shards=2)
    svc.crash(shard=1)
    svc.restart(shard=1)
    assert svc.shard(0).restarts == 0
    assert svc.shard(1).restarts == 1
    svc.crash()
    svc.restart()
    assert svc.restarts == 3


def test_dedup_switch_fans_out():
    svc = _make_service(shards=2)
    svc.set_commit_dedup_enabled(False)
    assert not any(s.commit_dedup_enabled for s in svc)
    svc.set_commit_dedup_enabled(True)
    assert all(s.commit_dedup_enabled for s in svc)


# -- cross-shard disjointness oracle -----------------------------------------


def _shard_pair(k, shards, volume):
    slice_size = volume // shards
    namespace = Namespace(first_id=k + 1, id_step=shards)
    space = SpaceManager(
        volume_size=slice_size, base_offset=k * slice_size
    )
    return namespace, space


def _commit(namespace, volume_offset, length=4096):
    meta = namespace.create(f"f{volume_offset}", now=0.0)
    namespace.commit_extents(
        meta.file_id,
        [
            Extent(
                file_offset=0,
                length=length,
                device_id=0,
                volume_offset=volume_offset,
            )
        ],
        now=0.0,
    )
    return meta


def test_disjointness_clean_configuration_is_silent():
    volume = 1 << 20
    shards = [_shard_pair(k, 2, volume) for k in range(2)]
    # Each shard commits inside its own slice.
    _commit(shards[0][0], volume_offset=0)
    _commit(shards[1][0], volume_offset=(volume // 2) + 8192)
    assert check_shard_disjointness(shards, volume) == []


def test_disjointness_vacuous_for_single_shard():
    volume = 1 << 20
    shards = [_shard_pair(0, 1, volume)]
    _commit(shards[0][0], volume_offset=4096)
    assert check_shard_disjointness(shards, volume) == []


def test_disjointness_flags_overlapping_slices():
    volume = 1 << 20
    a = (Namespace(first_id=1, id_step=2),
         SpaceManager(volume_size=volume // 2, base_offset=0))
    b = (Namespace(first_id=2, id_step=2),
         SpaceManager(volume_size=volume // 2, base_offset=volume // 4))
    problems = check_shard_disjointness([a, b], volume)
    assert any("overlaps another" in p for p in problems)


def test_disjointness_flags_out_of_bounds_slice():
    volume = 1 << 20
    a = (Namespace(), SpaceManager(volume_size=volume, base_offset=0))
    b = (Namespace(first_id=2, id_step=2),
         SpaceManager(volume_size=volume, base_offset=volume // 2))
    problems = check_shard_disjointness([a, b], volume)
    assert any("exceeds" in p for p in problems)


def test_disjointness_flags_escaping_extent():
    volume = 1 << 20
    shards = [_shard_pair(k, 2, volume) for k in range(2)]
    # Shard 0 commits an extent that lands in shard 1's slice.
    _commit(shards[0][0], volume_offset=(volume // 2) + 4096)
    problems = check_shard_disjointness(shards, volume)
    assert any("escapes its slice" in p for p in problems)


def test_disjointness_flags_double_claimed_bytes():
    volume = 1 << 20
    shards = [_shard_pair(k, 2, volume) for k in range(2)]
    # Both shards claim the same volume range as committed; the range
    # escapes one slice too, but the double-claim must be reported in
    # its own right.
    _commit(shards[0][0], volume_offset=volume // 2)
    _commit(shards[1][0], volume_offset=volume // 2)
    problems = check_shard_disjointness(shards, volume)
    assert any("claimed committed" in p for p in problems)


def test_disjointness_flags_escaping_uncommitted_range():
    volume = 1 << 20
    shards = [_shard_pair(k, 2, volume) for k in range(2)]
    _, space0 = shards[0]
    # Simulate a delegation-tracking bug: shard 0 records uncommitted
    # space inside shard 1's slice.
    from repro.util.intervals import IntervalSet

    rogue = IntervalSet()
    rogue.add(volume // 2 + 100, volume // 2 + 200)
    space0._uncommitted[0] = rogue
    problems = check_shard_disjointness(shards, volume)
    assert any("uncommitted range" in p for p in problems)
