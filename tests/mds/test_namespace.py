"""Tests for the MDS namespace and extent maps."""

import pytest

from repro.mds.extent import EXTENT_COMMITTED, Extent, layout_covers
from repro.mds.namespace import (
    FileExistsMdsError,
    FileNotFoundMdsError,
    Namespace,
)


def ext(fo, ln, vo):
    return Extent(file_offset=fo, length=ln, device_id=0, volume_offset=vo)


def test_create_and_lookup():
    ns = Namespace()
    meta = ns.create("a.txt", now=1.0)
    assert meta.file_id == 1
    assert ns.lookup("a.txt") is meta
    assert ns.get(meta.file_id) is meta
    assert len(ns) == 1
    assert meta.file_id in ns


def test_create_duplicate_rejected():
    ns = Namespace()
    ns.create("a", now=0.0)
    with pytest.raises(FileExistsMdsError):
        ns.create("a", now=1.0)


def test_missing_file():
    ns = Namespace()
    with pytest.raises(FileNotFoundMdsError):
        ns.get(42)
    with pytest.raises(FileNotFoundMdsError):
        ns.lookup("ghost")


def test_commit_extends_file():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    freed = ns.commit_extents(meta.file_id, [ext(0, 4096, 1000)], now=1.0)
    assert freed == []
    assert meta.size == 4096
    assert meta.mtime == 1.0
    assert meta.extents[0].state == EXTENT_COMMITTED
    ns.commit_extents(meta.file_id, [ext(4096, 4096, 5096)], now=2.0)
    assert meta.size == 8192
    assert len(meta.extents) == 2
    ns.check_invariants()


def test_commit_overwrite_frees_old_space():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(meta.file_id, [ext(0, 8192, 0)], now=1.0)
    freed = ns.commit_extents(meta.file_id, [ext(0, 8192, 100_000)], now=2.0)
    assert freed == [(0, 8192)]
    assert len(meta.extents) == 1
    assert meta.extents[0].volume_offset == 100_000


def test_commit_partial_overwrite_trims():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(meta.file_id, [ext(0, 12288, 0)], now=1.0)
    freed = ns.commit_extents(meta.file_id, [ext(4096, 4096, 50_000)], now=2.0)
    # Middle 4 KB displaced; head and tail survive.
    assert freed == [(4096, 4096)]
    offs = [(e.file_offset, e.length, e.volume_offset) for e in meta.extents]
    assert offs == [(0, 4096, 0), (4096, 4096, 50_000), (8192, 4096, 8192)]
    ns.check_invariants()


def test_layout_query():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(
        meta.file_id, [ext(0, 4096, 0), ext(8192, 4096, 9000)], now=1.0
    )
    hits = ns.layout(meta.file_id, 0, 4096)
    assert len(hits) == 1 and hits[0].volume_offset == 0
    hits = ns.layout(meta.file_id, 4096, 4096)  # hole
    assert hits == []
    hits = ns.layout(meta.file_id, 0, 12288)
    assert len(hits) == 2


def test_unlink_returns_volume_ranges():
    ns = Namespace()
    meta = ns.create("f", now=0.0)
    ns.commit_extents(
        meta.file_id, [ext(0, 4096, 100), ext(4096, 4096, 9000)], now=1.0
    )
    ranges = ns.unlink(meta.file_id)
    assert sorted(ranges) == [(100, 4096), (9000, 4096)]
    assert len(ns) == 0
    with pytest.raises(FileNotFoundMdsError):
        ns.get(meta.file_id)
    # Name can be reused after unlink.
    ns.create("f", now=2.0)


def test_all_committed_ranges():
    ns = Namespace()
    a = ns.create("a", now=0.0)
    b = ns.create("b", now=0.0)
    ns.commit_extents(a.file_id, [ext(0, 100, 0)], now=1.0)
    ns.commit_extents(b.file_id, [ext(0, 200, 500)], now=1.0)
    assert sorted(ns.all_committed_ranges()) == [(0, 100), (500, 200)]


def test_counters():
    ns = Namespace()
    meta = ns.create("a", now=0.0)
    ns.commit_extents(meta.file_id, [ext(0, 10, 0)], now=1.0)
    ns.unlink(meta.file_id)
    assert (ns.creates, ns.commits, ns.unlinks) == (1, 1, 1)


# -- extent helpers --------------------------------------------------------


def test_extent_validation():
    with pytest.raises(ValueError):
        Extent(file_offset=0, length=0, device_id=0, volume_offset=0)
    with pytest.raises(ValueError):
        Extent(file_offset=-1, length=1, device_id=0, volume_offset=0)
    with pytest.raises(ValueError):
        Extent(
            file_offset=0, length=1, device_id=0, volume_offset=0, state="x"
        )


def test_extent_committed_copy():
    e = ext(0, 10, 5)
    c = e.committed()
    assert c.state == EXTENT_COMMITTED
    assert e.state != EXTENT_COMMITTED
    assert c.volume_end == 15 and c.file_end == 10


def test_layout_covers():
    layout = [ext(0, 4096, 0), ext(4096, 4096, 9000)]
    assert layout_covers(layout, 0, 8192)
    assert layout_covers(layout, 2048, 4096)
    assert not layout_covers(layout, 0, 8193)
    assert not layout_covers([ext(0, 10, 0), ext(20, 10, 0)], 0, 30)
    assert layout_covers([], 5, 0)
