"""Idempotent replay at the MDS: reply cache, commit dedup, crash.

The two suppression layers have different durability by design:

- the per-op commit table is *durable* (journalled with the metadata it
  guards) and must survive an MDS crash/restart;
- the whole-message reply cache is *volatile* and is cleared by a crash,
  so non-idempotent namespace ops must tolerate post-crash re-execution
  (NFS UNCHECKED-create semantics).
"""

from repro.mds.extent import Extent
from repro.net.messages import (
    CommitOp,
    CommitPayload,
    CreatePayload,
    RpcMessage,
)
from repro.sim.events import Event

from tests.conftest import MiniCluster


def make_message(env, payload, kind, xid, client_id=0):
    return RpcMessage(
        kind=kind,
        payload=payload,
        client_id=client_id,
        reply_event=Event(env),
        send_time=env.now,
        xid=xid,
    )


def commit_message(env, file_id, extent, op_id, xid):
    return make_message(
        env,
        CommitPayload(ops=[CommitOp(file_id=file_id, extents=[extent], op_id=op_id)]),
        "commit",
        xid,
    )


def fresh_extent(cluster, length=4096):
    offset = cluster.space.alloc(length, client_id=0)
    return Extent(
        file_offset=0, length=length, device_id=0, volume_offset=offset
    )


def test_retried_commit_op_applies_exactly_once(env):
    cluster = MiniCluster(env)
    meta = cluster.namespace.create("f", 0.0)
    extent = fresh_extent(cluster)

    first = commit_message(env, meta.file_id, extent, op_id=1, xid=1)
    cluster.port.deliver(first)
    env.run(until=0.1)
    assert first.reply_event.value == [True]

    # Same op retried under a different xid (re-compounded after a
    # timeout): must be answered from the durable table, not re-applied
    # (a re-application would hit the defensive rule and return False).
    replay = commit_message(env, meta.file_id, extent, op_id=1, xid=2)
    cluster.port.deliver(replay)
    env.run(until=0.2)
    assert replay.reply_event.value == [True]
    assert cluster.mds.duplicate_commits_suppressed == 1
    assert cluster.mds.commit_apply_counts[(0, 1)] == 1


def test_reply_cache_suppresses_whole_message_replay(env):
    cluster = MiniCluster(env)

    first = make_message(env, CreatePayload(name="a"), "create", xid=7)
    cluster.port.deliver(first)
    env.run(until=0.1)

    retransmit = make_message(env, CreatePayload(name="a"), "create", xid=7)
    cluster.port.deliver(retransmit)
    env.run(until=0.2)

    assert cluster.namespace.creates == 1
    assert cluster.mds.duplicate_requests_suppressed == 1
    assert retransmit.reply_event.value is first.reply_event.value


def test_commit_dedup_survives_mds_crash(env):
    cluster = MiniCluster(env)
    meta = cluster.namespace.create("f", 0.0)
    extent = fresh_extent(cluster)

    first = commit_message(env, meta.file_id, extent, op_id=1, xid=1)
    cluster.port.deliver(first)
    env.run(until=0.1)
    assert first.reply_event.value == [True]

    cluster.mds.crash()
    cluster.mds.restart()
    assert cluster.mds.restarts == 1

    replay = commit_message(env, meta.file_id, extent, op_id=1, xid=2)
    cluster.port.deliver(replay)
    env.run(until=0.2)
    assert replay.reply_event.value == [True]
    assert cluster.mds.duplicate_commits_suppressed == 1
    assert cluster.mds.commit_apply_counts[(0, 1)] == 1


def test_reply_cache_is_volatile_but_create_replay_is_tolerated(env):
    cluster = MiniCluster(env)

    first = make_message(env, CreatePayload(name="a"), "create", xid=7)
    cluster.port.deliver(first)
    env.run(until=0.1)
    created = first.reply_event.value

    cluster.mds.crash()
    cluster.mds.restart()

    # The reply cache died with the server, so the retransmission is
    # re-executed -- and must land on the UNCHECKED-create path instead
    # of erroring out on the existing name.
    retransmit = make_message(env, CreatePayload(name="a"), "create", xid=7)
    cluster.port.deliver(retransmit)
    env.run(until=0.2)
    assert cluster.namespace.creates == 1
    assert retransmit.reply_event.value.file_id == created.file_id


def test_crash_loses_inbox_and_drops_arrivals_while_down(env):
    from repro.mds.server import MdsParameters

    cluster = MiniCluster(env, mds_params=MdsParameters(num_daemons=1))
    env.run(until=0.001)  # start the daemon; it parks on the inbox
    for i in range(4):
        cluster.port.deliver(
            make_message(env, CreatePayload(name=f"f{i}"), "create", xid=i + 1)
        )
    # The first message was handed to the parked daemon (in flight, lost
    # with the server's memory); the other three queue in the inbox.
    lost = cluster.mds.crash()
    assert lost == 3
    assert cluster.mds.requests_lost_in_crashes == 3

    late = make_message(env, CreatePayload(name="late"), "create", xid=9)
    cluster.port.deliver(late)
    assert cluster.port.dropped_while_down == 1

    cluster.mds.restart()
    again = make_message(env, CreatePayload(name="late"), "create", xid=10)
    cluster.port.deliver(again)
    env.run(until=0.1)
    assert again.reply_event.triggered
    assert cluster.namespace.creates == 1
