"""Tests for online lease-based orphan garbage collection."""

import pytest

from repro.mds.allocation import SpaceManager
from repro.mds.lease_gc import LeaseGarbageCollector
from repro.sim import Environment


def make_gc(env, lease=1.0, scan=0.25, volume=1 << 20):
    space = SpaceManager(volume_size=volume, num_groups=2, cursor_align=0)
    gc = LeaseGarbageCollector(
        env, space, lease_duration=lease, scan_interval=scan
    )
    return gc, space


def test_silent_client_reclaimed():
    env = Environment()
    gc, space = make_gc(env)
    space.alloc(4096, client_id=1)
    gc.renew(1)
    env.run(until=2.0)  # silence > lease
    assert space.uncommitted_bytes(1) == 0
    assert gc.bytes_reclaimed_total == 4096
    assert len(gc.events) == 1
    assert gc.events[0].client_id == 1


def test_active_client_never_reclaimed():
    env = Environment()
    gc, space = make_gc(env)
    space.alloc(4096, client_id=1)
    gc.renew(1)

    def heartbeat(env):
        while env.now < 5.0:
            yield env.timeout(0.5)
            gc.renew(1)

    env.process(heartbeat(env))
    env.run(until=5.0)
    assert space.uncommitted_bytes(1) == 4096
    assert gc.bytes_reclaimed_total == 0


def test_committed_space_survives_expiry():
    env = Environment()
    gc, space = make_gc(env)
    off = space.alloc(4096, client_id=1)
    space.note_committed(off, 4096)
    gc.renew(1)
    env.run(until=3.0)
    # Nothing uncommitted: expiry reclaims nothing, space stays allocated.
    assert gc.bytes_reclaimed_total == 0
    assert space.free_bytes == (1 << 20) - 4096


def test_mixed_clients_only_silent_one_collected():
    env = Environment()
    gc, space = make_gc(env)
    space.alloc(1000, client_id=1)
    space.alloc(2000, client_id=2)
    gc.renew(1)
    gc.renew(2)

    def keep_two_alive(env):
        while env.now < 3.0:
            yield env.timeout(0.4)
            gc.renew(2)

    env.process(keep_two_alive(env))
    env.run(until=3.0)
    assert space.uncommitted_bytes(1) == 0
    assert space.uncommitted_bytes(2) == 2000


def test_unknown_clients_ignored():
    env = Environment()
    gc, space = make_gc(env)
    env.run(until=3.0)  # no leases at all: nothing to do
    assert gc.events == []


def test_validation():
    env = Environment()
    space = SpaceManager(volume_size=1 << 20, num_groups=1)
    with pytest.raises(ValueError):
        LeaseGarbageCollector(env, space, lease_duration=0)
    with pytest.raises(ValueError):
        LeaseGarbageCollector(env, space, scan_interval=-1)


def test_integrated_with_mds_single_client_crash():
    """Crash ONE client of a running cluster: its delegated space is
    reclaimed online while the others keep working."""
    from repro.fs import ClusterConfig, RedbudCluster
    from repro.mds.server import MdsParameters
    from repro.workloads import XcdnWorkload

    config = ClusterConfig.space_delegation_config(
        num_clients=3,
        mds=MdsParameters(lease_duration=0.8, gc_scan_interval=0.2),
    )
    cluster = RedbudCluster(config, seed=5)
    wl = XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=5, threads_per_client=2
    )
    cluster.run_workload(wl, duration=1.0, warmup=0.1)
    victim = cluster.clients[0]
    had_uncommitted = cluster.space.uncommitted_bytes(0)
    assert had_uncommitted > 0  # it holds a delegated chunk remainder
    victim.crash()
    # Keep the others (and their MDS traffic) going past the lease.
    cluster.env.run(until=cluster.env.now + 3.0)
    assert cluster.space.uncommitted_bytes(0) == 0
    assert cluster.mds.gc is not None
    assert any(e.client_id == 0 for e in cluster.mds.gc.events)
    cluster.space.check_invariants()


def test_paused_collector_reclaims_nothing():
    env = Environment()
    gc, space = make_gc(env)
    space.alloc(4096, client_id=1)
    gc.renew(1)
    gc.pause()
    env.run(until=3.0)  # well past expiry, but the MDS is "down"
    assert gc.bytes_reclaimed_total == 0
    assert space.uncommitted_bytes(1) == 4096


def test_resume_grants_a_full_lease_grace():
    # NFSv4-style grace: clients could not renew while the server was
    # down, so nobody may be declared dead until a full lease duration
    # has passed after the restart.
    env = Environment()
    gc, space = make_gc(env)
    space.alloc(4096, client_id=1)
    gc.renew(1)
    gc.pause()
    env.run(until=3.0)
    gc.resume()
    env.run(until=3.5)  # within the post-restart grace
    assert gc.bytes_reclaimed_total == 0

    def heartbeat(env):
        while env.now < 6.0:
            yield env.timeout(0.4)
            gc.renew(1)

    env.process(heartbeat(env))
    env.run(until=6.0)
    assert gc.bytes_reclaimed_total == 0  # live client survived restart


def test_genuinely_dead_client_expires_again_after_grace():
    env = Environment()
    gc, space = make_gc(env)
    space.alloc(4096, client_id=1)
    gc.renew(1)
    gc.pause()
    env.run(until=3.0)
    gc.resume()
    env.run(until=5.0)  # grace over, still silent -> reclaimed
    assert gc.bytes_reclaimed_total == 4096
    assert space.uncommitted_bytes(1) == 0


def test_readmit_fires_once_on_next_renewal_after_reclaim():
    env = Environment()
    gc, space = make_gc(env)
    reclaims, readmits = [], []
    gc.on_reclaim = reclaims.append
    gc.on_readmit = readmits.append
    space.alloc(4096, client_id=1)
    gc.renew(1)
    env.run(until=2.0)  # silence > lease: reclaimed and fenced
    assert reclaims == [1]
    assert readmits == []  # not heard from yet
    gc.renew(1)  # first RPC after the fence re-establishes state
    assert readmits == [1]
    gc.renew(1)  # subsequent traffic does not re-fire
    assert readmits == [1]


def test_readmit_never_fires_without_a_reclaim():
    env = Environment()
    gc, space = make_gc(env)
    readmits = []
    gc.on_reclaim = lambda c: None
    gc.on_readmit = readmits.append
    space.alloc(4096, client_id=1)
    for _ in range(5):
        gc.renew(1)
    assert readmits == []


def test_refenced_client_readmitted_again():
    env = Environment()
    gc, space = make_gc(env)
    readmits = []
    gc.on_reclaim = lambda c: None
    gc.on_readmit = readmits.append
    space.alloc(4096, client_id=1)
    gc.renew(1)
    env.run(until=2.0)
    gc.renew(1)  # readmit #1
    space.alloc(4096, client_id=1)
    env.run(until=4.0)  # silent again -> second reclaim
    gc.renew(1)  # readmit #2
    assert readmits == [1, 1]
