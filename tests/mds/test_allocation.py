"""Tests for allocation groups and the space manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mds.allocation import AllocationGroup, OutOfSpaceError, SpaceManager


# -- AllocationGroup -----------------------------------------------------------


def test_ag_simple_alloc_free():
    ag = AllocationGroup(0, start=0, size=1000)
    a = ag.alloc(100)
    b = ag.alloc(100)
    assert a == 0 and b == 100  # next-fit is contiguous
    assert ag.free_bytes == 800
    ag.free(a, 100)
    ag.free(b, 100)
    assert ag.free_bytes == 1000
    ag.check_invariants()
    assert ag.free_extents() == [(0, 1000)]  # fully coalesced


def test_ag_next_fit_contiguity():
    """Back-to-back allocations get adjacent addresses (merge enabler)."""
    ag = AllocationGroup(0, start=0, size=10_000)
    offsets = [ag.alloc(50) for _ in range(10)]
    assert offsets == [i * 50 for i in range(10)]


def test_ag_wraps_when_tail_exhausted():
    ag = AllocationGroup(0, start=0, size=300)
    a = ag.alloc(100)
    b = ag.alloc(100)
    c = ag.alloc(100)
    assert (a, b, c) == (0, 100, 200)
    ag.free(a, 100)
    # Cursor is at 300; only the freed head fits now.
    d = ag.alloc(100)
    assert d == 0
    assert ag.free_bytes == 0


def test_ag_alloc_too_large_returns_none():
    ag = AllocationGroup(0, start=0, size=100)
    assert ag.alloc(101) is None
    ag.alloc(60)
    assert ag.alloc(60) is None  # enough bytes total... not anymore
    ag.check_invariants()


def test_ag_fragmented_but_sufficient():
    ag = AllocationGroup(0, start=0, size=300)
    a = ag.alloc(100)
    b = ag.alloc(100)
    c = ag.alloc(100)
    ag.free(a, 100)
    ag.free(c, 100)
    # 200 bytes free but no 150-contiguous extent.
    assert ag.alloc(150) is None
    assert ag.alloc(100) is not None
    ag.check_invariants()


def test_ag_double_free_detected():
    ag = AllocationGroup(0, start=0, size=100)
    a = ag.alloc(50)
    ag.free(a, 50)
    with pytest.raises(ValueError):
        ag.free(a, 50)


def test_ag_partial_overlap_free_detected():
    ag = AllocationGroup(0, start=0, size=100)
    ag.alloc(100)
    ag.free(0, 30)
    with pytest.raises(ValueError):
        ag.free(20, 30)  # overlaps [0, 30)


def test_ag_free_out_of_bounds():
    ag = AllocationGroup(0, start=100, size=100)
    with pytest.raises(ValueError):
        ag.free(0, 50)
    with pytest.raises(ValueError):
        ag.free(150, 100)


def test_ag_validation():
    with pytest.raises(ValueError):
        AllocationGroup(0, start=0, size=0)
    ag = AllocationGroup(0, start=0, size=100)
    with pytest.raises(ValueError):
        ag.alloc(0)
    with pytest.raises(ValueError):
        ag.free(0, 0)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 64)),
        max_size=80,
    )
)
def test_ag_never_double_allocates(ops):
    """Property: allocations never overlap; accounting always balances."""
    ag = AllocationGroup(0, start=0, size=1024)
    held = []  # (offset, length)
    for op, size in ops:
        if op == "alloc":
            offset = ag.alloc(size)
            if offset is not None:
                for h_off, h_len in held:
                    assert offset + size <= h_off or offset >= h_off + h_len, (
                        "allocator returned overlapping space"
                    )
                held.append((offset, size))
        elif held:
            idx = size % len(held)
            h_off, h_len = held.pop(idx)
            ag.free(h_off, h_len)
        ag.check_invariants()
    assert ag.free_bytes == 1024 - sum(ln for _, ln in held)


# -- SpaceManager --------------------------------------------------------------


def test_space_manager_locality_keeps_contiguity():
    sm = SpaceManager(volume_size=4000, num_groups=4, strategy="locality")
    offsets = [sm.alloc(10) for _ in range(5)]
    assert offsets == [0, 10, 20, 30, 40]


def test_space_manager_round_robin_rotates_ags():
    sm = SpaceManager(volume_size=4000, num_groups=4, strategy="round-robin")
    offsets = [sm.alloc(10) for _ in range(4)]
    ags = {off // 1000 for off in offsets}
    assert len(ags) == 4  # one allocation per AG


def test_space_manager_spills_to_next_group():
    sm = SpaceManager(volume_size=200, num_groups=2, strategy="locality")
    a = sm.alloc(80)
    b = sm.alloc(80)  # does not fit in AG0's remaining 20
    assert a == 0
    assert b == 100  # start of AG1


def test_space_manager_out_of_space():
    sm = SpaceManager(volume_size=100, num_groups=1)
    sm.alloc(100)
    with pytest.raises(OutOfSpaceError):
        sm.alloc(1)


def test_space_manager_free_routes_to_owner_ag():
    sm = SpaceManager(volume_size=2000, num_groups=2)
    a = sm.alloc(500)
    b = sm.alloc(600)  # spills to AG1
    sm.free(b, 600)
    sm.free(a, 500)
    assert sm.free_bytes == 2000
    sm.check_invariants()


def test_chunk_delegation_tracked_as_uncommitted():
    sm = SpaceManager(volume_size=1 << 20, num_groups=2)
    chunk = sm.alloc_chunk(4096, client_id=7)
    assert chunk.length == 4096
    assert sm.uncommitted_bytes(7) == 4096
    assert sm.chunk_delegations == 1


def test_commit_clears_uncommitted():
    sm = SpaceManager(volume_size=1 << 20, num_groups=2)
    off = sm.alloc(4096, client_id=3)
    assert sm.uncommitted_bytes(3) == 4096
    sm.note_committed(off, 4096)
    assert sm.uncommitted_bytes(3) == 0
    assert sm.uncommitted_bytes() == 0


def test_reclaim_uncommitted_frees_space():
    sm = SpaceManager(volume_size=10_000, num_groups=2)
    sm.alloc(1000, client_id=1)
    sm.alloc(2000, client_id=2)
    assert sm.free_bytes == 7000
    reclaimed = sm.reclaim_uncommitted()
    assert reclaimed == 3000
    assert sm.free_bytes == 10_000
    sm.check_invariants()


def test_reclaim_single_client():
    sm = SpaceManager(volume_size=10_000, num_groups=1)
    sm.alloc(1000, client_id=1)
    sm.alloc(2000, client_id=2)
    assert sm.reclaim_uncommitted(client_id=1) == 1000
    assert sm.uncommitted_bytes(2) == 2000


def test_release_uncommitted_validates_ownership():
    sm = SpaceManager(volume_size=10_000, num_groups=1)
    off = sm.alloc(1000, client_id=1)
    with pytest.raises(ValueError):
        sm.release_uncommitted(2, off, 1000)
    sm.release_uncommitted(1, off, 1000)
    assert sm.free_bytes == 10_000


def test_partial_commit_of_chunk():
    """Committing part of a delegated chunk leaves the rest reclaimable."""
    sm = SpaceManager(volume_size=1 << 20, num_groups=1)
    chunk = sm.alloc_chunk(8192, client_id=5)
    sm.note_committed(chunk.volume_offset, 4096)
    assert sm.uncommitted_bytes(5) == 4096
    assert sm.reclaim_uncommitted(5) == 4096
    sm.check_invariants()


def test_space_manager_validation():
    with pytest.raises(ValueError):
        SpaceManager(volume_size=100, num_groups=0)
    with pytest.raises(ValueError):
        SpaceManager(volume_size=100, num_groups=4, strategy="best-fit")
