"""Setuptools entry point (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
