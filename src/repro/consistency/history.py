"""Full-history checking of the namespace against the MDS oplog.

The recovery checker (:mod:`repro.consistency.invariant`) validates the
*final state* of a crashed-and-recovered cluster.  This module closes
the remaining gap: a state can be internally consistent yet wrong -- for
example, a commit applied twice can leave the extent map valid while the
space accounting quietly drifted, or a lost create can leave a namespace
that passes ``check_invariants`` but disagrees with what the MDS
acknowledged.

Two checks, both pure functions over recorded artefacts:

``check_history``
    Replays the MDS's durable oplog (``MetadataServer.oplog``: the
    journal analogue of every create / commit / unlink it applied) into
    a fresh shadow :class:`~repro.mds.namespace.Namespace` and compares
    it file-by-file against the live namespace.  Any divergence means
    the live state was mutated by something the journal never saw (or
    vice versa) -- a serializability violation in the sense of the
    paper's §V.A metadata protocol.

``check_commit_ordering``
    A trace-level restatement of the asynchronous ordered-writes rule
    (paper §III): for every update that was committed to the MDS, every
    ``writepage`` of that update must have *finished* before the first
    commit RPC carrying it was sent.  The ``unordered`` control mode
    violates this by construction; ``delayed`` must never.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.mds.extent import EXTENT_COMMITTED, Extent
from repro.mds.namespace import Namespace

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer

__all__ = ["HistoryReport", "check_history", "check_commit_ordering"]

#: One oplog entry, as appended by the MDS:
#: ``("create", file_id, name, t)`` / ``("unlink", file_id, t)`` /
#: ``("commit", file_id, ((file_off, length, vol_off), ...), t)``.
OplogEntry = _t.Tuple[_t.Any, ...]


@dataclass
class HistoryReport:
    """Outcome of replaying the oplog against the live namespace."""

    ops_replayed: int = 0
    violations: _t.List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "consistent" if self.consistent else "DIVERGED"
        return (
            f"history: {verdict}, {self.ops_replayed} ops replayed, "
            f"{len(self.violations)} violation(s)"
        )


def _extent_tuples(meta_extents: _t.Iterable[Extent]) -> _t.Tuple:
    return tuple(
        sorted(
            (e.file_offset, e.length, e.volume_offset)
            for e in meta_extents
        )
    )


def check_history(
    oplog: _t.Sequence[OplogEntry], namespace: Namespace
) -> HistoryReport:
    """Replay ``oplog`` into a shadow namespace and diff against live.

    The oplog is the MDS's journal analogue: it survives MDS crashes, so
    after recovery the live namespace must be *exactly* the state the
    journal reproduces.  File ids are assigned sequentially by the
    namespace, so replaying creates in order must reproduce the logged
    ids -- a mismatch means the journal itself is torn.
    """
    report = HistoryReport()
    # A shard's namespace strides its ids (shard k of N issues k+1,
    # k+1+N, ...); the shadow must stride identically or every replayed
    # create reports a spurious id skew.
    shadow = Namespace(
        first_id=namespace.first_id, id_step=namespace.id_step
    )
    for entry in oplog:
        kind = entry[0]
        if kind == "create":
            _, file_id, name, t = entry
            meta = shadow.create(name, t)
            if meta.file_id != file_id:
                report.violations.append(
                    f"oplog replay id skew: create({name!r}) produced "
                    f"file {meta.file_id}, journal says {file_id}"
                )
        elif kind == "commit":
            _, file_id, triples, t = entry
            if file_id not in shadow:
                report.violations.append(
                    f"oplog commit for file {file_id} precedes its create"
                )
                continue
            shadow.commit_extents(
                file_id,
                [
                    Extent(
                        file_offset=fo,
                        length=ln,
                        device_id=0,
                        volume_offset=vo,
                        state=EXTENT_COMMITTED,
                    )
                    for fo, ln, vo in triples
                ],
                t,
            )
        elif kind == "unlink":
            _, file_id, t = entry
            if file_id not in shadow:
                report.violations.append(
                    f"oplog unlink of unknown file {file_id}"
                )
                continue
            shadow.unlink(file_id)
        else:  # pragma: no cover - future-proofing
            report.violations.append(f"unknown oplog entry kind {kind!r}")
        report.ops_replayed += 1

    live_files = {m.file_id: m for m in namespace.all_files()}
    shadow_files = {m.file_id: m for m in shadow.all_files()}
    for file_id in sorted(shadow_files.keys() - live_files.keys()):
        report.violations.append(
            f"file {file_id} in journal replay but missing from live "
            f"namespace"
        )
    for file_id in sorted(live_files.keys() - shadow_files.keys()):
        report.violations.append(
            f"file {file_id} live but absent from journal replay"
        )
    for file_id in sorted(live_files.keys() & shadow_files.keys()):
        live, ghost = live_files[file_id], shadow_files[file_id]
        if live.name != ghost.name:
            report.violations.append(
                f"file {file_id} name skew: live {live.name!r} vs "
                f"journal {ghost.name!r}"
            )
        live_map = _extent_tuples(live.extents)
        ghost_map = _extent_tuples(ghost.extents)
        if live_map != ghost_map:
            report.violations.append(
                f"file {file_id} extent map diverged from journal "
                f"replay: live={live_map} journal={ghost_map}"
            )
    return report


def check_commit_ordering(tracer: "Tracer") -> _t.List[str]:
    """Ordered-writes rule over the causal trace (paper §III).

    For each update id that appears in a ``rpc:commit`` span, every
    ``writepage`` span carrying that update must be finished no later
    than the commit RPC's send time.  An unfinished writepage (the data
    never reached the array) with a sent commit is the exact failure the
    ordered-commit protocol exists to prevent.
    """
    violations: _t.List[str] = []
    first_commit: _t.Dict[int, float] = {}
    for span in tracer.spans:
        if span.name != "rpc:commit":
            continue
        for uid in span.update_ids:
            if uid not in first_commit or span.start < first_commit[uid]:
                first_commit[uid] = span.start
    if not first_commit:
        return violations
    for span in tracer.spans:
        if span.name != "writepage":
            continue
        for uid in span.update_ids:
            sent = first_commit.get(uid)
            if sent is None:
                continue
            if not span.finished:
                violations.append(
                    f"update {uid}: commit RPC sent at {sent:.6f} but "
                    f"writepage (started {span.start:.6f}) never "
                    f"completed"
                )
            elif span.end is not None and span.end > sent:
                violations.append(
                    f"update {uid}: commit RPC sent at {sent:.6f} "
                    f"before writepage completed at {span.end:.6f}"
                )
    return violations
