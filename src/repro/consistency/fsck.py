"""Offline consistency check: rebuild allocator state from metadata.

Recovery (:mod:`repro.consistency.recovery`) trusts the space manager's
own books and garbage-collects what they say is orphaned.  ``fsck`` is
the stronger, slower tool: it reconstructs what the free space *must*
be purely from the committed namespace — the only durable source of
truth — and cross-checks the allocator against it, extent by extent.
This is what an administrator would run after doubting the books.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.util.intervals import IntervalSet


@dataclass
class FsckReport:
    """Result of a full cross-check."""

    committed_bytes: int = 0
    free_bytes: int = 0
    uncommitted_bytes: int = 0
    #: Volume ranges the allocator thinks are free but metadata claims.
    lost_claimed: _t.List[_t.Tuple[int, int]] = field(default_factory=list)
    #: Volume bytes neither free nor committed nor tracked uncommitted.
    leaked_bytes: int = 0

    @property
    def clean(self) -> bool:
        return not self.lost_claimed and self.leaked_bytes == 0

    def summary(self) -> str:
        state = "CLEAN" if self.clean else "CORRUPT"
        return (
            f"fsck: {state} -- committed={self.committed_bytes} "
            f"free={self.free_bytes} uncommitted={self.uncommitted_bytes} "
            f"leaked={self.leaked_bytes} "
            f"free/claimed conflicts={len(self.lost_claimed)}"
        )


def fsck(namespace: Namespace, space: SpaceManager) -> FsckReport:
    """Cross-check the allocator against the committed namespace."""
    report = FsckReport()

    committed = IntervalSet()
    for offset, length in namespace.all_committed_ranges():
        committed.add(offset, offset + length)
    report.committed_bytes = committed.total()

    free = IntervalSet()
    for group in space.groups:
        for offset, length in group.free_extents():
            free.add(offset, offset + length)
    report.free_bytes = free.total()

    uncommitted = IntervalSet()
    for client_id in list(space._uncommitted):
        for start, end in space._uncommitted[client_id]:
            uncommitted.add(start, end)
    report.uncommitted_bytes = uncommitted.total()

    # 1. No committed extent may sit on space the allocator calls free.
    for start, end in committed:
        conflict = free.intersection(start, end)
        for c_start, c_end in conflict:
            report.lost_claimed.append((c_start, c_end - c_start))

    # 2. Every volume byte is exactly one of free / committed /
    #    uncommitted -- anything else leaked out of the books.
    accounted = (
        report.free_bytes
        + report.committed_bytes
        + report.uncommitted_bytes
    )
    report.leaked_bytes = max(0, space.volume_size - accounted)
    return report


def rebuild_free_space(
    namespace: Namespace, space: SpaceManager
) -> SpaceManager:
    """Construct a fresh allocator whose free space is exactly
    everything the committed namespace does not claim.

    This is the fsck *repair* step: orphaned and leaked space alike
    return to the free pool; only committed extents stay allocated.
    The returned manager preserves the original's geometry.
    """
    rebuilt = SpaceManager(
        volume_size=space.volume_size,
        num_groups=len(space.groups),
        strategy=space.strategy,
        device_id=space.device_id,
        cursor_align=space.groups[0].cursor_align if space.groups else 0,
        base_offset=space.base_offset,
    )
    for offset, length in namespace.all_committed_ranges():
        if not _claim(rebuilt, offset, length):
            # Two files claiming the same volume bytes, or an extent
            # outside the managed volume: not repairable by a space
            # rebuild.  (A real exception, not an assert: this must
            # fire under ``python -O`` too.)
            raise ValueError(
                f"committed extent [{offset}, {offset + length}) does "
                "not fit the rebuilt volume (overlapping or out of "
                "bounds)"
            )
    return rebuilt


def _claim(space: SpaceManager, offset: int, length: int) -> bool:
    """Mark ``[offset, offset+length)`` allocated in a fresh manager.

    Atomic: either the whole range is claimed, or nothing is -- a
    partial failure rolls back the pieces already taken, so a failed
    claim cannot corrupt the books of the manager being rebuilt.  A
    range not fully covered by the allocation groups (committed bytes in
    unmanaged space) is a failure, not a silent success.
    """
    pieces: _t.List[_t.Tuple[_t.Any, int, int]] = []
    covered = 0
    for group in space.groups:
        lo = max(offset, group.start)
        hi = min(offset + length, group.end)
        if lo < hi:
            got = group.alloc_scattered(hi - lo, origin=lo)
            if got != lo:
                # The exact range must have been free in a fresh manager.
                if got is not None:
                    group.free(got, hi - lo)
                for other, o_lo, o_len in pieces:
                    other.free(o_lo, o_len)
                return False
            pieces.append((group, lo, hi - lo))
            covered += hi - lo
    if covered != length:
        for other, o_lo, o_len in pieces:
            other.free(o_lo, o_len)
        return False
    return True
