"""Whole-cluster power-loss injection.

A crash at virtual time *t* freezes the world as it is at *t*:

- data writes already *serviced* by the array are stable; everything
  still queued in an elevator or in flight is lost;
- every client's volatile state (page cache, commit queue, delegated
  space bookkeeping) vanishes;
- the MDS's durable state is exactly the commits it has applied (the
  paper assumes MDS-local metadata durability -- its focus is the
  *distributed* ordering between client data and MDS metadata).

The resulting :class:`CrashState` is what the invariant checker and
recovery operate on.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.fs.redbud import RedbudCluster
from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.util.intervals import IntervalSet


@dataclass
class CrashState:
    """What survives a power loss.

    ``namespace``/``space`` are shard 0's durable state (the whole
    cluster's when unsharded); ``shards`` carries every shard's
    ``(namespace, space)`` pair so recovery and the oracle can scan a
    sharded deployment shard by shard.
    """

    crash_time: float
    namespace: Namespace
    space: SpaceManager
    stable: IntervalSet
    #: Commit records that were sitting in client queues (lost work).
    lost_commit_records: int
    #: Block requests that had not finished service at the crash: still
    #: queued in a client elevator *or* dispatched to a spindle and
    #: mid-service (lost data writes either way).
    lost_block_requests: int
    #: Per-shard durable state; always at least ``((namespace, space),)``.
    shards: _t.Tuple[_t.Tuple[Namespace, SpaceManager], ...] = ()
    #: Replicated storage group (``None`` when unreplicated).  When set,
    #: ``stable`` is the group's *recoverable* set -- ranges held by at
    #: least a data quorum of surviving members -- not the primary's raw
    #: stable set.
    group: _t.Optional[_t.Any] = None
    #: Witnessed-but-unsynced commit ops at the crash instant, as
    #: ``(client_id, op_id, file_id, extents)`` tuples (CURP replay).
    witnessed_ops: _t.Tuple[_t.Tuple[int, int, int, _t.Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.shards:
            self.shards = ((self.namespace, self.space),)


def crash_cluster(
    cluster: RedbudCluster, at_time: _t.Optional[float] = None
) -> CrashState:
    """Run the cluster to ``at_time`` (if given), then pull the plug."""
    env = cluster.env
    if at_time is not None:
        if at_time < env.now:
            raise ValueError(
                f"crash time {at_time} is in the past (now={env.now})"
            )
        env.run(until=at_time)

    # The stable/lost boundary is the *completion* of a request's disk
    # service (when the array adds it to the stable set): requests still
    # queued in a client's elevator AND requests already dispatched to a
    # spindle but mid-service are both lost -- a torn in-flight write
    # contributes nothing durable in this model.  Count both sides of
    # that boundary so `lost_block_requests` matches it exactly; merged
    # groups count once, consistent with `len(scheduler)`.
    lost_records = 0
    lost_requests = len(cluster.array.in_flight)
    for client in cluster.clients:
        lost_requests += len(client.blockdev.scheduler)
        if client.commit_queue is not None:
            lost_records += len(client.commit_queue)
        client.crash()

    # Replication changes what "stable" means at the crash boundary: a
    # range survives iff a data quorum of surviving group members holds
    # it.  Unreplicated clusters keep the primary's stable set.
    group = getattr(cluster, "group", None)
    stable = (
        cluster.array.stable
        if group is None
        else group.recoverable_set()
    )
    witnesses = getattr(cluster, "witnesses", None)

    return CrashState(
        crash_time=env.now,
        namespace=cluster.namespace,
        space=cluster.space,
        stable=stable,
        lost_commit_records=lost_records,
        lost_block_requests=lost_requests,
        group=group,
        witnessed_ops=(
            tuple(witnesses.unsynced_ops())
            if witnesses is not None
            else ()
        ),
        shards=tuple(
            (server.namespace, server.space) for server in metadata
        )
        # Hand-assembled test clusters have no metadata service; the
        # CrashState default covers them with the single (ns, space).
        if (metadata := getattr(cluster, "metadata", None)) is not None
        else (),
    )
