"""The ordered-writes invariant checker.

Given the MDS namespace (committed metadata) and the disk's stable-data
ranges (ground truth maintained by :class:`~repro.storage.disk.DiskArray`),
verify:

1. **no dangling metadata** -- every committed extent's volume range is
   fully stable on disk.  Ordered writes guarantee this across crashes;
   the ``unordered`` control mode violates it.
2. **orphan accounting** -- allocated-but-uncommitted space ("orphan"
   data, acceptable per the paper) is reported so recovery can reclaim
   it.
3. **no extent overlap** -- two committed extents never claim the same
   volume bytes (allocator/commit bookkeeping cross-check).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.util.intervals import IntervalSet


@dataclass(frozen=True)
class Violation:
    """One invariant breach."""

    kind: str
    file_id: int
    detail: str


@dataclass
class ConsistencyReport:
    """Outcome of a full consistency check."""

    violations: _t.List[Violation] = field(default_factory=list)
    files_checked: int = 0
    extents_checked: int = 0
    committed_bytes: int = 0
    orphan_bytes: int = 0

    @property
    def consistent(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "CONSISTENT" if self.consistent else "INCONSISTENT"
        return (
            f"{state}: {self.files_checked} files, "
            f"{self.extents_checked} extents, "
            f"{self.committed_bytes} committed bytes, "
            f"{self.orphan_bytes} orphan bytes, "
            f"{len(self.violations)} violations"
        )


def check_ordered_writes(
    namespace: Namespace,
    stable: IntervalSet,
    space: _t.Optional[SpaceManager] = None,
) -> ConsistencyReport:
    """Check the post-crash state for ordered-writes consistency."""
    report = ConsistencyReport()
    claimed = IntervalSet()

    for meta in namespace.all_files():
        report.files_checked += 1
        for extent in meta.extents:
            report.extents_checked += 1
            report.committed_bytes += extent.length
            lo, hi = extent.volume_offset, extent.volume_end
            if not stable.contains(lo, hi):
                missing = (hi - lo) - stable.intersection(lo, hi).total()
                report.violations.append(
                    Violation(
                        kind="dangling-metadata",
                        file_id=meta.file_id,
                        detail=(
                            f"extent [{lo}, {hi}) of file "
                            f"{meta.file_id} ({meta.name!r}) has "
                            f"{missing} unstable bytes"
                        ),
                    )
                )
            if claimed.overlaps(lo, hi):
                report.violations.append(
                    Violation(
                        kind="extent-overlap",
                        file_id=meta.file_id,
                        detail=f"extent [{lo}, {hi}) overlaps another file's",
                    )
                )
            claimed.add(lo, hi)

    if space is not None:
        report.orphan_bytes = space.uncommitted_bytes()
    return report
