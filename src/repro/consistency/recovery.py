"""Post-crash recovery: verify, then garbage-collect orphans.

"Even if the system crashes in between the two sub-operations, the file
system can still be kept consistent as the 'orphan' data cannot be
accessed without corresponding metadata.  They can be recycled with
garbage collection." (§I)

Recovery here does exactly that: check the ordered-writes invariant,
then reclaim every allocated-but-uncommitted volume range (orphans from
in-flight updates and unused delegated chunks), returning the space
manager to a state where free + committed covers the volume again.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.consistency.crash import CrashState
from repro.consistency.invariant import (
    ConsistencyReport,
    check_ordered_writes,
)


@dataclass
class RecoveryReport:
    """Outcome of the recovery pass."""

    pre_check: ConsistencyReport
    orphan_bytes_reclaimed: int
    post_check: ConsistencyReport

    @property
    def recovered_consistent(self) -> bool:
        return self.post_check.consistent


def recover(state: CrashState) -> RecoveryReport:
    """Scan, GC orphans, re-verify."""
    pre = check_ordered_writes(state.namespace, state.stable, state.space)
    reclaimed = state.space.reclaim_uncommitted()
    post = check_ordered_writes(state.namespace, state.stable, state.space)
    # After GC the allocator must balance: free space + committed extents
    # account for the whole volume.
    committed = sum(
        length for _, length in state.namespace.all_committed_ranges()
    )
    expected_free = state.space.volume_size - committed
    if state.space.free_bytes != expected_free:
        post.violations.append(
            _accounting_violation(state.space.free_bytes, expected_free)
        )
    return RecoveryReport(
        pre_check=pre,
        orphan_bytes_reclaimed=reclaimed,
        post_check=post,
    )


def _accounting_violation(free_bytes: int, expected: int):
    from repro.consistency.invariant import Violation

    return Violation(
        kind="space-accounting",
        file_id=-1,
        detail=(
            f"free bytes {free_bytes} != expected {expected} after orphan GC"
        ),
    )
