"""Post-crash recovery: verify, then garbage-collect orphans.

"Even if the system crashes in between the two sub-operations, the file
system can still be kept consistent as the 'orphan' data cannot be
accessed without corresponding metadata.  They can be recycled with
garbage collection." (§I)

Recovery here does exactly that: check the ordered-writes invariant,
then reclaim every allocated-but-uncommitted volume range (orphans from
in-flight updates and unused delegated chunks), returning the space
manager to a state where free + committed covers the volume again.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.consistency.crash import CrashState
from repro.consistency.invariant import (
    ConsistencyReport,
    check_ordered_writes,
)


@dataclass
class RecoveryReport:
    """Outcome of the recovery pass."""

    pre_check: ConsistencyReport
    orphan_bytes_reclaimed: int
    post_check: ConsistencyReport

    @property
    def recovered_consistent(self) -> bool:
        return self.post_check.consistent


def recover(state: CrashState) -> RecoveryReport:
    """Scan, GC orphans, re-verify -- shard by shard.

    Each metadata shard owns a disjoint namespace partition and a
    disjoint volume slice, so recovery of one shard never touches
    another's state; the per-shard reports are merged into one.  With a
    single shard this is exactly the unsharded recovery pass.
    """
    pres: _t.List[ConsistencyReport] = []
    posts: _t.List[ConsistencyReport] = []
    reclaimed = 0
    for namespace, space in state.shards:
        pres.append(check_ordered_writes(namespace, state.stable, space))
        reclaimed += space.reclaim_uncommitted()
        post = check_ordered_writes(namespace, state.stable, space)
        # After GC the shard's allocator must balance: free space +
        # committed extents account for its whole volume slice.
        committed = sum(
            length for _, length in namespace.all_committed_ranges()
        )
        expected_free = space.volume_size - committed
        if space.free_bytes != expected_free:
            post.violations.append(
                _accounting_violation(space.free_bytes, expected_free)
            )
        posts.append(post)
    return RecoveryReport(
        pre_check=_merge_reports(pres),
        orphan_bytes_reclaimed=reclaimed,
        post_check=_merge_reports(posts),
    )


def _merge_reports(
    reports: _t.List[ConsistencyReport],
) -> ConsistencyReport:
    if len(reports) == 1:
        return reports[0]
    merged = ConsistencyReport()
    for report in reports:
        merged.violations.extend(report.violations)
        merged.files_checked += report.files_checked
        merged.extents_checked += report.extents_checked
        merged.committed_bytes += report.committed_bytes
        merged.orphan_bytes += report.orphan_bytes
    return merged


def _accounting_violation(free_bytes: int, expected: int):
    from repro.consistency.invariant import Violation

    return Violation(
        kind="space-accounting",
        file_id=-1,
        detail=(
            f"free bytes {free_bytes} != expected {expected} after orphan GC"
        ),
    )
