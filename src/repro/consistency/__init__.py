"""Ordered-writes semantics: invariant checking, crashes, recovery.

The whole point of ordered writes (§I, §III) is this invariant: *metadata
at the MDS never references data that is not stable on disk*.  Violating
it leaves the file system describing "invalid or not available data".
The weaker direction -- data on disk without metadata ("orphan" data) --
is acceptable and reclaimed by garbage collection.

- :mod:`repro.consistency.invariant` -- the checker for both directions.
- :mod:`repro.consistency.crash` -- whole-cluster power-loss injection.
- :mod:`repro.consistency.recovery` -- post-crash scan + orphan GC.
- :mod:`repro.consistency.history` -- oplog replay + trace-level
  ordering checks (the full-history oracle ``repro.check`` judges with).
"""

from repro.consistency.crash import CrashState, crash_cluster
from repro.consistency.fsck import FsckReport, fsck, rebuild_free_space
from repro.consistency.history import (
    HistoryReport,
    check_commit_ordering,
    check_history,
)
from repro.consistency.invariant import (
    ConsistencyReport,
    Violation,
    check_ordered_writes,
)
from repro.consistency.recovery import RecoveryReport, recover

__all__ = [
    "ConsistencyReport",
    "CrashState",
    "FsckReport",
    "HistoryReport",
    "RecoveryReport",
    "Violation",
    "check_commit_ordering",
    "check_history",
    "check_ordered_writes",
    "crash_cluster",
    "fsck",
    "rebuild_free_space",
    "recover",
]
