"""The file namespace: inodes and committed extent maps.

The namespace is the MDS-side source of truth.  An extent appears here
only once its commit RPC has been applied -- which, under ordered writes,
must happen only after the extent's data is stable on disk.  The
consistency checker (:mod:`repro.consistency.invariant`) verifies exactly
that relationship.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.mds.extent import EXTENT_COMMITTED, Extent
from repro.util.intervals import IntervalSet


class FileNotFoundMdsError(KeyError):
    """Lookup of a nonexistent file id or name."""


class FileExistsMdsError(ValueError):
    """Create of an already-existing name."""


@dataclass
class FileMeta:
    """One file's metadata record."""

    file_id: int
    name: str
    ctime: float
    mtime: float
    size: int = 0
    #: Committed extents, kept sorted by file offset, non-overlapping.
    extents: _t.List[Extent] = field(default_factory=list)

    def committed_bytes(self) -> int:
        return sum(e.length for e in self.extents)


class Namespace:
    """Flat file namespace (directories are out of the paper's scope)."""

    def __init__(self, first_id: int = 1, id_step: int = 1) -> None:
        if first_id < 1 or id_step < 1:
            raise ValueError("first_id and id_step must be >= 1")
        self._files: _t.Dict[int, FileMeta] = {}
        self._by_name: _t.Dict[str, int] = {}
        #: File-id arithmetic progression.  A sharded deployment gives
        #: shard ``k`` of ``N`` the namespace ``Namespace(first_id=k+1,
        #: id_step=N)`` so ids never collide across shards and the owner
        #: of any id is recoverable as ``(file_id - 1) % N``.
        self.first_id = first_id
        self.id_step = id_step
        self._next_id = first_id
        self.creates = 0
        self.commits = 0
        self.unlinks = 0

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._files

    # -- operations ---------------------------------------------------------

    def create(self, name: str, now: float) -> FileMeta:
        if name in self._by_name:
            raise FileExistsMdsError(name)
        meta = FileMeta(
            file_id=self._next_id, name=name, ctime=now, mtime=now
        )
        self._next_id += self.id_step
        self._files[meta.file_id] = meta
        self._by_name[name] = meta.file_id
        self.creates += 1
        return meta

    def get(self, file_id: int) -> FileMeta:
        meta = self._files.get(file_id)
        if meta is None:
            raise FileNotFoundMdsError(file_id)
        return meta

    def lookup(self, name: str) -> FileMeta:
        file_id = self._by_name.get(name)
        if file_id is None:
            raise FileNotFoundMdsError(name)
        return self._files[file_id]

    def commit_extents(
        self, file_id: int, extents: _t.Iterable[Extent], now: float
    ) -> _t.List[_t.Tuple[int, int]]:
        """Apply a metadata commit; returns displaced volume ranges.

        New extents replace any committed extents they overlap in file
        space (an overwrite); the volume ranges they displace are returned
        so the space manager can free them.  An overwrite *in place*
        (committing a mapping that is already present, e.g. rewriting
        data through an existing layout) displaces itself -- such ranges
        are still live and are excluded from the freed list.
        """
        meta = self.get(file_id)
        extents = list(extents)
        displaced = IntervalSet()
        for extent in extents:
            for offset, length in self._insert_extent(meta, extent):
                displaced.add(offset, offset + length)
        # A displaced range is only *free* if nothing maps it after the
        # whole batch: an in-place rewrite displaces itself but stays
        # live, and when one batch carries two versions of the same file
        # range (a rewrite deduped into a pending commit record), the
        # superseded extent's space genuinely frees -- excluding every
        # batch extent here (rather than every surviving mapping) used
        # to leak it.
        for extent in meta.extents:
            displaced.remove(extent.volume_offset, extent.volume_end)
        meta.mtime = now
        meta.size = max(
            (e.file_end for e in meta.extents), default=meta.size
        )
        self.commits += 1
        return [(start, end - start) for start, end in displaced]

    def _insert_extent(
        self, meta: FileMeta, new: Extent
    ) -> _t.List[_t.Tuple[int, int]]:
        freed: _t.List[_t.Tuple[int, int]] = []
        kept: _t.List[Extent] = []
        for old in meta.extents:
            if old.file_end <= new.file_offset or old.file_offset >= new.file_end:
                kept.append(old)
                continue
            # Overlap: trim `old` around `new`, freeing the displaced bytes.
            overlap_lo = max(old.file_offset, new.file_offset)
            overlap_hi = min(old.file_end, new.file_end)
            freed.append(
                (
                    old.volume_offset + (overlap_lo - old.file_offset),
                    overlap_hi - overlap_lo,
                )
            )
            if old.file_offset < new.file_offset:
                kept.append(
                    Extent(
                        file_offset=old.file_offset,
                        length=new.file_offset - old.file_offset,
                        device_id=old.device_id,
                        volume_offset=old.volume_offset,
                        state=EXTENT_COMMITTED,
                    )
                )
            if old.file_end > new.file_end:
                cut = new.file_end - old.file_offset
                kept.append(
                    Extent(
                        file_offset=new.file_end,
                        length=old.file_end - new.file_end,
                        device_id=old.device_id,
                        volume_offset=old.volume_offset + cut,
                        state=EXTENT_COMMITTED,
                    )
                )
        kept.append(new.committed())
        kept.sort(key=lambda e: e.file_offset)
        meta.extents = kept
        return freed

    def mapping_matches(self, file_id: int, extent: Extent) -> bool:
        """Whether ``extent``'s mapping is already committed byte-for-byte.

        True means a commit of this extent is an *in-place rewrite*: the
        data was overwritten through the existing layout and no metadata
        change is needed.
        """
        meta = self._files.get(file_id)
        if meta is None:
            return False
        need = extent.file_offset
        end = extent.file_end
        for old in meta.extents:  # sorted by file offset
            if old.file_end <= need:
                continue
            if old.file_offset > need:
                return False  # hole in the committed mapping
            # `old` covers file offset `need`; the volume must agree.
            if old.volume_offset + (need - old.file_offset) != (
                extent.volume_offset + (need - extent.file_offset)
            ):
                return False
            need = min(old.file_end, end)
            if need >= end:
                return True
        return False

    def layout(
        self, file_id: int, offset: int, length: int
    ) -> _t.List[Extent]:
        """Committed extents intersecting ``[offset, offset+length)``."""
        meta = self.get(file_id)
        end = offset + length
        return [
            e
            for e in meta.extents
            if e.file_offset < end and e.file_end > offset
        ]

    def unlink(self, file_id: int) -> _t.List[_t.Tuple[int, int]]:
        """Remove a file; returns its volume ranges for freeing."""
        meta = self.get(file_id)
        del self._files[file_id]
        del self._by_name[meta.name]
        self.unlinks += 1
        return [(e.volume_offset, e.length) for e in meta.extents]

    # -- whole-tree introspection (checker / recovery) ----------------------

    def all_files(self) -> _t.Iterator[FileMeta]:
        return iter(self._files.values())

    def all_committed_ranges(self) -> _t.Iterator[_t.Tuple[int, int]]:
        """(volume offset, length) of every committed extent."""
        for meta in self._files.values():
            for extent in meta.extents:
                yield extent.volume_offset, extent.length

    def check_invariants(self) -> None:
        for meta in self._files.values():
            prev_end = -1
            for extent in meta.extents:
                assert extent.state == EXTENT_COMMITTED, (
                    f"uncommitted extent in namespace: {extent}"
                )
                assert extent.file_offset >= prev_end, (
                    f"overlapping extents in file {meta.file_id}"
                )
                prev_end = extent.file_end
            assert meta.size >= (
                meta.extents[-1].file_end if meta.extents else 0
            )
