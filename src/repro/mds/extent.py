"""Extent, layout and chunk value types.

The paper (§V.A): "The mapping of file logical address to the physical
address is represented in the form of <file offset, length, device id,
volume offset, state>, which is called an extent.  A file may have one or
more extents ...  The collection of extents in a certain range of a file
is called a layout."
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, replace

#: Extent allocated but whose metadata is not yet durable at the MDS.
EXTENT_NEW = "new"
#: Extent whose metadata commit has been applied at the MDS.
EXTENT_COMMITTED = "committed"


@dataclass(frozen=True)
class Extent:
    """One contiguous mapping of file bytes to volume bytes."""

    file_offset: int
    length: int
    device_id: int
    volume_offset: int
    state: str = EXTENT_NEW

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"extent length must be positive: {self}")
        if self.file_offset < 0 or self.volume_offset < 0:
            raise ValueError(f"negative offsets: {self}")
        if self.state not in (EXTENT_NEW, EXTENT_COMMITTED):
            raise ValueError(f"bad state {self.state!r}")

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length

    @property
    def volume_end(self) -> int:
        return self.volume_offset + self.length

    def committed(self) -> "Extent":
        """A copy of this extent in the committed state."""
        return replace(self, state=EXTENT_COMMITTED)


@dataclass(frozen=True)
class Chunk:
    """A contiguous span of volume space delegated to one client."""

    volume_offset: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0 or self.volume_offset < 0:
            raise ValueError(f"bad chunk {self}")

    @property
    def volume_end(self) -> int:
        return self.volume_offset + self.length


Layout = _t.List[Extent]


def layout_covers(layout: Layout, offset: int, length: int) -> bool:
    """Whether ``layout`` maps every byte of ``[offset, offset+length)``."""
    need = offset
    end = offset + length
    for extent in sorted(layout, key=lambda e: e.file_offset):
        if extent.file_offset > need:
            return False
        if extent.file_end > need:
            need = extent.file_end
        if need >= end:
            return True
    return need >= end
