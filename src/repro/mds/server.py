"""The metadata server's RPC service model.

The MDS runs a configurable number of **server daemon threads** (the
x-axis of Fig. 7).  Each daemon loops: take a request from the shared
inbox, spend CPU parsing and processing it, apply the state change under
the namespace lock, and send the reply.

Two costs shape Fig. 7:

- *per-message overhead* (parse, dispatch, reply construction) is paid
  once per RPC regardless of how many operations it carries -- this is
  what compound RPCs amortise;
- *multi-thread contention*: the apply phase serialises on a namespace
  lock, and every daemon's CPU phases slow slightly as more daemons run
  concurrently (cache-line and lock-handoff costs).  This produces the
  paper's observation that 16 daemons perform slightly *worse* than 8.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.mds.allocation import SpaceManager
from repro.mds.extent import Chunk, Extent
from repro.mds.namespace import FileExistsMdsError, Namespace
from repro.net.link import Link
from repro.net.messages import (
    CommitOp,
    CommitPayload,
    CreatePayload,
    DelegationPayload,
    GetattrPayload,
    LayoutGetPayload,
    ReleasePayload,
    RpcMessage,
    UnlinkPayload,
)
from repro.net.rpc import RpcServerPort
from repro.core.kernel.process import Interrupt
from repro.core.kernel.resources import Resource

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


@dataclass(frozen=True)
class MdsParameters:
    """CPU-cost model of the metadata server."""

    #: Number of server daemon threads (Fig. 7 sweeps 1 / 8 / 16).
    num_daemons: int = 8
    #: Per-message parse/dispatch/reply CPU, seconds.  Message framing
    #: dominates op processing -- which is what makes compounding pay.
    svc_message: float = 110e-6
    #: Per-operation processing CPU (lookup, B+ tree work), seconds.
    svc_op: float = 50e-6
    #: Per-operation critical-section (apply) CPU, seconds.
    svc_apply: float = 20e-6
    #: Fractional slowdown of CPU phases per additional *active* daemon
    #: (lock handoffs).
    contention_factor: float = 0.035
    #: Fractional slowdown per provisioned daemon beyond the first
    #: (cache pressure, scheduler overhead) -- why 16 daemons end up
    #: slightly worse than 8 in Fig. 7.
    pool_overhead: float = 0.006
    #: Size of a delegated space chunk (§V.D uses 16 MB).
    delegation_chunk: int = 16 * 1024 * 1024
    #: Online orphan GC: reclaim a silent client's uncommitted space
    #: after this many seconds without an RPC from it.  ``None`` (the
    #: default here) disables the collector; cluster configurations turn
    #: it on.  Recovery-time GC works either way.
    lease_duration: _t.Optional[float] = None
    #: Lease-GC scan interval, seconds.
    gc_scan_interval: float = 5.0
    #: Metadata shards.  ``1`` is the paper's single-MDS deployment and
    #: is byte-identical to the pre-sharding code path; ``N > 1`` builds
    #: N independent :class:`MetadataServer` instances behind a
    #: client-side router (:mod:`repro.mds.sharding`).
    shards: int = 1


@dataclass
class LayoutReply:
    """Reply to a layout-get: mapped extents plus optional delegation."""

    extents: _t.List[Extent]
    chunk: _t.Optional[Chunk] = None


class MetadataServer:
    """The Redbud MDS: namespace + space manager behind an RPC port."""

    def __init__(
        self,
        env: "Effects",
        params: MdsParameters,
        namespace: Namespace,
        space: SpaceManager,
        port: RpcServerPort,
        downlinks: _t.Dict[int, Link],
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.params = params
        self.namespace = namespace
        self.space = space
        self.port = port
        self.downlinks = downlinks
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self._lock = Resource(env, capacity=1)
        self._active = 0
        self.requests_processed = 0
        self.ops_processed = 0
        self.stale_commits = 0
        self.busy_time = 0.0
        #: Per-request service-time quantile histogram (receive ->
        #: reply, seconds).  Always on -- pure bookkeeping, like
        #: ``busy_time`` -- so per-shard tails are reportable without
        #: arming the tracer; adopted into the metrics registry when an
        #: observability bundle is attached.
        from repro.obs.registry import Histogram

        self.service_hist = Histogram("mds.service_time")
        #: True between :meth:`crash` and :meth:`restart`.
        self.down = False
        self.restarts = 0
        self.requests_lost_in_crashes = 0
        #: Exactly-once commit application.  Keyed ``(client_id, op_id)``;
        #: holds the op's original result so a retransmitted commit gets
        #: the same answer without re-applying.  Modelled as *durable*
        #: (journalled with the metadata it guards, so it survives MDS
        #: restarts) -- see DESIGN.md "Failure model".
        self._commit_results: _t.Dict[_t.Tuple[int, int], bool] = {}
        #: Kill switch for the durable dedup table above.  Only the
        #: crash-schedule checker flips this off, to prove the harness
        #: detects the double-apply bug the table exists to prevent.
        self.commit_dedup_enabled = True
        #: Audit trail for tests: how many times each commit op was
        #: actually applied (must never exceed 1).
        self.commit_apply_counts: _t.Dict[_t.Tuple[int, int], int] = {}
        #: Durable namespace operation log (journal analogue): every
        #: applied create/commit/unlink in apply order, for history
        #: replay by ``repro.consistency.history``.  Survives crashes
        #: like the metadata it describes.
        self.oplog: _t.List[_t.Tuple[_t.Any, ...]] = []
        self.duplicate_commits_suppressed = 0
        #: NFS-style duplicate request cache for whole messages, keyed
        #: ``(client_id, xid)``.  Volatile (cleared on crash): commit
        #: safety never depends on it -- the durable per-op table above
        #: and the defensive commit rule do.
        self._reply_cache: _t.Dict[_t.Tuple[int, int], _t.Any] = {}
        self.duplicate_requests_suppressed = 0
        from repro.mds.lease_gc import LeaseGarbageCollector

        self.gc: _t.Optional[LeaseGarbageCollector] = None
        if params.lease_duration is not None:
            self.gc = LeaseGarbageCollector(
                env,
                space,
                lease_duration=params.lease_duration,
                scan_interval=params.gc_scan_interval,
                obs=obs,
            )
        self._daemons = self._spawn_daemons()

    def _spawn_daemons(self) -> _t.List[_t.Any]:
        return [
            self.env.process(
                self._daemon_loop(i), name=f"mds-daemon-{i}"
            )
            for i in range(self.params.num_daemons)
        ]

    # -- crash / restart -----------------------------------------------------

    def crash(self) -> int:
        """Fail-stop the MDS: lose the inbox, kill the daemon threads.

        Queued and in-flight (being parsed/applied) requests vanish with
        the server's memory; senders recover them via RPC retry.  The
        commit duplicate-suppression table and all applied metadata are
        journalled and survive.  Returns the number of inbox requests
        lost.
        """
        if self.down:
            return 0
        self.down = True
        lost = self.port.fail()
        self.requests_lost_in_crashes += lost
        for proc in self._daemons:
            if proc.is_alive:
                proc.interrupt("mds-crash")
        self._daemons = []
        self._active = 0
        # The duplicate *request* cache is in-memory state; it dies here.
        self._reply_cache.clear()
        if self.gc is not None:
            self.gc.pause()
        if self.obs is not None:
            self.obs.tracer.instant(
                "mds_crash", "fault", node="mds", actor="mds",
                requests_lost=lost,
            )
            self.obs.registry.counter("faults.mds_crashes").inc()
        return lost

    def restart(self) -> None:
        """Bring a crashed MDS back: accept requests, respawn daemons."""
        if not self.down:
            return
        self.down = False
        self.restarts += 1
        self.port.resume()
        self._daemons = self._spawn_daemons()
        if self.gc is not None:
            self.gc.resume()
        if self.obs is not None:
            self.obs.tracer.instant(
                "mds_restart", "fault", node="mds", actor="mds",
            )
            self.obs.registry.counter("faults.mds_restarts").inc()

    # -- daemon loop ---------------------------------------------------------

    def _daemon_loop(self, daemon_id: int) -> _t.Generator:
        try:
            yield from self._daemon_iterations(daemon_id)
        except Interrupt:
            # MDS crash: this thread dies where it stands.  Any held or
            # queued namespace-lock request is released/withdrawn by the
            # ``with`` context manager on unwind.
            return

    def _daemon_iterations(self, daemon_id: int) -> _t.Generator:
        while True:
            message: RpcMessage = yield self.port.next_request()
            self._active += 1
            start = self.env.now
            if self.gc is not None:
                self.gc.renew(message.client_id)

            ops = message.op_count()
            scale = self._contention_scale()
            handle_span = None
            if self.obs is not None:
                handle_span = self.obs.tracer.begin(
                    "mds_handle",
                    "mds",
                    node="mds",
                    actor=f"mds-daemon-{daemon_id}",
                    parent=message.trace_span_id,
                    update_ids=message.trace_ids,
                    kind=message.kind,
                    ops=ops,
                    queue_wait=start - message.arrive_time,
                )
            # Parse + per-op processing (parallel across daemons).
            yield self.env.timeout(
                (self.params.svc_message + ops * self.params.svc_op) * scale
            )
            # Apply under the namespace lock (serialised).
            with self._lock.request() as req:
                yield req
                yield self.env.timeout(
                    ops * self.params.svc_apply * self._contention_scale()
                )
                result = self._apply(message)

            self._active -= 1
            self.requests_processed += 1
            self.ops_processed += ops
            self.busy_time += self.env.now - start
            self.service_hist.observe(self.env.now - start)
            if handle_span is not None:
                self.obs.tracer.end(handle_span)
            # Socket-backed deployments register transports with the
            # port and carry no modelled downlinks at all.
            downlink = self.downlinks.get(message.client_id)
            self.port.reply(message, result, downlink)

    def _contention_scale(self) -> float:
        extra_active = max(0, self._active - 1)
        extra_pool = max(0, self.params.num_daemons - 1)
        return (
            1.0
            + self.params.contention_factor * extra_active
            + self.params.pool_overhead * extra_pool
        )

    # -- operation semantics -------------------------------------------------

    def _apply(self, message: RpcMessage) -> _t.Any:
        # Duplicate request cache: a retransmission of a request we
        # already served gets the original answer instead of a second
        # application (xid 0 = hand-built message, no caching).
        cache_key = (message.client_id, message.xid)
        if message.xid and cache_key in self._reply_cache:
            self.duplicate_requests_suppressed += 1
            if self.obs is not None:
                self.obs.registry.counter("mds.duplicate_requests").inc()
            return self._reply_cache[cache_key]
        result = self._apply_payload(message)
        if message.xid:
            self._reply_cache[cache_key] = result
        return result

    def _apply_payload(self, message: RpcMessage) -> _t.Any:
        payload = message.payload
        now = self.env.now
        if isinstance(payload, CreatePayload):
            try:
                meta = self.namespace.create(payload.name, now)
                self.oplog.append(
                    ("create", meta.file_id, payload.name, now)
                )
                return meta
            except FileExistsMdsError:
                # NFS UNCHECKED-create semantics: a retransmitted create
                # whose original applied but whose reply-cache entry was
                # lost (reply dropped + cache evicted by a crash, or the
                # duplicate raced the original through the inbox) must
                # succeed with the existing file, not error out.
                self.duplicate_requests_suppressed += 1
                if self.obs is not None:
                    self.obs.registry.counter(
                        "mds.duplicate_requests"
                    ).inc()
                return self.namespace.lookup(payload.name)
        if isinstance(payload, GetattrPayload):
            if payload.file_id not in self.namespace:
                return None  # stat of a just-deleted file
            return self.namespace.get(payload.file_id)
        if isinstance(payload, LayoutGetPayload):
            if payload.file_id not in self.namespace:
                return LayoutReply(extents=[])  # raced an unlink
            return self._layout_get(message.client_id, payload)
        if isinstance(payload, CommitPayload):
            return self._commit(payload, message.client_id)
        if isinstance(payload, DelegationPayload):
            chunk = self.space.alloc_chunk(
                payload.chunk_size, client_id=message.client_id
            )
            if chunk is not None and self.obs is not None:
                self.obs.tracer.instant(
                    "delegation_grant", "mds", node="mds", actor="mds",
                    client=message.client_id, bytes=chunk.length,
                )
                self.obs.registry.counter("mds.delegation_grants").inc()
            return chunk
        if isinstance(payload, ReleasePayload):
            for offset, length in payload.chunks:
                self.space.release_uncommitted(
                    message.client_id, offset, length
                )
            return None
        if isinstance(payload, UnlinkPayload):
            if payload.file_id not in self.namespace:
                return None  # double unlink race
            self.oplog.append(("unlink", payload.file_id, now))
            for offset, length in self.namespace.unlink(payload.file_id):
                self.space.note_committed(offset, length)
                self.space.free(offset, length)
            return None
        raise TypeError(f"unknown payload {payload!r}")

    def _layout_get(
        self, client_id: int, payload: LayoutGetPayload
    ) -> LayoutReply:
        extents = self.namespace.layout(
            payload.file_id, payload.offset, payload.length
        )
        if payload.allocate:
            extents = extents + self._allocate_holes(
                client_id, payload.file_id, payload.offset, payload.length,
                extents, payload.scattered,
            )
        chunk = None
        if payload.delegation_hint:
            chunk = self.space.alloc_chunk(
                self.params.delegation_chunk, client_id=client_id
            )
            if chunk is not None and self.obs is not None:
                self.obs.tracer.instant(
                    "delegation_grant", "mds", node="mds", actor="mds",
                    client=client_id, bytes=chunk.length,
                )
                self.obs.registry.counter("mds.delegation_grants").inc()
        return LayoutReply(extents=extents, chunk=chunk)

    def _allocate_holes(
        self,
        client_id: int,
        file_id: int,
        offset: int,
        length: int,
        existing: _t.List[Extent],
        scattered: bool = False,
    ) -> _t.List[Extent]:
        """Allocate backing space for unmapped parts of the range."""
        new_extents: _t.List[Extent] = []
        cursor = offset
        end = offset + length
        for extent in sorted(existing, key=lambda e: e.file_offset):
            if extent.file_offset > cursor:
                hole = min(extent.file_offset, end) - cursor
                if hole > 0:
                    new_extents.append(
                        self._alloc_extent(
                            client_id, file_id, cursor, hole, scattered
                        )
                    )
            cursor = max(cursor, extent.file_end)
            if cursor >= end:
                break
        if cursor < end:
            new_extents.append(
                self._alloc_extent(
                    client_id, file_id, cursor, end - cursor, scattered
                )
            )
        return new_extents

    def _alloc_extent(
        self,
        client_id: int,
        file_id: int,
        file_offset: int,
        length: int,
        scattered: bool = False,
    ) -> Extent:
        volume_offset = self.space.alloc(
            length, client_id=client_id, scattered=scattered
        )
        return Extent(
            file_offset=file_offset,
            length=length,
            device_id=self.space.device_id,
            volume_offset=volume_offset,
        )

    def _commit(
        self, payload: CommitPayload, client_id: int
    ) -> _t.List[bool]:
        results = []
        for op in payload.ops:
            # Exactly-once: a commit op retried (alone or re-compounded
            # with different neighbours) after its first application is
            # answered from the durable table, never re-applied.
            dedup_key = None
            if op.op_id is not None:
                dedup_key = (client_id, op.op_id)
                if (
                    self.commit_dedup_enabled
                    and dedup_key in self._commit_results
                ):
                    self.duplicate_commits_suppressed += 1
                    if self.obs is not None:
                        self.obs.tracer.instant(
                            "commit_replay_suppressed", "fault",
                            node="mds", actor="mds",
                            update_ids=op.trace_ids,
                            op_id=op.op_id, client=client_id,
                        )
                        self.obs.registry.counter(
                            "mds.duplicate_commits"
                        ).inc()
                    results.append(self._commit_results[dedup_key])
                    continue
            result = self._commit_op(op, client_id)
            if dedup_key is not None:
                self._commit_results[dedup_key] = result
                self.commit_apply_counts[dedup_key] = (
                    self.commit_apply_counts.get(dedup_key, 0) + 1
                )
                if self.obs is not None:
                    # The dedup-table write is journalled with the
                    # metadata it guards (DESIGN §8).
                    self.obs.tracer.instant(
                        "journal_write", "mds", node="mds", actor="mds",
                        update_ids=op.trace_ids,
                        op_id=op.op_id, client=client_id,
                    )
                    self.obs.registry.counter("mds.journal_writes").inc()
            results.append(result)
        return results

    def replay_witnessed(
        self,
        client_id: int,
        op_id: int,
        file_id: int,
        extents: _t.Sequence[_t.Any],
    ) -> bool:
        """Crash recovery: apply one witnessed-but-unsynced commit op.

        CURP witness replay.  A fast-path commit acknowledged off the
        witnesses may not have reached the MDS before a whole-cluster
        crash; recovery replays the witnesses' unsynced entries here.
        The durable ``(client, op_id)`` result table deduplicates ops
        whose ordered sync *did* land pre-crash (the exactly-once
        oracle audits ``commit_apply_counts`` either way).  Returns
        True when the op was applied, False when dedup suppressed it.
        """
        dedup_key = (client_id, op_id)
        if (
            self.commit_dedup_enabled
            and dedup_key in self._commit_results
        ):
            self.duplicate_commits_suppressed += 1
            return False
        op = CommitOp(file_id=file_id, extents=list(extents), op_id=op_id)
        result = self._commit_op(op, client_id)
        self._commit_results[dedup_key] = result
        self.commit_apply_counts[dedup_key] = (
            self.commit_apply_counts.get(dedup_key, 0) + 1
        )
        return True

    def _commit_op(self, op: _t.Any, client_id: int) -> bool:
        if op.file_id not in self.namespace:
            # The file was unlinked while this commit was queued or in
            # flight (delete racing a delayed commit).  Drop the
            # commit; reclaim only extents this client still holds
            # uncommitted (an in-place re-commit's space was already
            # freed by the unlink itself).
            for extent in op.extents:
                self.space.reclaim_if_uncommitted(
                    client_id, extent.volume_offset, extent.length
                )
            return False
        # Defensive commit rule: apply an extent only when it is the
        # committing client's own fresh allocation; skip in-place
        # rewrites (mapping already correct); drop stale mappings
        # (e.g. a concurrent writer displaced them meanwhile).
        applied = []
        for extent in op.extents:
            if self.space.holds_uncommitted(
                client_id, extent.volume_offset, extent.length
            ):
                applied.append(extent)
            elif not self.namespace.mapping_matches(op.file_id, extent):
                self.stale_commits += 1
        if applied:
            freed = self.namespace.commit_extents(
                op.file_id, applied, self.env.now
            )
            for extent in applied:
                self.space.note_committed(
                    extent.volume_offset, extent.length
                )
            for offset, length in freed:
                self.space.free(offset, length)
            self.oplog.append(
                (
                    "commit",
                    op.file_id,
                    tuple(
                        (e.file_offset, e.length, e.volume_offset)
                        for e in applied
                    ),
                    self.env.now,
                )
            )
            if self.obs is not None:
                self.obs.tracer.instant(
                    "commit_apply", "mds", node="mds", actor="mds",
                    update_ids=op.trace_ids,
                    file_id=op.file_id, client=client_id,
                    extents=len(applied),
                )
                self.obs.registry.counter("mds.commit_applies").inc()
        return True

    # -- introspection -----------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return self.port.queue_length

    @property
    def active_daemons(self) -> int:
        return self._active

    @property
    def utilization(self) -> float:
        if self.env.now <= 0:
            return 0.0
        return self.busy_time / (self.env.now * self.params.num_daemons)
