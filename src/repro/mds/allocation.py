"""Physical space management: allocation groups and the space manager.

Per the paper (§V.A): "All storage devices are divided into allocation
groups (AGs).  An allocation group is the management unit of storage
resources.  Each AG has its own B+ tree to allocate and deallocate
physical space.  Multiple AGs provide parallel allocations.  Across AGs,
flexible allocation strategies can be applied ... The default is
round-robin."

Within an AG, allocation is *next-fit*: a cursor sweeps forward so that
back-to-back allocations receive adjacent volume addresses.  This is the
"allocation policy prefers to allocate new space nearby" of §III.B and it
is precisely the property that lets bursts of delayed-commit writes merge
-- and that concurrent clients destroy by interleaving, motivating space
delegation (§IV.A).

Two cross-AG strategies are provided:

- ``locality`` (default): stay in the current AG until it cannot satisfy
  a request, preserving cursor continuity across allocations;
- ``round-robin``: rotate AGs on every allocation (the paper's default
  AG policy taken literally); exposed for the ablation benchmark, it
  destroys inter-allocation contiguity entirely.

The space manager also tracks *uncommitted* allocations (space handed to
clients whose metadata commit has not yet arrived) so that post-crash
recovery can garbage-collect orphans.
"""

from __future__ import annotations

import typing as _t

from repro.mds.btree import BPlusTree
from repro.mds.extent import Chunk
from repro.util.rng import StreamRNG
from repro.util.intervals import IntervalSet


class OutOfSpaceError(Exception):
    """No allocation group can satisfy the request."""


class AllocationGroup:
    """Free-space management for one contiguous slice of the volume."""

    def __init__(
        self,
        ag_id: int,
        start: int,
        size: int,
        order: int = 64,
        cursor_align: int = 0,
    ) -> None:
        if size <= 0 or start < 0:
            raise ValueError(f"bad AG extent start={start} size={size}")
        self.ag_id = ag_id
        self.start = start
        self.size = size
        #: offset -> length of each free extent.
        self._free: BPlusTree[int, int] = BPlusTree(order=order)
        self._free.insert(start, size)
        self.free_bytes = size
        self._cursor = start
        #: Post-allocation cursor alignment: real extent allocators keep
        #: per-file alignment (stripe/extent hints), so back-to-back
        #: small files are *not* byte-contiguous on disk.  The skipped
        #: gap stays free and is reused after the cursor wraps.
        self.cursor_align = cursor_align

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, offset: int) -> bool:
        return self.start <= offset < self.end

    # -- allocation -------------------------------------------------------

    def alloc(self, length: int) -> _t.Optional[int]:
        """Next-fit allocate ``length`` bytes; returns offset or ``None``."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        if length > self.free_bytes:
            return None

        offset = self._alloc_from(self._cursor, length)
        if offset is None and self._cursor > self.start:
            offset = self._alloc_from(self.start, length)  # wrap
        if offset is not None:
            self._cursor = offset + length
            if self.cursor_align > 1:
                self._cursor = (
                    -(-self._cursor // self.cursor_align)
                ) * self.cursor_align
            self.free_bytes -= length
        return offset

    def alloc_scattered(
        self, length: int, origin: int
    ) -> _t.Optional[int]:
        """Allocate from the first fit at/after an arbitrary ``origin``.

        Used to model an *aged* namespace: callers pass random origins so
        files land scattered over the volume instead of packed at the
        allocation cursor.  Does not move the next-fit cursor.
        """
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        if length > self.free_bytes:
            return None
        origin = min(max(origin, self.start), self.end - 1)
        offset = self._alloc_from(origin, length)
        if offset is None:
            offset = self._alloc_from(self.start, length)
        if offset is not None:
            self.free_bytes -= length
        return offset

    def _alloc_from(self, origin: int, length: int) -> _t.Optional[int]:
        """First free extent at/after ``origin`` that fits; split it."""
        # The extent straddling origin may have a usable tail.
        floor = self._free.floor_item(origin)
        if floor is not None:
            f_off, f_len = floor
            if f_off + f_len >= origin + length:
                self._free.delete(f_off)
                if origin > f_off:
                    self._free.insert(f_off, origin - f_off)
                tail = (f_off + f_len) - (origin + length)
                if tail > 0:
                    self._free.insert(origin + length, tail)
                return origin
        item = self._free.ceiling_item(origin)
        while item is not None:
            f_off, f_len = item
            if f_len >= length:
                self._free.delete(f_off)
                if f_len > length:
                    self._free.insert(f_off + length, f_len - length)
                return f_off
            item = self._free.ceiling_item(f_off + 1)
        return None

    def free(self, offset: int, length: int) -> None:
        """Return ``[offset, offset+length)`` to the free pool, coalescing."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        if not (self.start <= offset and offset + length <= self.end):
            raise ValueError(
                f"free [{offset}, {offset + length}) outside AG {self.ag_id}"
            )
        new_off, new_len = offset, length

        floor = self._free.floor_item(offset)
        if floor is not None:
            f_off, f_len = floor
            if f_off + f_len > offset:
                raise ValueError(
                    f"double free: [{offset}, {offset + length}) overlaps "
                    f"free extent [{f_off}, {f_off + f_len})"
                )
            if f_off + f_len == offset:  # coalesce left
                self._free.delete(f_off)
                new_off, new_len = f_off, f_len + new_len

        ceiling = self._free.ceiling_item(offset)
        if ceiling is not None:
            c_off, c_len = ceiling
            if c_off < offset + length:
                raise ValueError(
                    f"double free: [{offset}, {offset + length}) overlaps "
                    f"free extent [{c_off}, {c_off + c_len})"
                )
            if c_off == offset + length:  # coalesce right
                self._free.delete(c_off)
                new_len += c_len

        self._free.insert(new_off, new_len)
        self.free_bytes += length

    # -- introspection -------------------------------------------------------

    def free_extents(self) -> _t.List[_t.Tuple[int, int]]:
        return list(self._free.items())

    def largest_free_extent(self) -> int:
        return max((ln for _, ln in self._free.items()), default=0)

    def check_invariants(self) -> None:
        """Free extents must be in-bounds, disjoint, coalesced, and sum up."""
        self._free.check_invariants()
        total = 0
        prev_end: _t.Optional[int] = None
        for off, ln in self._free.items():
            assert ln > 0
            assert self.start <= off and off + ln <= self.end, "out of bounds"
            if prev_end is not None:
                assert off > prev_end, "free extents overlap or touch"
            prev_end = off + ln
            total += ln
        assert total == self.free_bytes, (
            f"free_bytes {self.free_bytes} != extent sum {total}"
        )


class SpaceManager:
    """Cross-AG allocation with orphan (uncommitted space) tracking."""

    def __init__(
        self,
        volume_size: int,
        num_groups: int = 4,
        strategy: str = "locality",
        device_id: int = 0,
        rng: _t.Optional["StreamRNG"] = None,
        cursor_align: int = 64 * 1024,
        base_offset: int = 0,
    ) -> None:
        if num_groups <= 0:
            raise ValueError(f"num_groups must be positive, got {num_groups}")
        if volume_size < num_groups:
            raise ValueError("volume too small for the AG count")
        if strategy not in ("locality", "round-robin", "random"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if base_offset < 0:
            raise ValueError(f"base_offset must be >= 0, got {base_offset}")
        self.volume_size = volume_size
        self.strategy = strategy
        self.device_id = device_id
        #: First volume byte this manager owns.  A sharded metadata
        #: service carves the volume into disjoint slices, one manager
        #: per shard, each covering ``[base_offset, base_offset +
        #: volume_size)``.
        self.base_offset = base_offset
        ag_size = volume_size // num_groups
        self.groups = [
            AllocationGroup(
                i, base_offset + i * ag_size, ag_size,
                cursor_align=cursor_align,
            )
            for i in range(num_groups)
        ]
        self._current = 0
        self._rng = rng if rng is not None else StreamRNG(0).stream("alloc")
        #: Space allocated but not yet covered by committed metadata,
        #: per client, for post-crash orphan collection.
        self._uncommitted: _t.Dict[int, IntervalSet] = {}
        self.allocations = 0
        self.chunk_delegations = 0

    # -- allocation -------------------------------------------------------------

    def alloc(
        self,
        length: int,
        client_id: _t.Optional[int] = None,
        scattered: bool = False,
    ) -> int:
        """Allocate ``length`` bytes; returns the volume offset.

        ``scattered`` draws the placement from a random position in a
        random AG -- used to seed benchmark namespaces as if the file
        system had aged, so "random reads over the whole namespace"
        really reach across the volume.

        Raises :class:`OutOfSpaceError` when no AG can satisfy it.
        """
        if scattered:
            start_idx = self._rng.integers(0, len(self.groups))
            for hop in range(len(self.groups)):
                group = self.groups[(start_idx + hop) % len(self.groups)]
                origin = group.start + self._rng.integers(0, group.size)
                offset = group.alloc_scattered(length, origin)
                if offset is not None:
                    self.allocations += 1
                    if client_id is not None:
                        self.note_uncommitted(client_id, offset, length)
                    return offset
            raise OutOfSpaceError(f"cannot allocate {length} bytes")
        order = self._group_order()
        for idx in order:
            offset = self.groups[idx].alloc(length)
            if offset is not None:
                self._current = idx
                self.allocations += 1
                if self.strategy == "round-robin":
                    self._current = (idx + 1) % len(self.groups)
                elif self.strategy == "random":
                    self._current = self._rng.integers(
                        0, len(self.groups)
                    )
                if client_id is not None:
                    self.note_uncommitted(client_id, offset, length)
                return offset
        raise OutOfSpaceError(f"cannot allocate {length} bytes")

    def alloc_chunk(self, chunk_size: int, client_id: int) -> Chunk:
        """Delegate a contiguous chunk to ``client_id`` (§IV.A)."""
        offset = self.alloc(chunk_size, client_id=client_id)
        self.chunk_delegations += 1
        return Chunk(volume_offset=offset, length=chunk_size)

    def free(self, offset: int, length: int) -> None:
        for group in self.groups:
            if group.contains(offset):
                if offset + length > group.end:
                    raise ValueError("free range spans AG boundary")
                group.free(offset, length)
                return
        raise ValueError(f"offset {offset} outside every AG")

    def _group_order(self) -> _t.List[int]:
        n = len(self.groups)
        return [(self._current + i) % n for i in range(n)]

    # -- orphan tracking -----------------------------------------------------------

    def note_uncommitted(
        self, client_id: int, offset: int, length: int
    ) -> None:
        self._uncommitted.setdefault(client_id, IntervalSet()).add(
            offset, offset + length
        )

    def note_committed(self, offset: int, length: int) -> None:
        for ranges in self._uncommitted.values():
            ranges.remove(offset, offset + length)

    def release_uncommitted(
        self, client_id: int, offset: int, length: int
    ) -> None:
        """A client voluntarily returns unused uncommitted space."""
        ranges = self._uncommitted.get(client_id)
        if ranges is None or not ranges.contains(offset, offset + length):
            raise ValueError(
                f"client {client_id} does not hold uncommitted "
                f"[{offset}, {offset + length})"
            )
        ranges.remove(offset, offset + length)
        self._free_spanning(offset, offset + length)

    def holds_uncommitted(
        self, client_id: int, offset: int, length: int
    ) -> bool:
        """Whether this client owns the whole range as uncommitted space."""
        ranges = self._uncommitted.get(client_id)
        return ranges is not None and ranges.contains(offset, offset + length)

    def reclaim_if_uncommitted(
        self, client_id: int, offset: int, length: int
    ) -> bool:
        """Free the range only if this client still holds it uncommitted.

        Used when a commit loses a race with an unlink: freshly allocated
        extents must be reclaimed, but extents that were re-commits of
        already-committed mappings were freed by the unlink itself.
        """
        ranges = self._uncommitted.get(client_id)
        if ranges is None or not ranges.contains(offset, offset + length):
            return False
        ranges.remove(offset, offset + length)
        self._free_spanning(offset, offset + length)
        return True

    def uncommitted_bytes(self, client_id: _t.Optional[int] = None) -> int:
        if client_id is not None:
            ranges = self._uncommitted.get(client_id)
            return ranges.total() if ranges else 0
        return sum(r.total() for r in self._uncommitted.values())

    def reclaim_uncommitted(
        self, client_id: _t.Optional[int] = None
    ) -> int:
        """Free all orphaned allocations (post-crash GC); returns bytes."""
        reclaimed = 0
        targets = (
            [client_id]
            if client_id is not None
            else list(self._uncommitted.keys())
        )
        for cid in targets:
            ranges = self._uncommitted.pop(cid, None)
            if ranges is None:
                continue
            for start, end in ranges:
                # A range may span AG boundaries if a chunk straddled one;
                # split at boundaries defensively.
                self._free_spanning(start, end)
                reclaimed += end - start
        return reclaimed

    def _free_spanning(self, start: int, end: int) -> None:
        for group in self.groups:
            lo = max(start, group.start)
            hi = min(end, group.end)
            if lo < hi:
                group.free(lo, hi - lo)

    # -- introspection ----------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return sum(g.free_bytes for g in self.groups)

    def check_invariants(self) -> None:
        for group in self.groups:
            group.check_invariants()
