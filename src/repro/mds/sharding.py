"""Sharded metadata service: N independent MDS instances behind a router.

The paper's Delayed Commit Protocol is defined against a single
metadata server.  Scaling it out keeps the protocol untouched and
partitions the *state* instead: shard ``k`` of ``N`` owns

- a namespace slice (file ids ``k+1, k+1+N, k+1+2N, ...`` -- an
  arithmetic progression, so the owner of any file id is recoverable
  as ``(file_id - 1) % N`` with no directory lookup),
- a disjoint volume slice ``[k * volume_size // N, (k+1) * ...)``
  with its own allocation groups,
- its own RPC port, daemon pool, commit dedup cache, and lease GC.

Ordered writes are a per-file property, and a file lives entirely on
one shard, so commits against different shards proceed independently
without weakening the paper's consistency argument.  Cross-shard state
is *provably* disjoint -- :func:`check_shard_disjointness` is the
oracle's new invariant.

Routing is deterministic and client-side: creates route by a stable
hash of the file name (pluggable policy), every other operation by the
file id's owner shard.  Retransmitted RPCs reuse the same message and
therefore the same shard, preserving server-side dedup.
"""

from __future__ import annotations

import typing as _t

from repro.mds.server import MetadataServer
from repro.net.messages import (
    CommitPayload,
    CreatePayload,
    DelegationPayload,
    GetattrPayload,
    LayoutGetPayload,
    ReleasePayload,
    RpcMessage,
    UnlinkPayload,
)
from repro.util.intervals import IntervalSet

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mds.allocation import SpaceManager
    from repro.mds.namespace import Namespace
    from repro.net.link import Link
    from repro.net.rpc import RpcServerPort
    from repro.core.effects import Effects

__all__ = [
    "ShardRouter",
    "ShardRoutingTransport",
    "ShardedMetadataService",
    "check_shard_disjointness",
    "fnv1a_64",
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a: stable across processes and Python versions.

    ``hash(str)`` is salted per interpreter (PYTHONHASHSEED), so it can
    never be a routing function in a deterministic simulator.
    """
    acc = _FNV_OFFSET
    for byte in data:
        acc ^= byte
        acc = (acc * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return acc


def _hash_name_policy(name: str, num_shards: int) -> int:
    return fnv1a_64(name.encode("utf-8")) % num_shards


#: Named placement policies for :class:`ShardRouter`.
PLACEMENT_POLICIES: _t.Dict[str, _t.Callable[[str, int], int]] = {
    "hash-name": _hash_name_policy,
}


class ShardRouter:
    """Deterministic file-handle -> shard mapping.

    ``policy`` is either a name from :data:`PLACEMENT_POLICIES` or a
    callable ``(name, num_shards) -> shard``.  The file-id progression
    (see module docstring) makes :meth:`shard_of_file` pure arithmetic.
    """

    def __init__(
        self,
        num_shards: int,
        policy: _t.Union[
            str, _t.Callable[[str, int], int]
        ] = "hash-name",
    ) -> None:
        if num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards
        if callable(policy):
            self.policy_name = getattr(policy, "__name__", "custom")
            self._policy = policy
        else:
            if policy not in PLACEMENT_POLICIES:
                raise ValueError(
                    f"unknown placement policy {policy!r}; choose from "
                    f"{sorted(PLACEMENT_POLICIES)}"
                )
            self.policy_name = policy
            self._policy = PLACEMENT_POLICIES[policy]

    def shard_for_name(self, name: str) -> int:
        """Placement decision for a new file handle."""
        shard = self._policy(name, self.num_shards)
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"policy {self.policy_name!r} routed {name!r} to "
                f"shard {shard} of {self.num_shards}"
            )
        return shard

    def shard_of_file(self, file_id: int) -> int:
        """Owner shard of an existing file id."""
        return (file_id - 1) % self.num_shards

    def shard_for_message(self, message: RpcMessage) -> int:
        """Destination shard of an outbound RPC."""
        payload = message.payload
        if isinstance(payload, CreatePayload):
            return self.shard_for_name(payload.name)
        if isinstance(
            payload, (GetattrPayload, LayoutGetPayload, UnlinkPayload)
        ):
            return self.shard_of_file(payload.file_id)
        if isinstance(payload, CommitPayload):
            # The commit daemon batches per shard, so one op's owner
            # speaks for the whole compound.
            return self.shard_of_file(payload.ops[0].file_id)
        if isinstance(payload, (DelegationPayload, ReleasePayload)):
            return payload.shard
        raise TypeError(
            f"cannot route payload type {type(payload).__name__}"
        )


class ShardRoutingTransport:
    """Client-side transport fanning one uplink out to N shard ports.

    Drop-in for :class:`repro.net.rpc.RpcTransport`: same ``uplink`` /
    ``downlink`` attributes, same ``send_request`` / ``send_reply``
    surface, but delivery targets the destination shard's port.  The
    wire model is unchanged -- one NIC per client, shared by all shard
    conversations, exactly like the single-MDS transport.
    """

    def __init__(
        self,
        env: "Effects",
        uplink: "Link",
        downlink: "Link",
        ports: _t.Sequence["RpcServerPort"],
        router: ShardRouter,
    ) -> None:
        if len(ports) != router.num_shards:
            raise ValueError(
                f"{len(ports)} ports for {router.num_shards} shards"
            )
        self.env = env
        self.uplink = uplink
        self.downlink = downlink
        self.ports = list(ports)
        self.router = router
        #: Compatibility alias: "the" port is shard 0's.
        self.port = self.ports[0]

    def register_client(self, client_id: int) -> None:
        """Attach this client's reply path on every shard port."""
        for port in self.ports:
            port.register(client_id, self)

    def send_request(self, message: RpcMessage) -> None:
        port = self.ports[self.router.shard_for_message(message)]
        delivery = self.uplink.send(message.request_size())
        delivery.callbacks.append(
            lambda _ev, msg=message, p=port: p.deliver(msg)
        )

    def send_reply(self, message: RpcMessage) -> None:
        from repro.net.rpc import _deliver_reply

        delivery = self.downlink.send(message.reply_size())
        delivery.callbacks.append(
            lambda _ev, msg=message: _deliver_reply(msg)
        )


class ShardedMetadataService:
    """Owns the shard servers and aggregates their state for the cluster.

    The cluster-facing API mirrors a single :class:`MetadataServer`
    closely enough that observability gauges and the fault injector do
    not care how many shards exist; anything genuinely per-shard is
    reachable through :meth:`shard` / iteration.
    """

    def __init__(
        self, servers: _t.Sequence[MetadataServer], router: ShardRouter
    ) -> None:
        if len(servers) != router.num_shards:
            raise ValueError(
                f"{len(servers)} servers for {router.num_shards} shards"
            )
        self.servers = list(servers)
        self.router = router

    @property
    def num_shards(self) -> int:
        return len(self.servers)

    def shard(self, index: int) -> MetadataServer:
        return self.servers[index]

    def __iter__(self) -> _t.Iterator[MetadataServer]:
        return iter(self.servers)

    def __len__(self) -> int:
        return len(self.servers)

    # -- fault surface ------------------------------------------------------

    def crash(self, shard: _t.Optional[int] = None) -> int:
        """Crash one shard (or all of them); returns requests lost."""
        targets = (
            self.servers if shard is None else [self.servers[shard]]
        )
        return sum(server.crash() for server in targets)

    def restart(self, shard: _t.Optional[int] = None) -> None:
        targets = (
            self.servers if shard is None else [self.servers[shard]]
        )
        for server in targets:
            server.restart()

    def set_commit_dedup_enabled(self, enabled: bool) -> None:
        """Fan the seeded-bug switch out to every shard."""
        for server in self.servers:
            server.commit_dedup_enabled = enabled

    # -- aggregated stats ---------------------------------------------------

    def _sum(self, attr: str) -> int:
        return sum(getattr(server, attr) for server in self.servers)

    @property
    def requests_processed(self) -> int:
        return self._sum("requests_processed")

    @property
    def ops_processed(self) -> int:
        return self._sum("ops_processed")

    @property
    def restarts(self) -> int:
        return self._sum("restarts")

    @property
    def requests_lost_in_crashes(self) -> int:
        return self._sum("requests_lost_in_crashes")

    @property
    def duplicate_commits_suppressed(self) -> int:
        return self._sum("duplicate_commits_suppressed")

    @property
    def duplicate_requests_suppressed(self) -> int:
        return self._sum("duplicate_requests_suppressed")

    @property
    def stale_commits(self) -> int:
        return self._sum("stale_commits")

    @property
    def queue_length(self) -> int:
        return sum(server.queue_length for server in self.servers)

    @property
    def utilization(self) -> float:
        if not self.servers:
            return 0.0
        return max(server.utilization for server in self.servers)

    def per_shard_stats(self) -> _t.List[_t.Dict[str, _t.Any]]:
        """One record per shard for reporting (``collect_extras``)."""
        return [
            {
                "shard": index,
                "mds_requests": server.requests_processed,
                "mds_ops": server.ops_processed,
                "mds_restarts": server.restarts,
                "files": len(server.namespace),
                "free_bytes": server.space.free_bytes,
                # Service-time tails (seconds) from the shard's own
                # log-bucketed histogram -- the per-shard view the SLO
                # layer reports (DESIGN §12).
                "svc_p50": server.service_hist.quantile(0.50),
                "svc_p99": server.service_hist.quantile(0.99),
                "svc_p999": server.service_hist.quantile(0.999),
            }
            for index, server in enumerate(self.servers)
        ]


def check_shard_disjointness(
    shards: _t.Sequence[_t.Tuple["Namespace", "SpaceManager"]],
    volume_size: int,
) -> _t.List[str]:
    """The cross-shard invariant: shard state never overlaps.

    Verifies (1) the volume slices themselves are disjoint and
    in-bounds, (2) every committed extent and every tracked
    uncommitted range of a shard lies inside that shard's slice, and
    (3) no volume byte is claimed committed by two shards.  Returns
    human-readable violation details; empty means disjoint.
    """
    violations: _t.List[str] = []
    slices = IntervalSet()
    for index, (_, space) in enumerate(shards):
        lo, hi = space.base_offset, space.base_offset + space.volume_size
        if lo < 0 or hi > volume_size:
            violations.append(
                f"shard {index} slice [{lo}, {hi}) exceeds the "
                f"{volume_size}-byte volume"
            )
        if slices.overlaps(lo, hi):
            violations.append(
                f"shard {index} slice [{lo}, {hi}) overlaps another "
                "shard's slice"
            )
        slices.add(lo, hi)

    committed = IntervalSet()
    for index, (namespace, space) in enumerate(shards):
        lo, hi = space.base_offset, space.base_offset + space.volume_size
        for offset, length in namespace.all_committed_ranges():
            if offset < lo or offset + length > hi:
                violations.append(
                    f"shard {index} committed extent "
                    f"[{offset}, {offset + length}) escapes its slice "
                    f"[{lo}, {hi})"
                )
            if committed.overlaps(offset, offset + length):
                violations.append(
                    f"volume range [{offset}, {offset + length}) is "
                    f"claimed committed by shard {index} and another "
                    "shard"
                )
            committed.add(offset, offset + length)
        for client_ranges in space._uncommitted.values():
            for start, end in client_ranges:
                if start < lo or end > hi:
                    violations.append(
                        f"shard {index} uncommitted range "
                        f"[{start}, {end}) escapes its slice "
                        f"[{lo}, {hi})"
                    )
    return violations
