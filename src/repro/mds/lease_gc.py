"""Online orphan garbage collection with client leases.

§I of the paper notes that orphan data (allocated space whose metadata
commit never arrived) "can be recycled with garbage collection".  The
base reproduction performs that GC during post-crash recovery; this
module implements the *online* version a production MDS needs: space
delegated or allocated to a client is covered by a lease that every RPC
from the client implicitly renews.  When a client goes silent past the
lease duration -- it crashed, or was partitioned away -- a background
collector reclaims all of its uncommitted space while the rest of the
cluster keeps running.

A reclaimed client that comes back simply sees its stale commits dropped
by the MDS's defensive commit rule (its extents are no longer in its
uncommitted set) and must re-allocate -- the same fencing story as NFSv4
delegations or pNFS layouts.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.mds.allocation import SpaceManager

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


@dataclass
class GcEvent:
    """One reclamation performed by the collector."""

    time: float
    client_id: int
    bytes_reclaimed: int


@dataclass
class LeaseTable:
    """Last-activity tracking per client."""

    last_seen: _t.Dict[int, float] = field(default_factory=dict)

    def renew(self, client_id: int, now: float) -> None:
        self.last_seen[client_id] = now

    def expired(
        self, now: float, lease_duration: float
    ) -> _t.List[int]:
        return [
            client_id
            for client_id, seen in self.last_seen.items()
            if now - seen > lease_duration
        ]


class LeaseGarbageCollector:
    """Background MDS process reclaiming silent clients' orphan space.

    Parameters
    ----------
    env:
        Simulation environment.
    space:
        The space manager whose uncommitted tracking is authoritative.
    lease_duration:
        Seconds of silence after which a client's lease is considered
        expired.
    scan_interval:
        How often the collector scans for expired leases.
    """

    def __init__(
        self,
        env: "Effects",
        space: SpaceManager,
        lease_duration: float = 30.0,
        scan_interval: float = 5.0,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        if lease_duration <= 0 or scan_interval <= 0:
            raise ValueError("lease_duration and scan_interval must be > 0")
        self.env = env
        self.space = space
        self.lease_duration = lease_duration
        self.scan_interval = scan_interval
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self.leases = LeaseTable()
        self.events: _t.List[GcEvent] = []
        self.bytes_reclaimed_total = 0
        #: Called with the reclaimed client's id after each reclamation;
        #: the cluster wires this to :meth:`DiskArray.fence` so a
        #: reclaimed-but-alive client's in-flight data writes cannot land
        #: on blocks that may already be re-allocated (DESIGN §8).
        self.on_reclaim: _t.Optional[_t.Callable[[int], None]] = None
        #: Called when a *fenced* client is next heard from.  Real
        #: protocols make a fenced client re-establish its state (a new
        #: NFSv4 client id / layout stateid) before issuing new writes;
        #: the simulation collapses that handshake into this callback,
        #: which re-stamps the client's write generation.  Writes issued
        #: before re-admission stay behind the fence.
        self.on_readmit: _t.Optional[_t.Callable[[int], None]] = None
        self._fenced: _t.Set[int] = set()
        #: True while the MDS is crashed: a dead MDS collects nothing.
        self.paused = False
        self._process = env.process(self._run(), name="mds-lease-gc")

    def renew(self, client_id: int) -> None:
        """Record activity from ``client_id`` (called per RPC)."""
        self.leases.renew(client_id, self.env.now)
        if self.obs is not None:
            self.obs.registry.counter("mds.lease_renewals").inc()
        if client_id in self._fenced:
            self._fenced.discard(client_id)
            if self.on_readmit is not None:
                self.on_readmit(client_id)

    def pause(self) -> None:
        """Suspend collection (MDS crash)."""
        self.paused = True

    def resume(self) -> None:
        """Restart collection after an MDS restart with a lease grace.

        All known leases are renewed to *now*, mirroring the NFSv4 grace
        period: clients could not renew while the server was down, so
        none may be declared dead until a full lease duration has passed
        after the restart.  Genuinely dead clients simply stay silent and
        expire again.
        """
        self.paused = False
        now = self.env.now
        for client_id in self.leases.last_seen:
            self.leases.renew(client_id, now)

    def _run(self) -> _t.Generator:
        while True:
            yield self.env.timeout(self.scan_interval)
            self.collect()

    def collect(self) -> int:
        """One scan: reclaim every expired client's orphan space."""
        if self.paused:
            return 0
        reclaimed_now = 0
        for client_id in self.leases.expired(
            self.env.now, self.lease_duration
        ):
            orphan_bytes = self.space.uncommitted_bytes(client_id)
            if orphan_bytes == 0:
                continue
            reclaimed = self.space.reclaim_uncommitted(client_id)
            reclaimed_now += reclaimed
            self.bytes_reclaimed_total += reclaimed
            self.events.append(
                GcEvent(
                    time=self.env.now,
                    client_id=client_id,
                    bytes_reclaimed=reclaimed,
                )
            )
            if self.obs is not None:
                self.obs.tracer.instant(
                    "lease_reclaim", "mds", node="mds",
                    actor="mds-lease-gc",
                    client=client_id, bytes=reclaimed,
                )
                self.obs.registry.counter("mds.lease_reclaims").inc()
            if self.on_reclaim is not None:
                self.on_reclaim(client_id)
                self._fenced.add(client_id)
        return reclaimed_now
