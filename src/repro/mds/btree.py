"""An order-configurable B+ tree.

Each allocation group owns one of these, keyed by volume offset, to
allocate and deallocate physical space (paper §V.A: "Each AG has its own
B+ tree to allocate and deallocate physical space").  The namespace also
uses it for large extent maps.

The implementation is a textbook B+ tree: internal nodes route by
separator keys, leaves hold (key, value) pairs and are linked for ordered
scans.  Deletion rebalances by borrowing from or merging with siblings.

Only the operations the file system needs are exposed:

- exact ``get`` / ``insert`` / ``delete``;
- ``floor_item`` / ``ceiling_item`` (nearest-key lookups used for
  free-extent coalescing and next-fit allocation);
- ordered iteration, optionally bounded.
"""

from __future__ import annotations

import bisect
import typing as _t

K = _t.TypeVar("K")
V = _t.TypeVar("V")


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: _t.List[_t.Any] = []
        self.children: _t.List["_Node"] = []  # internal only
        self.values: _t.List[_t.Any] = []  # leaf only
        self.next_leaf: _t.Optional["_Node"] = None  # leaf only


class BPlusTree(_t.Generic[K, V]):
    """B+ tree mapping totally ordered keys to values.

    Parameters
    ----------
    order:
        Maximum number of children of an internal node (>= 3).  Leaves
        hold at most ``order - 1`` pairs.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self._order = order
        self._max_keys = order - 1
        self._min_keys = (order + 1) // 2 - 1  # floor(ceil(order/2)) - 1
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0

    # -- basic queries ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: K) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def get(self, key: K, default: _t.Any = None) -> _t.Any:
        """Value for ``key`` or ``default``."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def min_item(self) -> _t.Tuple[K, V]:
        """Smallest (key, value); raises KeyError if empty."""
        if not self._size:
            raise KeyError("tree is empty")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def max_item(self) -> _t.Tuple[K, V]:
        """Largest (key, value); raises KeyError if empty."""
        if not self._size:
            raise KeyError("tree is empty")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def floor_item(self, key: K) -> _t.Optional[_t.Tuple[K, V]]:
        """Largest (k, v) with k <= key, or None."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_right(leaf.keys, key) - 1
        if idx >= 0:
            return leaf.keys[idx], leaf.values[idx]
        # Entirely before this leaf: the answer is the previous leaf's max,
        # found by walking from the root (no prev pointers kept).
        return self._max_below(key)

    def _max_below(self, key: K) -> _t.Optional[_t.Tuple[K, V]]:
        best: _t.Optional[_t.Tuple[K, V]] = None
        node = self._root
        while True:
            if node.is_leaf:
                idx = bisect.bisect_right(node.keys, key) - 1
                if idx >= 0:
                    cand = (node.keys[idx], node.values[idx])
                    if best is None or cand[0] > best[0]:
                        best = cand
                return best
            idx = bisect.bisect_right(node.keys, key)
            # Any fully-smaller subtree's max is a candidate; remember the
            # nearest one then descend toward key.
            if idx > 0:
                prev = node.children[idx - 1]
                while not prev.is_leaf:
                    prev = prev.children[-1]
                if prev.keys:
                    last = bisect.bisect_right(prev.keys, key) - 1
                    if last >= 0:
                        cand = (prev.keys[last], prev.values[last])
                        if best is None or cand[0] > best[0]:
                            best = cand
            node = node.children[idx]

    def ceiling_item(self, key: K) -> _t.Optional[_t.Tuple[K, V]]:
        """Smallest (k, v) with k >= key, or None."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys):
            return leaf.keys[idx], leaf.values[idx]
        nxt = leaf.next_leaf
        while nxt is not None:
            if nxt.keys:
                return nxt.keys[0], nxt.values[0]
            nxt = nxt.next_leaf
        return None

    def items(
        self, lo: _t.Optional[K] = None, hi: _t.Optional[K] = None
    ) -> _t.Iterator[_t.Tuple[K, V]]:
        """Ordered (key, value) pairs with lo <= key < hi."""
        if not self._size:
            return
        if lo is None:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            idx = 0
        else:
            node = self._find_leaf(lo)
            idx = bisect.bisect_left(node.keys, lo)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if hi is not None and key >= hi:
                    return
                yield key, node.values[idx]
                idx += 1
            node = node.next_leaf
            idx = 0

    def keys(self) -> _t.Iterator[K]:
        return (k for k, _ in self.items())

    # -- insertion ---------------------------------------------------------

    def insert(self, key: K, value: V) -> None:
        """Insert or replace the value at ``key``."""
        root = self._root
        result = self._insert(root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [root, right]
            self._root = new_root

    def _insert(
        self, node: _Node, key: K, value: V
    ) -> _t.Optional[_t.Tuple[K, _Node]]:
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value  # replace
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) > self._max_keys:
                return self._split_leaf(node)
            return None

        idx = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[idx], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self._max_keys:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> _t.Tuple[K, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> _t.Tuple[K, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- deletion -----------------------------------------------------------

    def delete(self, key: K) -> V:
        """Remove ``key`` and return its value; raises KeyError if absent."""
        value = self._delete(self._root, key)
        root = self._root
        if not root.is_leaf and len(root.children) == 1:
            self._root = root.children[0]
        return value

    def _delete(self, node: _Node, key: K) -> V:
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                raise KeyError(repr(key))
            node.keys.pop(idx)
            value = node.values.pop(idx)
            self._size -= 1
            return value

        idx = bisect.bisect_right(node.keys, key)
        value = self._delete(node.children[idx], key)
        child = node.children[idx]
        if self._underflow(child):
            self._rebalance(node, idx)
        return value

    def _underflow(self, node: _Node) -> bool:
        if node.is_leaf:
            return len(node.keys) < max(1, self._min_keys)
        return len(node.children) < max(2, self._min_keys + 1)

    def _rebalance(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = (
            parent.children[idx + 1]
            if idx + 1 < len(parent.children)
            else None
        )

        if child.is_leaf:
            if left is not None and len(left.keys) > max(1, self._min_keys):
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[idx - 1] = child.keys[0]
                return
            if right is not None and len(right.keys) > max(1, self._min_keys):
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[idx] = right.keys[0]
                return
            if left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next_leaf = child.next_leaf
                parent.keys.pop(idx - 1)
                parent.children.pop(idx)
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next_leaf = right.next_leaf
                parent.keys.pop(idx)
                parent.children.pop(idx + 1)
            return

        min_children = max(2, self._min_keys + 1)
        if left is not None and len(left.children) > min_children:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
            return
        if right is not None and len(right.children) > min_children:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
            return
        if left is not None:
            left.keys.append(parent.keys.pop(idx - 1))
            left.keys.extend(child.keys)
            left.children.extend(child.children)
            parent.children.pop(idx)
        elif right is not None:
            child.keys.append(parent.keys.pop(idx))
            child.keys.extend(right.keys)
            child.children.extend(right.children)
            parent.children.pop(idx + 1)

    # -- internals ------------------------------------------------------------

    def _find_leaf(self, key: K) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    # -- diagnostics ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate structural invariants (tests and recovery use this).

        Raises ``AssertionError`` on any violation.
        """
        size = self._check_node(self._root, is_root=True, lo=None, hi=None)
        assert size == self._size, f"size {self._size} != counted {size}"
        # Leaf chain must be ordered and complete.
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        prev_key = None
        counted = 0
        while node is not None:
            for key in node.keys:
                assert prev_key is None or prev_key < key, "leaf chain order"
                prev_key = key
                counted += 1
            node = node.next_leaf
        assert counted == self._size, "leaf chain size"

    def _check_node(
        self,
        node: _Node,
        is_root: bool,
        lo: _t.Optional[K],
        hi: _t.Optional[K],
    ) -> int:
        assert node.keys == sorted(node.keys), "keys sorted"
        for key in node.keys:
            assert lo is None or key >= lo, "key below subtree bound"
            assert hi is None or key < hi, "key above subtree bound"
        if node.is_leaf:
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= max(1, self._min_keys), "leaf fill"
            assert len(node.keys) <= self._max_keys, "leaf overflow"
            return len(node.keys)
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= max(2, self._min_keys + 1), (
                "internal fill"
            )
        assert len(node.keys) <= self._max_keys, "internal overflow"
        total = 0
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            total += self._check_node(
                child, is_root=False, lo=bounds[i], hi=bounds[i + 1]
            )
        return total


_MISSING = object()
