"""Metadata server substrate.

The Redbud MDS "handles the storage and processing of metadata": it owns
the file namespace, maps file ranges to physical extents, and manages the
physical storage resources of the shared array.  Per the paper (§V.A):

- all storage is divided into **allocation groups (AGs)**, each with its
  own **B+ tree** to allocate and deallocate physical space;
- AGs are selected by a flexible strategy, round-robin by default;
- clients obtain layouts with ``layout-get`` RPCs and publish updates with
  ``commit`` RPCs;
- under space delegation the MDS hands whole chunks to clients, which
  then allocate small-file space locally.

Modules
-------
- :mod:`repro.mds.btree` -- order-configurable B+ tree.
- :mod:`repro.mds.extent` -- extent / layout / chunk value types.
- :mod:`repro.mds.allocation` -- AG free-space management + SpaceManager.
- :mod:`repro.mds.namespace` -- files, extent maps, commit application.
- :mod:`repro.mds.server` -- the daemon-thread RPC service model.
"""

from repro.mds.allocation import AllocationGroup, SpaceManager
from repro.mds.btree import BPlusTree
from repro.mds.extent import EXTENT_COMMITTED, EXTENT_NEW, Chunk, Extent
from repro.mds.namespace import FileMeta, Namespace
from repro.mds.server import MdsParameters, MetadataServer

__all__ = [
    "AllocationGroup",
    "BPlusTree",
    "Chunk",
    "EXTENT_COMMITTED",
    "EXTENT_NEW",
    "Extent",
    "FileMeta",
    "MdsParameters",
    "MetadataServer",
    "Namespace",
    "SpaceManager",
]
