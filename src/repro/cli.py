"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Run one workload on one system and print the result summary.
    ``--json`` emits the result as a JSON object instead of tables;
    ``--trace PATH`` additionally records a causal trace (Chrome
    ``trace_event`` JSON, Perfetto-loadable).
``compare``
    Run one workload across all four Fig. 3 systems, normalised.
    Accepts ``--json`` and ``--trace PATH`` too (one trace file per
    system, the system name suffixed to the path stem).
``trace``
    Run one workload with full causal tracing and export the per-update
    span trees (``--format chrome`` for Perfetto, ``jsonl`` for grep);
    prints a plain-text span summary and the count of complete
    enqueue->merge->compound->commit->dispatch chains.
``stats``
    Run one workload with the metrics registry enabled and print every
    counter/gauge/histogram (queue depths, merge ratio, compound
    degrees, daemon utilisation, delegation hit-rate...).
``figures``
    List the benchmark modules that regenerate the paper's figures.
``bench``
    Fan a figure sweep (figure x seeds x configs) across worker
    processes with incremental result caching and write the
    machine-readable ``BENCH_sim.json`` perf report (see
    ``benchmarks/harness.py``).
``slo``
    Run one workload across chosen systems with the tail-latency layer
    armed: per-op p50/p99/p999 tables, SLO verdicts
    (``--slo 'write:p99<=0.05,*:p999<=0.5'``, exit nonzero on
    violation), critical-path stage breakdown for the slowest decile,
    a fault-annotated timeline (``--timeline``), and a Perfetto trace
    with counter tracks (``--trace``).  ``run``/``compare`` also accept
    ``--slo`` for verdicts inline.
``crash``
    Crash a busy delayed-commit cluster at a chosen instant, verify the
    ordered-writes invariant, and run recovery.
``check``
    Systematic crash-schedule exploration (``repro.check``): enumerate
    crashes at protocol transition points, layer seeded nemesis fault
    combinations, judge every schedule against the invariant suite, and
    shrink failures to minimal replayable ``--faults`` specs.

Examples
--------
::

    python -m repro run --system redbud-delayed --workload xcdn-32K
    python -m repro run --system nfs3 --json
    python -m repro run --faults 'loss=0.1,mds_restart@0.5:0.2' --check
    python -m repro compare --workload varmail --duration 3
    python -m repro trace --system redbud-delayed --out t.json
    python -m repro stats --system redbud-delayed --workload varmail
    python -m repro slo --systems redbud-delayed,nfs3 \
        --slo 'write:p99<=0.05,*:p999<=0.5'
    python -m repro slo --shards 2 --faults 'mds_restart@0.5:0.2' \
        --timeline --trace slo.json
    python -m repro crash --at 0.4 --mode unordered
    python -m repro check --budget 200 --seed 0 --out check.json
    python -m repro bench --figure fig3 --seeds 8
"""

from __future__ import annotations

import argparse
import json
import sys
import typing as _t

from repro.analysis import Table
from repro.consistency import (
    check_ordered_writes,
    crash_cluster,
    fsck,
    recover,
)
from repro.fs import build_cluster
from repro.fs.factory import SYSTEMS
from repro.util import fmt_rate, fmt_time
from repro.workloads import (
    FileserverWorkload,
    NpbBtIoWorkload,
    VarmailWorkload,
    WebproxyWorkload,
    XcdnWorkload,
)

def _soak_workload() -> _t.Any:
    # Lazy: the slow-trickle soak mix lives in the check package, and
    # importing it here would drag the checker into every CLI start.
    from repro.check.soak import SoakWorkload

    return SoakWorkload()


WORKLOADS: _t.Dict[str, _t.Callable[[], _t.Any]] = {
    "fileserver": lambda: FileserverWorkload(seed_files_per_client=15),
    "varmail": lambda: VarmailWorkload(seed_files_per_client=15),
    "webproxy": lambda: WebproxyWorkload(seed_files_per_client=20),
    "xcdn-32K": lambda: XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=25
    ),
    "xcdn-64K": lambda: XcdnWorkload(
        file_size=64 * 1024, seed_files_per_client=15
    ),
    "xcdn-1M": lambda: XcdnWorkload(
        file_size=1024 * 1024, seed_files_per_client=8
    ),
    "npb-bt": lambda: NpbBtIoWorkload(),
    "soak": _soak_workload,
}

FIGURES = {
    "fig1": "benchmarks/bench_fig1_overlap.py -- computing/I-O overlap",
    "fig3": "benchmarks/bench_fig3_overall.py -- 4 systems x 5 workloads",
    "fig4": "benchmarks/bench_fig4_merge_ratio.py -- I/O merge ratios",
    "fig5": "benchmarks/bench_fig5_seeks.py -- seek traces",
    "fig6": "benchmarks/bench_fig6_threads.py -- adaptive thread pool",
    "fig7": "benchmarks/bench_fig7_compound.py -- compound degree x daemons",
    "ablations": "benchmarks/bench_ablations.py -- design-knob ablations",
}


def _metric(workload_name: str):
    if workload_name.startswith("npb"):
        return lambda r: r.bytes_per_second
    return lambda r: r.ops_per_second


def _scalar_extras(extras: _t.Dict[str, _t.Any]) -> _t.Dict[str, _t.Any]:
    """Keep only JSON-friendly scalar extras (drop objects/samples)."""
    return {
        k: v
        for k, v in extras.items()
        if isinstance(v, (int, float, str, bool))
    }


def _result_dict(result: _t.Any) -> _t.Dict[str, _t.Any]:
    latency = result.latency()
    return {
        "system": result.system,
        "workload": result.workload,
        "duration": result.duration,
        "ops_completed": result.ops_completed,
        "ops_per_second": result.ops_per_second,
        "bytes_per_second": result.bytes_per_second,
        "latency": latency.as_dict(),
        "extras": _scalar_extras(result.extras),
    }


def _settle(cluster: _t.Any) -> None:
    """Let in-flight background commits land so trace chains complete."""
    if hasattr(cluster, "settle"):
        cluster.settle()


def _trace_path(path: str, system: str) -> str:
    """``t.json`` + ``nfs3`` -> ``t-nfs3.json`` (for compare --trace)."""
    stem, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}-{system}"
    return f"{stem}-{system}.{ext}"


def _check_writable(path: str) -> _t.Optional[str]:
    """Fail before the (long) simulation, not at export time."""
    import os

    parent = os.path.dirname(path) or "."
    if not os.path.isdir(parent):
        return f"error: trace output directory does not exist: {parent}"
    return None


def _build_obs(args: argparse.Namespace) -> _t.Optional[_t.Any]:
    if not getattr(args, "trace", None):
        return None
    from repro.obs import Instrumentation

    return Instrumentation()


def _parse_slo(text: str) -> _t.Any:
    """Parse ``--slo`` or print the error and return None."""
    from repro.obs import SloSpec

    try:
        return SloSpec.parse(text)
    except ValueError as exc:
        print(f"error: bad --slo spec: {exc}", file=sys.stderr)
        return None


def _evaluate_slo(
    spec: _t.Any, result: _t.Any, obs: _t.Optional[_t.Any]
) -> _t.Tuple[_t.List[_t.Any], _t.FrozenSet[int]]:
    """Judge ``spec`` against a run, fault-excusing traced windows."""
    from repro.obs import Timeline

    tracer = obs.tracer if obs is not None else None
    timeline = Timeline.build(result.metrics, tracer)
    excused = timeline.fault_window_indexes
    return spec.evaluate(result.metrics, excused), excused


def cmd_run(args: argparse.Namespace) -> int:
    if args.trace and (err := _check_writable(args.trace)):
        print(err, file=sys.stderr)
        return 2
    slo_spec = None
    if getattr(args, "slo", None):
        slo_spec = _parse_slo(args.slo)
        if slo_spec is None:
            return 2
    obs = _build_obs(args)
    config_kw: _t.Dict[str, _t.Any] = {}
    spec = None
    if getattr(args, "faults", None):
        from repro.faults import FaultSpec

        try:
            spec = FaultSpec.parse(args.faults)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        if spec.crash_at is not None:
            # A crash-cut schedule (e.g. a shrunken counterexample from
            # `repro check`): replay it through the check harness, which
            # drives the deterministic check workload, pulls the plug at
            # the requested instant, and judges recovery against the
            # full invariant suite.
            if not args.system.startswith("redbud"):
                print(
                    "error: --faults supports the redbud systems only",
                    file=sys.stderr,
                )
                return 2
            from repro.check import run_schedule

            outcome = run_schedule(
                spec, seed=args.seed, clients=args.clients,
                shards=args.shards, replication=args.replication,
            )
            print(
                f"crash schedule {spec.serialize()!r} replayed on the "
                f"check harness (seed={args.seed}, "
                f"clients={args.clients}, shards={args.shards}, "
                f"replication={args.replication})"
            )
            for line in outcome.verdict.summaries:
                print(f"check: {line}")
            for kind, detail in outcome.verdict.violations:
                print(f"check VIOLATION [{kind}]: {detail}")
            print("PASS" if outcome.verdict.ok else "FAIL")
            return 0 if outcome.verdict.ok else 1
        if spec.empty:
            # An empty spec injects nothing and must behave (and trace)
            # byte-identically to a run without --faults, so don't arm
            # the retry machinery either.
            spec = None
        else:
            if not args.system.startswith("redbud"):
                print(
                    "error: --faults supports the redbud systems only",
                    file=sys.stderr,
                )
                return 2
            from repro.net.rpc import RetryPolicy

            config_kw["retry"] = RetryPolicy()
    if args.shards > 1:
        if not args.system.startswith("redbud"):
            print(
                "error: --shards supports the redbud systems only",
                file=sys.stderr,
            )
            return 2
        config_kw["shards"] = args.shards
    if args.replication != "none":
        if not args.system.startswith("redbud"):
            print(
                "error: --replication supports the redbud systems only",
                file=sys.stderr,
            )
            return 2
        config_kw["replication"] = args.replication
    if getattr(args, "processes", None) is not None:
        if spec is not None and spec.client_deaths:
            # client_death addresses one workload personality by index
            # (client_death=3 kills client 3); under aggregation a node
            # hosts many personalities and that indexing is
            # meaningless.  Every other clause family targets links,
            # shards, or storage members, which aggregation leaves
            # intact -- so only deaths are refused.
            death = spec.client_deaths[0]
            print(
                "error: --processes cannot be combined with a --faults "
                "spec containing client_death clauses "
                f"(offending clause: client_death={death.client_id}"
                f"@{death.at!r}; client indexing assumes one node per "
                "client)",
                file=sys.stderr,
            )
            return 2
        config_kw["client_processes"] = args.processes
    if getattr(args, "scheduler", None) is not None:
        config_kw["scheduler"] = args.scheduler
    if getattr(args, "delegation_chunk", None) is not None:
        config_kw["delegation_chunk"] = args.delegation_chunk
    cluster = build_cluster(
        args.system, num_clients=args.clients, seed=args.seed, obs=obs,
        **config_kw,
    )
    if getattr(args, "seed_bug", "none") != "none":
        if not args.system.startswith("redbud"):
            print(
                "error: --seed-bug supports the redbud systems only",
                file=sys.stderr,
            )
            return 2
        from repro.check.soak import seed_bug_tweak

        bug_tweak = seed_bug_tweak(args.seed_bug)
        if bug_tweak is not None:
            bug_tweak(cluster)
    injector = None
    if spec is not None:
        from repro.faults import FaultInjector

        injector = FaultInjector(cluster, spec)
    workload = WORKLOADS[args.workload]()
    result = cluster.run_workload(workload, duration=args.duration)
    if injector is not None:
        # Post-schedule settling: stop injecting, let retries drain.
        injector.stop()
        _settle(cluster)
    check_verdict = None
    if getattr(args, "check", False):
        if not args.system.startswith("redbud"):
            print(
                "error: --check supports the redbud systems only",
                file=sys.stderr,
            )
            return 2
        from repro.check import judge_converged, judge_live

        if injector is None:
            _settle(cluster)
        check_verdict = judge_live(cluster)
        # Liveness side: after settling, clients must be back on the
        # delayed path, GC running, witnesses draining -- the oracle a
        # shrunk soak counterexample fails on replay.
        converged = judge_converged(cluster)
        for kind, detail in converged.violations:
            check_verdict.add(kind, detail)
        check_verdict.summaries.extend(converged.summaries)
    if obs is not None:
        from repro.obs import write_chrome_trace

        _settle(cluster)
        count = write_chrome_trace(obs.tracer, args.trace)
        print(
            f"wrote {count} trace events to {args.trace}", file=sys.stderr
        )
    slo_results: _t.List[_t.Any] = []
    slo_excused: _t.FrozenSet[int] = frozenset()
    if slo_spec is not None:
        slo_results, slo_excused = _evaluate_slo(slo_spec, result, obs)
    slo_ok = all(r.passed for r in slo_results)
    if args.json:
        payload = _result_dict(result)
        if "mds_per_shard" in result.extras:
            # Per-shard breakdown is a list of dicts, which the scalar
            # filter drops; it is JSON-friendly, so carry it through.
            payload["extras"]["mds_per_shard"] = result.extras[
                "mds_per_shard"
            ]
        if injector is not None:
            payload["faults"] = injector.summary()
        if check_verdict is not None:
            payload["check"] = check_verdict.as_dict()
        if slo_spec is not None:
            payload["slo"] = {
                "spec": slo_spec.describe(),
                "excused_windows": sorted(slo_excused),
                "results": [r.as_dict() for r in slo_results],
                "ok": slo_ok,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        if check_verdict is not None and not check_verdict.ok:
            return 1
        return 0 if slo_ok else 1
    table = Table(
        ["metric", "value"],
        title=f"{args.system} / {args.workload} "
        f"({args.clients} clients, {args.duration:.1f}s virtual)",
    )
    table.add_row("ops completed", result.ops_completed)
    table.add_row("ops/s", result.ops_per_second)
    table.add_row("throughput", fmt_rate(result.bytes_per_second))
    table.add_row("mean op latency", fmt_time(result.latency().mean))
    table.add_row("p95 op latency", fmt_time(result.latency().p95))
    for key in ("merge_ratio", "array_utilization", "mean_compound_degree"):
        if key in result.extras:
            table.add_row(key, result.extras[key])
    table.print()
    for op in result.metrics.op_types():
        stats = result.latency(op)
        print(
            f"  {op:>12}: n={stats.count:<7} mean={fmt_time(stats.mean)} "
            f"p95={fmt_time(stats.p95)} p99={fmt_time(stats.p99)} "
            f"p999={fmt_time(stats.p999)}"
        )
    per_shard = result.extras.get("mds_per_shard")
    if per_shard:
        shard_table = Table(
            [
                "shard", "mds_requests", "mds_ops", "files", "free_bytes",
                "svc_p50", "svc_p99", "svc_p999",
            ],
            title="metadata shards",
        )
        for row in per_shard:
            shard_table.add_row(
                row["shard"],
                row["mds_requests"],
                row["mds_ops"],
                row["files"],
                row["free_bytes"],
                fmt_time(row["svc_p50"]),
                fmt_time(row["svc_p99"]),
                fmt_time(row["svc_p999"]),
            )
        shard_table.print()
    if injector is not None:
        fault_table = Table(["fault metric", "value"], title="fault summary")
        for key, value in injector.summary().items():
            fault_table.add_row(key, value)
        for key in (
            "rpc_retries",
            "rpc_timeouts",
            "degraded_writes",
            "duplicate_commits_suppressed",
            "lease_gc_bytes_reclaimed",
        ):
            if key in result.extras:
                fault_table.add_row(key, result.extras[key])
        fault_table.print()
    if slo_spec is not None:
        from repro.obs import slo_table

        slo_table(
            slo_results,
            title=f"SLO: {args.system}",
            excused_windows=len(slo_excused),
        ).print()
    if check_verdict is not None:
        for line in check_verdict.summaries:
            print(f"check: {line}")
        for kind, detail in check_verdict.violations:
            print(f"check VIOLATION [{kind}]: {detail}")
        if not check_verdict.ok:
            return 1
    return 0 if slo_ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    if args.trace and (err := _check_writable(args.trace)):
        print(err, file=sys.stderr)
        return 2
    slo_spec = None
    if getattr(args, "slo", None):
        slo_spec = _parse_slo(args.slo)
        if slo_spec is None:
            return 2
    metric = _metric(args.workload)
    results = {}
    slo_verdicts: _t.Dict[str, _t.List[_t.Any]] = {}
    for system in SYSTEMS:
        obs = _build_obs(args)
        cluster = build_cluster(
            system, num_clients=args.clients, seed=args.seed, obs=obs
        )
        results[system] = cluster.run_workload(
            WORKLOADS[args.workload](), duration=args.duration
        )
        if slo_spec is not None:
            slo_verdicts[system], _ = _evaluate_slo(
                slo_spec, results[system], obs
            )
        if obs is not None:
            from repro.obs import write_chrome_trace

            _settle(cluster)
            path = _trace_path(args.trace, system)
            count = write_chrome_trace(obs.tracer, path)
            print(
                f"  {system}: done ({count} trace events -> {path})",
                file=sys.stderr,
            )
        else:
            print(f"  {system}: done", file=sys.stderr)
    base = metric(results["redbud-original"])
    slo_ok = all(
        r.passed for verdicts in slo_verdicts.values() for r in verdicts
    )
    if args.json:
        payload = {
            "workload": args.workload,
            "baseline": "redbud-original",
            "systems": {
                system: dict(
                    _result_dict(r),
                    normalised=metric(r) / base if base else 0.0,
                )
                for system, r in results.items()
            },
        }
        if slo_spec is not None:
            payload["slo"] = {
                "spec": slo_spec.describe(),
                "ok": slo_ok,
                "systems": {
                    system: [r.as_dict() for r in verdicts]
                    for system, verdicts in slo_verdicts.items()
                },
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if slo_ok else 1
    table = Table(
        ["system", "ops/s", "throughput", "normalised"],
        title=f"{args.workload}: all systems (normalised to original Redbud)",
    )
    for system in SYSTEMS:
        r = results[system]
        table.add_row(
            system,
            r.ops_per_second,
            fmt_rate(r.bytes_per_second),
            metric(r) / base if base else 0.0,
        )
    table.print()
    if slo_spec is not None:
        from repro.obs import slo_table

        for system in SYSTEMS:
            slo_table(
                slo_verdicts[system], title=f"SLO: {system}"
            ).print()
    return 0 if slo_ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        Instrumentation,
        complete_chains,
        trace_summary,
        write_chrome_trace,
        write_jsonl,
    )

    if err := _check_writable(args.out):
        print(err, file=sys.stderr)
        return 2
    obs = Instrumentation()
    cluster = build_cluster(
        args.system, num_clients=args.clients, seed=args.seed, obs=obs
    )
    workload = WORKLOADS[args.workload]()
    cluster.run_workload(workload, duration=args.duration)
    # Let background daemons drain so in-flight updates finish their
    # enqueue->dispatch chains before export.
    _settle(cluster)
    if args.format == "chrome":
        count = write_chrome_trace(obs.tracer, args.out)
    else:
        count = write_jsonl(obs.tracer, args.out)
    print(trace_summary(obs.tracer))
    print(f"wrote {count} {args.format} records to {args.out}")
    # A delayed-commit run that produced no complete causal chain means
    # the instrumentation broke; flag it.
    if args.system == "redbud-delayed" and not complete_chains(obs.tracer):
        return 1
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import Instrumentation, stats_table

    obs = Instrumentation()
    cluster = build_cluster(
        args.system, num_clients=args.clients, seed=args.seed, obs=obs
    )
    workload = WORKLOADS[args.workload]()
    cluster.run_workload(workload, duration=args.duration)
    _settle(cluster)
    if args.json:
        print(
            json.dumps(obs.registry.snapshot(), indent=2, sort_keys=True)
        )
        return 0
    stats_table(
        obs.registry,
        title=f"{args.system} / {args.workload} metrics",
    ).print()
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs import (
        Instrumentation,
        Timeline,
        critical_path_table,
        decompose_updates,
        slo_table,
        timeline_counter_events,
        write_chrome_trace,
    )

    if args.trace and (err := _check_writable(args.trace)):
        print(err, file=sys.stderr)
        return 2
    spec = None
    if args.slo:
        spec = _parse_slo(args.slo)
        if spec is None:
            return 2
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    for system in systems:
        if system not in SYSTEMS:
            print(
                f"error: unknown system {system!r}; choose from "
                f"{', '.join(SYSTEMS)}",
                file=sys.stderr,
            )
            return 2
    fault_spec = None
    if args.faults:
        from repro.faults import FaultSpec

        try:
            fault_spec = FaultSpec.parse(args.faults)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        if fault_spec.crash_at is not None:
            print(
                "error: crash@T schedules belong to `repro run --check`",
                file=sys.stderr,
            )
            return 2
        if fault_spec.empty:
            fault_spec = None
    needs_redbud = fault_spec is not None or args.shards > 1
    if needs_redbud and any(not s.startswith("redbud") for s in systems):
        print(
            "error: --faults/--shards support the redbud systems only",
            file=sys.stderr,
        )
        return 2

    violated = False
    report: _t.Dict[str, _t.Any] = {
        "workload": args.workload,
        "clients": args.clients,
        "seed": args.seed,
        "duration": args.duration,
        "slo": spec.describe() if spec is not None else None,
        "faults": args.faults or None,
        "shards": args.shards,
        "systems": {},
    }
    for system in systems:
        obs = Instrumentation()
        config_kw: _t.Dict[str, _t.Any] = {}
        if args.shards > 1:
            config_kw["shards"] = args.shards
        if fault_spec is not None:
            from repro.net.rpc import RetryPolicy

            config_kw["retry"] = RetryPolicy()
        cluster = build_cluster(
            system, num_clients=args.clients, seed=args.seed, obs=obs,
            **config_kw,
        )
        injector = None
        if fault_spec is not None:
            from repro.faults import FaultInjector

            injector = FaultInjector(cluster, fault_spec)
        result = cluster.run_workload(
            WORKLOADS[args.workload](), duration=args.duration
        )
        if injector is not None:
            injector.stop()
        _settle(cluster)

        breakdowns = decompose_updates(obs.tracer)
        timeline = Timeline.build(result.metrics, obs.tracer, breakdowns)
        excused = timeline.fault_window_indexes
        verdicts = (
            spec.evaluate(result.metrics, excused)
            if spec is not None
            else []
        )
        if any(not r.passed for r in verdicts):
            violated = True

        entry: _t.Dict[str, _t.Any] = {
            "result": _result_dict(result),
            "per_op": {
                op: result.latency(op).as_dict()
                for op in result.metrics.op_types()
            },
            "excused_windows": sorted(excused),
            "slo": [r.as_dict() for r in verdicts],
            "critical_path_updates": len(breakdowns),
            "timeline": timeline.as_dicts(),
        }
        if injector is not None:
            entry["fault_summary"] = injector.summary()
        report["systems"][system] = entry

        if not args.json:
            tails = Table(
                ["op", "n", "p50", "p99", "p999", "max"],
                title=f"{system} / {args.workload}: op latency tails",
            )
            for op in result.metrics.op_types():
                stats = result.latency(op)
                tails.add_row(
                    op,
                    stats.count,
                    fmt_time(stats.p50),
                    fmt_time(stats.p99),
                    fmt_time(stats.p999),
                    fmt_time(stats.max),
                )
            tails.print()
            per_shard = result.extras.get("mds_per_shard")
            if per_shard:
                shard_table = Table(
                    ["shard", "svc_p50", "svc_p99", "svc_p999"],
                    title=f"{system}: metadata shard service tails",
                )
                for row in per_shard:
                    shard_table.add_row(
                        row["shard"],
                        fmt_time(row["svc_p50"]),
                        fmt_time(row["svc_p99"]),
                        fmt_time(row["svc_p999"]),
                    )
                shard_table.print()
            if breakdowns:
                critical_path_table(
                    breakdowns,
                    title=f"{system}: critical path, slowest decile "
                    "vs median cohort",
                ).print()
            if spec is not None:
                slo_table(
                    verdicts,
                    title=f"SLO: {system}",
                    excused_windows=len(excused),
                ).print()
            if args.timeline:
                timeline.table(title=f"{system} timeline").print()
        if args.trace:
            path = (
                _trace_path(args.trace, system)
                if len(systems) > 1
                else args.trace
            )
            count = write_chrome_trace(
                obs.tracer,
                path,
                extra_events=timeline_counter_events(timeline),
            )
            print(
                f"wrote {count} trace events (incl. SLO counter "
                f"tracks) to {path}",
                file=sys.stderr,
            )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote SLO report to {args.out}", file=sys.stderr)
    return 1 if violated else 0


def _load_harness() -> _t.Any:
    """Import ``benchmarks.harness``, tolerating source-tree layouts.

    The benchmarks directory sits next to ``src/`` rather than inside
    the package, so running from an installed ``repro`` needs the repo
    root pushed onto ``sys.path`` first.
    """
    try:
        from benchmarks import harness
    except ImportError:
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        if not (root / "benchmarks" / "harness.py").is_file():
            raise
        sys.path.insert(0, str(root))
        from benchmarks import harness
    return harness


def cmd_bench(args: argparse.Namespace) -> int:
    return _load_harness().run_from_args(args)


def cmd_figures(_args: argparse.Namespace) -> int:
    table = Table(["figure", "bench"], title="Paper figures -> benches")
    for fig, bench in FIGURES.items():
        table.add_row(fig, bench)
    table.print()
    print("\nRun one with: pytest <bench file> --benchmark-only -s")
    return 0


def cmd_crash(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import OpMetrics
    from repro.fs import ClusterConfig, RedbudCluster
    from repro.workloads.spec import WorkloadContext

    config = ClusterConfig(
        num_clients=args.clients,
        commit_mode=args.mode,
        space_delegation=(args.mode != "synchronous"),
    )
    cluster = RedbudCluster(config, seed=args.seed)
    env = cluster.env
    workload = WORKLOADS[args.workload]()
    shared: dict = {}
    contexts = [
        WorkloadContext(
            env=env,
            fs=cluster.clients[i],
            rng=cluster.root_rng.stream("wl", i),
            client_index=i,
            num_clients=args.clients,
            metrics=OpMetrics(),
            shared=shared,
        )
        for i in range(args.clients)
    ]
    setups = [env.process(workload.setup(ctx)) for ctx in contexts]
    env.run(until=env.all_of(setups))

    def forever(ctx, tid):
        while True:
            yield from workload.op(ctx, tid)

    for ctx in contexts:
        for tid in range(workload.threads_per_client):
            env.process(forever(ctx, tid))

    state = crash_cluster(cluster, at_time=env.now + args.at)
    print(
        f"crash at t={state.crash_time:.3f}s: lost "
        f"{state.lost_commit_records} commit records, "
        f"{state.lost_block_requests} in-flight block writes"
    )
    report = check_ordered_writes(
        state.namespace, state.stable, state.space
    )
    print(report.summary())
    for violation in report.violations[:5]:
        print(f"  - {violation.detail}")
    recovery = recover(state)
    print(
        f"recovery reclaimed {recovery.orphan_bytes_reclaimed} orphan "
        f"bytes; post-GC: {recovery.post_check.summary()}"
    )
    print(fsck(state.namespace, state.space).summary())
    return 0 if recovery.recovered_consistent else 1


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check import explore
    from repro.check.soak import seed_bug_tweak

    # Self-test hook: plant a deliberate bug (e.g. disable the MDS's
    # durable commit dedup table) and prove the checker finds it and
    # shrinks it to a minimal replayable schedule.
    tweak = seed_bug_tweak(args.seed_bug)
    report = explore(
        budget=args.budget,
        seed=args.seed,
        clients=args.clients,
        mode=args.mode,
        shards=args.shards,
        replication=args.replication,
        tweak=tweak,
        max_counterexamples=args.max_counterexamples,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    payload = report.as_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote report to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary())
        cov = report.coverage
        print(
            f"coverage: {len(cov['covered'])}/{len(cov['universe'])} "
            f"transition points"
            + (f" (missed: {', '.join(cov['missed'])})" if cov["missed"]
               else "")
        )
        for schedule in report.schedules:
            if not schedule["ok"]:
                print(
                    f"FAIL [{schedule['kind']}] {schedule['describe']} "
                    f"-> {', '.join(schedule['violation_kinds'])}"
                )
        for ce in report.counterexamples:
            d = ce.as_dict()
            print(
                f"counterexample ({d['minimal_clauses']} clauses, "
                f"{', '.join(d['kinds'])}): {d['minimal']}"
            )
            print(f"  replay: {d['replay']}")
        if args.seed_bug != "none" and report.counterexamples:
            print(
                f"note: schedules fail only with the seeded bug "
                f"({args.seed_bug}); the replay commands PASS on the "
                f"healthy system"
            )
    return 0 if report.ok else 1


def cmd_soak(args: argparse.Namespace) -> int:
    from repro.check.soak import run_soak

    if args.hours <= 0:
        print("error: --hours must be positive", file=sys.stderr)
        return 2
    out_fh = None
    if args.out:
        if err := _check_writable(args.out):
            print(err, file=sys.stderr)
            return 2
        out_fh = open(args.out, "w", encoding="utf-8")

    def emit(payload: _t.Dict[str, _t.Any]) -> None:
        line = json.dumps(payload, sort_keys=True)
        if out_fh is not None:
            out_fh.write(line + "\n")
            out_fh.flush()
        if args.json:
            print(line)

    try:
        report = run_soak(
            args.hours,
            seed=args.seed,
            intensity=args.intensity,
            clients=args.clients,
            shards=args.shards,
            replication=args.replication,
            scheduler=args.scheduler,
            seed_bug=args.seed_bug,
            emit=emit,
        )
    finally:
        if out_fh is not None:
            out_fh.close()
    if args.out:
        print(f"wrote JSONL report to {args.out}", file=sys.stderr)
    if not args.json:
        print(report.summary())
        for violation in report.violations:
            tag = (
                f"excused by faults {violation.excused_by}"
                if violation.excused
                else "UNEXCUSED"
            )
            print(
                f"  t={violation.time:.3f} [{violation.source}/"
                f"{violation.kind}] {violation.detail} -- {tag}"
            )
        if report.counterexample is not None:
            ce = report.counterexample
            print(f"counterexample window: {ce['schedule']}")
            if ce["minimal"] is not None:
                print(f"  minimal: {ce['minimal']}")
                print(f"  replay: {ce['replay']}")
            else:
                print(
                    "  (window did not reproduce on the short-horizon "
                    "harness; see the JSONL timeline)"
                )
        print("PASS" if report.ok else "FAIL")
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot a live sharded metadata cluster: one process per shard."""
    import os
    import subprocess

    os.makedirs(args.data_dir, exist_ok=True)
    children: _t.List[subprocess.Popen] = []
    addresses: _t.List[_t.List[_t.Any]] = []
    try:
        for shard in range(args.shards):
            cmd = [
                sys.executable,
                "-m",
                "repro",
                "serve-shard",
                "--shard",
                str(shard),
                "--shards",
                str(args.shards),
                "--data-dir",
                args.data_dir,
                "--port",
                "0",
                "--volume-size",
                str(args.volume_size),
                "--daemons",
                str(args.daemons),
                "--drop-every",
                str(args.drop_every),
            ]
            children.append(
                subprocess.Popen(
                    cmd,
                    stdout=subprocess.PIPE,
                    text=True,
                    bufsize=1,
                )
            )
        for shard, child in enumerate(children):
            assert child.stdout is not None
            while True:
                line = child.stdout.readline()
                if not line:
                    raise RuntimeError(
                        f"shard {shard} exited before READY "
                        f"(rc={child.poll()})"
                    )
                line = line.strip()
                if line.startswith("READY "):
                    fields = dict(
                        part.split("=", 1)
                        for part in line.split()[1:]
                    )
                    addresses.append(
                        ["127.0.0.1", int(fields["port"])]
                    )
                    print(line, flush=True)
                    break
        cluster = {
            "addresses": addresses,
            "shards": args.shards,
            "volume_size": args.volume_size,
        }
        cluster_path = os.path.join(args.data_dir, "cluster.json")
        with open(cluster_path, "w") as handle:
            json.dump(cluster, handle, indent=1)
        print(f"cluster up: {cluster_path}", flush=True)
        # Run until the shards exit (a `repro smoke` shutdown) or ^C.
        for child in children:
            child.wait()
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        for child in children:
            if child.poll() is None:
                child.terminate()
        for child in children:
            try:
                child.wait(timeout=5)
            except Exception:
                child.kill()


def cmd_serve_shard(args: argparse.Namespace) -> int:
    """Internal: run one metadata shard process (used by ``serve``)."""
    import asyncio

    from repro.rt.server import ShardConfig, serve_shard

    config = ShardConfig(
        shard=args.shard,
        shards=args.shards,
        data_dir=args.data_dir,
        port=args.port,
        volume_size=args.volume_size,
        num_daemons=args.daemons,
        drop_every=args.drop_every,
    )

    def ready(port: int) -> None:
        print(f"READY shard={args.shard} port={port}", flush=True)

    asyncio.run(serve_shard(config, ready=ready))
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    """Drive a workload against a live cluster and audit its state."""
    import asyncio
    import os

    from repro.rt.smoke import SmokeConfig, run_smoke

    cluster_path = os.path.join(args.data_dir, "cluster.json")
    try:
        with open(cluster_path) as handle:
            cluster = json.load(handle)
    except FileNotFoundError:
        print(
            f"error: {cluster_path} not found -- is `repro serve` "
            "running with this --data-dir?",
            file=sys.stderr,
        )
        return 2
    config = SmokeConfig(
        addresses=[(host, port) for host, port in cluster["addresses"]],
        data_dir=args.data_dir,
        shards=cluster["shards"],
        volume_size=cluster["volume_size"],
        clients=args.clients,
        files_per_client=args.files,
        file_size=args.file_size,
        seed=args.seed,
        timeout=args.timeout,
    )
    report = asyncio.run(run_smoke(config))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print(f"wrote smoke report to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(
            f"smoke: {config.clients} clients x {config.files_per_client} "
            f"files over {config.shards} shard(s): "
            f"{report['files_persisted']} files persisted, "
            f"{report['committed_bytes']} bytes committed"
        )
        for name, violations in sorted(report["oracles"].items()):
            state = "ok" if not violations else f"{len(violations)} violations"
            print(f"  oracle {name}: {state}")
            for detail in violations[:5]:
                print(f"    {detail}")
        print("PASS" if report["ok"] else "FAIL")
    return 0 if report["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Delayed Commit Protocol reproduction (CLUSTER 2012) -- "
            "simulated Redbud parallel file system"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--clients", type=int, default=7)
        p.add_argument("--seed", type=int, default=11)
        p.add_argument("--duration", type=float, default=3.0)
        p.add_argument(
            "--workload", choices=sorted(WORKLOADS), default="xcdn-32K"
        )

    p_run = sub.add_parser("run", help="run one workload on one system")
    common(p_run)
    p_run.add_argument("--system", choices=SYSTEMS, default="redbud-delayed")
    p_run.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    p_run.add_argument(
        "--trace",
        metavar="PATH",
        help="also record a causal trace (Chrome trace_event JSON)",
    )
    p_run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="metadata shards (redbud systems only; default "
        "%(default)s, which is byte-identical to the single MDS)",
    )
    p_run.add_argument(
        "--replication",
        choices=("none", "mirror3", "block4-2"),
        default="none",
        help="replicated storage group arrangement (redbud systems "
        "only; default %(default)s, which is byte-identical to the "
        "unreplicated array). mirror3/block4-2 also arm CURP "
        "witnesses on the delayed/unordered commit paths",
    )
    p_run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject faults (redbud systems only); comma-separated "
        "clauses: loss=P, delay=P:MAX, partition=CID@T0-T1, "
        "mds_restart@T:D[:shard=K], client_death=CID@T, "
        "shard_partition=K@T0-T1, disk_loss=M@T[:R], crash@T -- e.g. "
        "'loss=0.05,mds_restart@0.5:0.2,disk_loss=1@0.3:0.2' "
        "(disk_loss needs --replication)",
    )
    p_run.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="P",
        help="simulated client nodes to multiplex --clients workload "
        "personalities onto (aggregate clients; default: one node per "
        "client). --clients 10000 --processes 16 runs a 10k-client "
        "population on 16 nodes. Incompatible with --faults",
    )
    p_run.add_argument(
        "--scheduler",
        choices=("calendar", "heap"),
        default=None,
        help="event-calendar implementation (default calendar); both "
        "dispatch in the identical order, heap is the reference "
        "baseline for scaling comparisons",
    )
    p_run.add_argument(
        "--delegation-chunk",
        type=int,
        default=None,
        metavar="BYTES",
        help="space-delegation chunk size (default 16 MiB). Lower it "
        "for huge --clients runs: every client pools two chunks, so "
        "10000 clients need chunks small enough to fit the volume "
        "(e.g. 1048576)",
    )
    p_run.add_argument(
        "--slo",
        metavar="SPEC",
        default=None,
        help="judge the run against SLO rules "
        "('[op:]metric<=seconds', comma-separated, e.g. "
        "'write:p99<=0.05,*:p999<=0.5'); exit nonzero on violation. "
        "With --trace, fault-active windows are excused",
    )
    p_run.add_argument(
        "--check",
        action="store_true",
        help="after the run (and settling), run fsck + the full "
        "invariant suite (safety + convergence); exit nonzero on any "
        "violation (redbud systems only)",
    )
    p_run.add_argument(
        "--seed-bug",
        choices=("none", "dedup", "degrade"),
        default="none",
        help="deliberately plant a bug before running (self-tests; "
        "redbud systems only): 'dedup' disables the MDS commit dedup "
        "table, 'degrade' suppresses the delayed->sync reversion so "
        "clients stay degraded after faults heal",
    )
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run one workload on all systems")
    common(p_cmp)
    p_cmp.add_argument(
        "--json", action="store_true", help="emit the results as JSON"
    )
    p_cmp.add_argument(
        "--trace",
        metavar="PATH",
        help="record one causal trace per system (name suffixed)",
    )
    p_cmp.add_argument(
        "--slo",
        metavar="SPEC",
        default=None,
        help="judge every system against SLO rules; exit nonzero if "
        "any system violates (see `run --slo`)",
    )
    p_cmp.set_defaults(func=cmd_compare)

    p_slo = sub.add_parser(
        "slo",
        help="tail-latency report: per-op quantiles, SLO verdicts, "
        "critical-path breakdown, fault-annotated timeline",
    )
    common(p_slo)
    p_slo.add_argument(
        "--systems",
        default="redbud-delayed,nfs3",
        help="comma-separated systems to run (default %(default)s)",
    )
    p_slo.add_argument(
        "--slo",
        metavar="SPEC",
        default=None,
        help="SLO rules '[op:]metric<=seconds' (comma-separated); "
        "metrics: p50 p90 p95 p99 p999 mean max; omit to report "
        "tails without verdicts",
    )
    p_slo.add_argument(
        "--shards",
        type=int,
        default=1,
        help="metadata shards (redbud systems only)",
    )
    p_slo.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject faults (redbud systems only; same clauses as "
        "`run --faults`); fault-active windows are excused from "
        "SLO evaluation",
    )
    p_slo.add_argument(
        "--timeline",
        action="store_true",
        help="print the windowed telemetry timeline",
    )
    p_slo.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Perfetto trace with SLO counter tracks "
        "(name suffixed per system when several run)",
    )
    p_slo.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    p_slo.add_argument(
        "--out", metavar="PATH", help="also write the JSON report here"
    )
    p_slo.set_defaults(func=cmd_slo)

    p_trace = sub.add_parser(
        "trace", help="run with causal tracing and export span trees"
    )
    common(p_trace)
    p_trace.add_argument(
        "--system", choices=SYSTEMS, default="redbud-delayed"
    )
    p_trace.add_argument(
        "--out", default="trace.json", help="output path (default %(default)s)"
    )
    p_trace.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome: Perfetto-loadable trace_event JSON; jsonl: one "
        "span/instant per line",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="run with metrics and print the registry"
    )
    common(p_stats)
    p_stats.add_argument(
        "--system", choices=SYSTEMS, default="redbud-delayed"
    )
    p_stats.add_argument(
        "--json", action="store_true", help="emit the snapshot as JSON"
    )
    p_stats.set_defaults(func=cmd_stats)

    p_fig = sub.add_parser("figures", help="list figure benches")
    p_fig.set_defaults(func=cmd_figures)

    try:
        harness = _load_harness()
    except ImportError:  # installed without the benchmarks tree
        harness = None
    if harness is not None:
        p_bench = sub.add_parser(
            "bench",
            help="parallel, cached benchmark sweeps -> BENCH_sim.json",
        )
        harness.add_bench_arguments(p_bench)
        p_bench.set_defaults(func=cmd_bench)

    p_crash = sub.add_parser("crash", help="crash + verify + recover")
    common(p_crash)
    p_crash.add_argument(
        "--mode",
        choices=("synchronous", "delayed", "unordered"),
        default="delayed",
    )
    p_crash.add_argument(
        "--at", type=float, default=0.3, help="crash after this many seconds"
    )
    p_crash.set_defaults(func=cmd_crash)

    p_check = sub.add_parser(
        "check",
        help="crash-schedule exploration + invariant checking + "
        "counterexample shrinking",
    )
    p_check.add_argument(
        "--budget",
        type=int,
        default=200,
        help="schedules to explore (default %(default)s)",
    )
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument("--clients", type=int, default=3)
    p_check.add_argument(
        "--shards",
        type=int,
        default=1,
        help="metadata shards for every explored cluster (default "
        "%(default)s); >1 adds shard-aware nemesis clauses and the "
        "cross-shard disjointness oracle",
    )
    p_check.add_argument(
        "--replication",
        choices=("none", "mirror3", "block4-2"),
        default="none",
        help="replicated storage group for every explored cluster "
        "(default %(default)s); mirror3/block4-2 add disk-loss "
        "nemesis clauses, CURP witnesses, and the replica-divergence "
        "oracle",
    )
    p_check.add_argument(
        "--mode",
        choices=("synchronous", "delayed", "unordered"),
        default="delayed",
        help="commit-protocol scope to check (unordered is the "
        "deliberately broken control)",
    )
    p_check.add_argument(
        "--max-counterexamples",
        type=int,
        default=3,
        help="failures to shrink (default %(default)s)",
    )
    p_check.add_argument(
        "--seed-bug",
        choices=("none", "dedup", "degrade"),
        default="none",
        help="deliberately seed a bug (self-test): 'dedup' disables "
        "the MDS commit dedup table, 'degrade' suppresses the "
        "delayed->sync reversion",
    )
    p_check.add_argument(
        "--out", metavar="PATH", help="write the JSON report here"
    )
    p_check.add_argument(
        "--json", action="store_true", help="print the JSON report"
    )
    p_check.set_defaults(func=cmd_check)

    p_soak = sub.add_parser(
        "soak",
        help="long-horizon soak: tracked nemesis + continuous "
        "liveness/safety oracles + counterexample shrinking",
    )
    p_soak.add_argument(
        "--hours",
        type=float,
        default=2.0,
        help="virtual hours of soak (default %(default)s)",
    )
    p_soak.add_argument("--seed", type=int, default=0)
    p_soak.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="nemesis action rate multiplier (default %(default)s: "
        "one action per ~30 virtual seconds)",
    )
    p_soak.add_argument("--clients", type=int, default=4)
    p_soak.add_argument(
        "--shards",
        type=int,
        default=1,
        help="metadata shards; >1 adds shard-partition and "
        "shard-targeted restart nemesis families",
    )
    p_soak.add_argument(
        "--replication",
        choices=("none", "mirror3", "block4-2"),
        default="none",
        help="replicated storage group; mirror3/block4-2 add the "
        "disk-loss/readmit nemesis family and the re-silvering "
        "liveness oracle",
    )
    p_soak.add_argument(
        "--scheduler",
        choices=("calendar", "heap"),
        default=None,
        help="event-calendar implementation (default calendar)",
    )
    p_soak.add_argument(
        "--seed-bug",
        choices=("none", "dedup", "degrade"),
        default="none",
        help="deliberately plant a bug (self-test): 'degrade' "
        "suppresses the delayed->sync reversion, which only the "
        "liveness oracles can see",
    )
    p_soak.add_argument(
        "--out",
        metavar="PATH",
        help="write the incremental JSONL timeline (inject/heal/"
        "violation/sweep events + final summary) here",
    )
    p_soak.add_argument(
        "--json",
        action="store_true",
        help="print the JSONL timeline to stdout",
    )
    p_soak.set_defaults(func=cmd_soak)

    p_serve = sub.add_parser(
        "serve",
        help="boot a live sharded metadata cluster on localhost "
        "(one asyncio process per shard, real TCP)",
    )
    p_serve.add_argument("--shards", type=int, default=2)
    p_serve.add_argument(
        "--data-dir",
        default="./repro-data",
        help="volume file, cluster.json and shard dumps live here",
    )
    p_serve.add_argument(
        "--volume-size", type=int, default=256 * 1024 * 1024
    )
    p_serve.add_argument("--daemons", type=int, default=4)
    p_serve.add_argument(
        "--drop-every",
        type=int,
        default=0,
        help="drop every Nth request frame before delivery (0 = off): "
        "forces real retransmissions through the retry machinery",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_shard = sub.add_parser(
        "serve-shard", help="internal: one shard process of `serve`"
    )
    p_shard.add_argument("--shard", type=int, required=True)
    p_shard.add_argument("--shards", type=int, required=True)
    p_shard.add_argument("--data-dir", required=True)
    p_shard.add_argument("--port", type=int, default=0)
    p_shard.add_argument(
        "--volume-size", type=int, default=256 * 1024 * 1024
    )
    p_shard.add_argument("--daemons", type=int, default=4)
    p_shard.add_argument("--drop-every", type=int, default=0)
    p_shard.set_defaults(func=cmd_serve_shard)

    p_smoke = sub.add_parser(
        "smoke",
        help="drive the delayed-commit client stack against a live "
        "`serve` cluster, shut it down, and run the fsck/exactly-once/"
        "data-pattern oracle subset on its on-disk state",
    )
    p_smoke.add_argument("--data-dir", default="./repro-data")
    p_smoke.add_argument("--clients", type=int, default=4)
    p_smoke.add_argument(
        "--files", type=int, default=6, help="files per client"
    )
    p_smoke.add_argument("--file-size", type=int, default=32 * 1024)
    p_smoke.add_argument("--seed", type=int, default=11)
    p_smoke.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="workload deadline in real seconds",
    )
    p_smoke.add_argument(
        "--report", metavar="PATH", help="write the JSON report here"
    )
    p_smoke.add_argument("--json", action="store_true")
    p_smoke.set_defaults(func=cmd_smoke)
    return parser


def main(argv: _t.Optional[_t.List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
