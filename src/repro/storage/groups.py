"""Replicated storage groups: mirror and erasure arrangements.

A *storage group* puts ``n`` replica members behind the shared disk
array.  Every extent that becomes stable on the primary fans out to all
live members (full-mirror semantics for ``mirror3``; for ``block4-2``
each member durably holds its shard of the stripe, and a logical range
is recoverable exactly when at least ``k = 4`` members still hold it --
the MDS property of the Reed-Solomon code in
:mod:`repro.storage.erasure`).  Either way the quorum rule is uniform:

    a logical range survives iff >= ``data`` members that hold it are
    still alive,

with ``data = 1`` for mirrors and ``data = 4`` for ``block4-2``.

Members die via the ``disk_loss=<member>@T`` fault clause: the member's
durable set is destroyed outright (this is a *disk* loss, not a network
partition).  An optional rebuild window readmits the member, which
re-silvers by copying the group's recoverable set -- the same routine
post-crash repair uses to bring survivors back into agreement, which is
what the replica-divergence oracle in :mod:`repro.check.oracle` checks.

Replication costs an ack delay per stable write (the slowest live
secondary's ack), drawn from the group's own named RNG stream so an
unreplicated cluster's draw sequences are untouched.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.util.intervals import IntervalSet

if _t.TYPE_CHECKING:
    from repro.core.effects import Effects

__all__ = [
    "Arrangement",
    "ARRANGEMENTS",
    "arrangement_named",
    "ReplicaMember",
    "StorageGroup",
]


@dataclass(frozen=True)
class Arrangement:
    """Geometry and fault budget of one replication scheme."""

    name: str
    #: Total members in the group.
    size: int
    #: Members that must hold a range for it to be recoverable
    #: (mirror: 1; block erasure: the data-shard count k).
    data: int
    #: Simultaneous member losses the group survives by design.
    tolerates: int

    @property
    def parity(self) -> int:
        return self.size - self.data


#: The supported arrangements, YDB-style: a 3-way mirror and a 4+2
#: block erasure group.  ``none`` is the degenerate single-copy case
#: (no group is constructed for it; it exists so config validation and
#: the CLI have one source of truth for the axis values).
ARRANGEMENTS: _t.Dict[str, Arrangement] = {
    "none": Arrangement("none", size=1, data=1, tolerates=0),
    "mirror3": Arrangement("mirror3", size=3, data=1, tolerates=2),
    "block4-2": Arrangement("block4-2", size=6, data=4, tolerates=2),
}


def arrangement_named(name: str) -> Arrangement:
    try:
        return ARRANGEMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown replication arrangement {name!r}; choose from "
            f"{sorted(ARRANGEMENTS)}"
        ) from None


@dataclass
class ReplicaMember:
    """One member disk of a storage group."""

    member_id: int
    alive: bool = True
    #: Logical volume ranges this member durably holds.
    durable: IntervalSet = field(default_factory=IntervalSet)
    bytes_written: int = 0
    losses: int = 0


class StorageGroup:
    """A replicated group fanning stable extent writes to its members.

    The simulator models replication at extent granularity: members
    track *which logical ranges* they hold (an :class:`IntervalSet`
    each), not shard bytes.  The byte-level stripe math lives in
    :mod:`repro.storage.erasure` and is exercised by the property
    tests; :meth:`stripe_shares` exposes it for block arrangements.
    """

    #: Secondary ack latency bounds (seconds of virtual time).  Small
    #: against disk service times: replica acks overlap the commit
    #: pipeline rather than dominating it.
    ACK_MIN = 0.00008
    ACK_MAX = 0.00040

    def __init__(
        self,
        env: "Effects",
        arrangement: Arrangement,
        rng,
        obs=None,
    ) -> None:
        if arrangement.size < 2:
            raise ValueError(
                f"arrangement {arrangement.name!r} has nothing to "
                f"replicate to (size {arrangement.size})"
            )
        self.env = env
        self.arrangement = arrangement
        self.rng = rng
        self.obs = obs
        self.members = [
            ReplicaMember(member_id=i) for i in range(arrangement.size)
        ]
        # Counters surfaced as storage.group.* gauges.
        self.replicated_bytes = 0
        self.resilvered_bytes = 0
        self.degraded_writes = 0
        self.losses = 0
        self.readmissions = 0
        #: Virtual time the most recent re-silver completed (None until
        #: the first readmission).  Liveness oracles compare this against
        #: the triggering disk_loss heal to confirm the rebuild finished.
        self.last_resilver_at: _t.Optional[float] = None

    # -- geometry ---------------------------------------------------------

    @property
    def size(self) -> int:
        return self.arrangement.size

    @property
    def alive_count(self) -> int:
        return sum(1 for m in self.members if m.alive)

    def stripe_shares(self, data: bytes) -> _t.List[bytes]:
        """Byte-level shares of one stripe under this arrangement."""
        from repro.storage import erasure

        k, m = self.arrangement.data, self.arrangement.parity
        if k == 1:
            return [bytes(data)] * self.arrangement.size
        return erasure.encode_stripe(data, k=k, m=m)

    # -- the write fan-out ------------------------------------------------

    def replicate(self, start: int, end: int) -> float:
        """Record a stable primary write on every live member.

        Returns the extra ack delay the disk array must wait before
        completing the request: the slowest live secondary's ack.
        """
        length = end - start
        secondaries = 0
        for member in self.members:
            if not member.alive:
                continue
            member.durable.add(start, end)
            member.bytes_written += length
            if member.member_id != 0:
                secondaries += 1
        self.replicated_bytes += length * max(1, self.alive_count)
        if self.alive_count < self.size:
            self.degraded_writes += 1
        if secondaries == 0:
            return 0.0
        return max(
            self.rng.uniform(self.ACK_MIN, self.ACK_MAX)
            for _ in range(secondaries)
        )

    # -- failure and repair ----------------------------------------------

    def lose(self, member_id: int) -> None:
        """Destroy one member's disk: its replica is gone, not paused."""
        member = self.members[member_id]
        if not member.alive:
            return
        member.alive = False
        member.durable.clear()
        member.losses += 1
        self.losses += 1
        if self.alive_count < self.arrangement.data:
            raise RuntimeError(
                f"group {self.arrangement.name}: {self.losses} losses "
                f"exceed the fault budget (data quorum "
                f"{self.arrangement.data} of {self.size})"
            )

    def readmit(self, member_id: int) -> int:
        """Bring a lost member back empty and re-silver it.

        Returns the number of bytes copied during the re-silver.
        """
        member = self.members[member_id]
        if member.alive:
            return 0
        member.alive = True
        member.durable = IntervalSet()
        copied = self._resilver(member)
        self.readmissions += 1
        self.last_resilver_at = self.env.now
        return copied

    def _resilver(self, member: ReplicaMember) -> int:
        recoverable = self.recoverable_set(exclude=member.member_id)
        copied = 0
        for start, end in recoverable:
            member.durable.add(start, end)
            copied += end - start
        self.resilvered_bytes += copied
        return copied

    def repair(self) -> int:
        """Re-silver every live member up to the recoverable set.

        Post-recovery convergence: after this, all live members agree
        (the replica-divergence invariant).  Returns bytes copied.
        """
        recoverable = self.recoverable_set()
        copied = 0
        for member in self.members:
            if not member.alive:
                continue
            for start, end in recoverable:
                if not member.durable.contains(start, end):
                    missing = end - start - member.durable.intersection(
                        start, end
                    ).total()
                    copied += missing
                    member.durable.add(start, end)
        self.resilvered_bytes += copied
        return copied

    # -- quorum math ------------------------------------------------------

    def recoverable_set(
        self, exclude: _t.Optional[int] = None
    ) -> IntervalSet:
        """Ranges held by at least ``data`` live members.

        ``exclude`` drops one member from consideration (used while
        re-silvering that member from the others).
        """
        holders = [
            m.durable
            for m in self.members
            if m.alive and m.member_id != exclude
        ]
        need = self.arrangement.data
        out = IntervalSet()
        if len(holders) < need:
            return out
        points = sorted(
            {p for ds in holders for span in ds for p in span}
        )
        for a, b in zip(points, points[1:]):
            count = sum(1 for ds in holders if ds.contains(a, b))
            if count >= need:
                out.add(a, b)
        return out

    def divergent_members(self) -> _t.List[_t.Tuple[int, int]]:
        """Pairs of live members whose durable sets disagree."""
        live = [m for m in self.members if m.alive]
        return [
            (a.member_id, b.member_id)
            for i, a in enumerate(live)
            for b in live[i + 1:]
            if a.durable != b.durable
        ]

    def summary(self) -> _t.Dict[str, _t.Any]:
        return {
            "arrangement": self.arrangement.name,
            "members": self.size,
            "alive": self.alive_count,
            "losses": self.losses,
            "readmissions": self.readmissions,
            "replicated_bytes": self.replicated_bytes,
            "resilvered_bytes": self.resilvered_bytes,
            "degraded_writes": self.degraded_writes,
        }
