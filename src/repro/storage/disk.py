"""Mechanical disk model and the shared disk-array server.

The array is the one the paper's clients reach over 4 Gb Fibre Channel:
a RAID of several **spindles** behind one controller.  The flat volume
address space is striped across the spindles; each spindle services at
most one request at a time, so the array sustains ``num_spindles``
concurrent operations -- the parallelism a real FC array provides.

Service of a dispatched request decomposes, as in Fig. 1, into::

    seek time + rotational delay + transfer time

per spindle, with the seek component a concave (square-root) function of
that spindle's head travel.  Requests sequential with the spindle's
previous one pay neither seek nor rotation -- which is exactly why the
merging and space-delegation techniques of the paper help: they turn
many scattered small operations into few sequential large ones.

Each spindle arbitrates round-robin across the per-client elevator
queues (FC fairness), picking only requests whose addresses stripe onto
it.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.util.rng import StreamRNG
from repro.storage.blktrace import BlkTrace
from repro.storage.scheduler import (
    READ,
    WRITE,
    BlockRequest,
    ElevatorScheduler,
)
from repro.util.intervals import IntervalSet

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical and channel characteristics of the shared array.

    Defaults approximate the paper's FC disk array: four spindles behind
    a 4 Gb FC fabric, each sustaining ~90 MB/s sequentially with
    single-digit-millisecond seeks (7200 RPM class drives).
    """

    #: Flat volume capacity in bytes (address space for allocation).
    volume_size: int = 64 * 1024 * 1024 * 1024
    #: Number of spindles the volume is striped across.  FC arrays of
    #: the paper's era held shelves of drives; sixteen keeps the
    #: simulated array from becoming the universal bottleneck the real
    #: one wasn't.
    num_spindles: int = 16
    #: RAID-0 stripe unit in bytes.  Logical addresses rotate across
    #: spindles every stripe; each spindle's own stripes are physically
    #: contiguous (see :meth:`spindle_local`), so a logically sequential
    #: stream is sequential on every spindle it touches.  Small enough
    #: that one client's active write region does not pin one spindle.
    stripe: int = 256 * 1024
    #: Sustained sequential transfer rate per spindle, bytes/second.
    transfer_rate: float = 90e6
    #: Fixed cost of any non-sequential repositioning (settle), seconds.
    seek_base: float = 0.0008
    #: Additional full-stroke seek cost, seconds; scaled by sqrt(distance).
    seek_max_extra: float = 0.0075
    #: One rotation period, seconds (7200 RPM); average wait is half.
    rotation_period: float = 0.00833
    #: Per-request controller/command overhead, seconds.
    command_overhead: float = 0.00005
    #: Accesses within this distance of the head ride the track buffer /
    #: short-seek optimisation: rotation cost is quartered.  Clustered
    #: writes (nearby allocation) are much cheaper than far seeks.
    near_threshold: int = 1024 * 1024
    #: Block-layer write plugging: an *async* (writeback) write is held
    #: this long so contiguous submissions can merge into it before
    #: dispatch, standing in for the kernel's periodic-writeback
    #: batching.  Sync writes and reads are never plugged.
    write_plug: float = 0.012

    def seek_time(self, distance: int) -> float:
        """Head travel time for a move of ``distance`` bytes."""
        if distance <= 0:
            return 0.0
        frac = min(1.0, distance / self.volume_size)
        return self.seek_base + self.seek_max_extra * (frac**0.5)

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.transfer_rate

    def spindle_of(self, address: int) -> int:
        """Owning spindle of a volume address.

        Within each *row* (one stripe per spindle) the stripe-to-spindle
        assignment is rotated by a per-row hash.  Plain modulo striping
        would align every power-of-two-sized allocation (16 MB delegated
        chunks, 8 GB allocation groups) onto spindle 0 and turn one
        spindle into a hotspot; rotated striping -- as real array
        controllers do -- spreads them.
        """
        n = self.num_spindles
        row = address // (self.stripe * n)
        idx = (address // self.stripe) % n
        return (idx + _row_rotation(row)) % n

    def spindle_local(self, address: int) -> int:
        """Physical address on the owning spindle.

        Every row places exactly one of its stripes on each spindle
        (rotation permutes, never doubles up), so stripe rows pack
        contiguously on each spindle's platters -- the standard RAID-0
        layout.  Seek distances are computed in this space, which is why
        a logically sequential stream costs no seeks even though it
        rotates across spindles.
        """
        full_rows = address // (self.stripe * self.num_spindles)
        return full_rows * self.stripe + (address % self.stripe)


def _row_rotation(row: int) -> int:
    """Deterministic per-row rotation; mixes bits so power-of-two row
    indices do not collapse onto one rotation value."""
    h = row ^ (row >> 3)
    h = (h * 0x9E3779B1) & 0xFFFFFFFF
    return h >> 16


class DiskArray:
    """The shared multi-spindle disk array serving every client's queue.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        Mechanical model parameters.
    rng:
        Stream for rotational-latency draws.
    trace:
        Optional :class:`~repro.storage.blktrace.BlkTrace` collector.
    """

    def __init__(
        self,
        env: "Effects",
        params: DiskParameters,
        rng: StreamRNG,
        trace: _t.Optional[BlkTrace] = None,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        if params.num_spindles <= 0:
            raise ValueError(f"need at least one spindle: {params}")
        self.env = env
        self.params = params
        #: The striping function bound once: ``params.spindle_of``
        #: manufactures a fresh bound method per attribute access, which
        #: defeats both the per-call cost and the schedulers' identity
        #: check on their installed spindle map.
        self._spindle_of = params.spindle_of
        self.rng = rng
        self.trace = trace
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self._schedulers: _t.List[ElevatorScheduler] = []
        n = params.num_spindles
        self._heads = [0] * n  # logical, for C-LOOK ordering
        self._local_heads = [0] * n  # physical, for seek distances
        self._rr_index = [0] * n
        #: Consecutive reads served per spindle (write-starvation bound).
        self._read_streak = [0] * n
        #: Serve at most this many reads in a row while writes wait (the
        #: Linux deadline scheduler's ``writes_starved`` knob).  One
        #: alternates read and write rounds whenever both are pending,
        #: bounding how long a synchronous writer or a reader can stall
        #: behind the other class.
        self.write_starvation_limit = 1
        self._wakeups = [env.event() for _ in range(n)]
        self._processes = [
            env.process(self._serve(spindle), name=f"spindle-{spindle}")
            for spindle in range(n)
        ]
        #: Totals across the run.
        self.ops_served = 0
        self.bytes_served = 0
        self.busy_time = 0.0
        #: Volume ranges whose data is durable (ground truth for the
        #: ordered-writes invariant checker).  A write becomes stable only
        #: when its service completes; queued/in-flight writes are lost on
        #: a crash.
        self.stable = IntervalSet()
        #: Requests dispatched to a spindle whose service has not yet
        #: completed (at most one per spindle).  These sit on the lost
        #: side of the crash boundary together with queued requests.
        self.in_flight: _t.List[BlockRequest] = []
        #: Per-``(client, shard)`` fence generation (DESIGN §8).  A
        #: WRITE whose ``write_generation`` is below its client's entry
        #: for the shard owning its volume range is rejected at command
        #: level -- the persistent-reservation fencing that makes lease
        #: reclamation safe against a reclaimed-but-alive client still
        #: flushing writeback.  A single-MDS deployment only ever uses
        #: shard 0.
        self.fence_generations: _t.Dict[_t.Tuple[int, int], int] = {}
        self.fenced_writes = 0
        #: Metadata-shard slicing of the volume: shard ``k`` owns
        #: ``[k * slice, (k+1) * slice)``.  One shard (the default)
        #: means every offset maps to shard 0.
        self._num_shards = 1
        self._shard_slice_size = 0
        #: Optional replicated storage group
        #: (:class:`repro.storage.groups.StorageGroup`).  ``None`` -- the
        #: default, and the only state for ``replication=none`` -- keeps
        #: the serve loop byte-identical to an unreplicated array.
        self.group = None

    def configure_shards(self, num_shards: int, slice_size: int) -> None:
        """Install the shard -> volume-slice map (sharded metadata)."""
        if num_shards < 1 or (num_shards > 1 and slice_size <= 0):
            raise ValueError(
                f"bad shard geometry: {num_shards} x {slice_size}"
            )
        self._num_shards = num_shards
        self._shard_slice_size = slice_size

    def shard_of_offset(self, offset: int) -> int:
        """Metadata shard owning a volume offset (0 when unsharded)."""
        if self._num_shards == 1:
            return 0
        return min(
            self._num_shards - 1, offset // self._shard_slice_size
        )

    def fence(self, client_id: int, shard: int = 0) -> int:
        """Revoke ``client_id``'s write access on ``shard``'s slice.

        Called by the shard's lease garbage collector after reclaiming
        the client's uncommitted space; every data write the client
        issued before learning of the revocation (it may be alive
        behind a partition) now bounces off the array instead of
        landing on possibly re-allocated blocks.  Returns the new
        generation.
        """
        key = (client_id, shard)
        gen = self.fence_generations.get(key, 0) + 1
        self.fence_generations[key] = gen
        if self.obs is not None:
            self.obs.tracer.instant(
                "array_fence", "fault", node="array", actor="array",
                client=client_id, shard=shard, generation=gen,
            )
            self.obs.registry.counter("array.fences").inc()
        return gen

    def write_fenced(self, request: BlockRequest) -> bool:
        """Whether ``request`` is a WRITE behind its client's fence."""
        if request.op != WRITE:
            return False
        shard = self.shard_of_offset(request.start)
        return request.write_generation < self.fence_generations.get(
            (request.client_id, shard), 0
        )

    # -- wiring ---------------------------------------------------------------

    def attach(self, scheduler: ElevatorScheduler) -> None:
        """Register a client's elevator queue with the array."""
        scheduler.on_submit = self._notify
        scheduler.set_spindle_map(self._spindle_of)
        self._schedulers.append(scheduler)

    def attach_group(self, group) -> None:
        """Arm a replicated storage group: every completed WRITE fans
        out to the group's members before it counts as stable, and the
        slowest live secondary's ack gates the completion."""
        self.group = group

    def _notify(self) -> None:
        for wakeup in self._wakeups:
            if not wakeup.triggered:
                wakeup.succeed()

    # -- service loops -----------------------------------------------------------

    def _pop_rr(
        self, spindle: int, op: _t.Optional[str]
    ) -> _t.Optional[BlockRequest]:
        """One round-robin pass over client queues for ``op`` requests."""
        schedulers = self._schedulers
        n = len(schedulers)
        spindle_of = self._spindle_of
        head = self._heads[spindle]
        write_plug = self.params.write_plug
        base = self._rr_index[spindle]
        for offset in range(n):
            idx = (base + offset) % n
            request = schedulers[idx].pop_next_for_spindle(
                head,
                spindle,
                spindle_of,
                op=op,
                write_plug=write_plug,
            )
            if request is not None:
                self._rr_index[spindle] = (idx + 1) % n
                return request
        return None

    def _next_request(
        self, spindle: int
    ) -> _t.Optional[BlockRequest]:
        """Deadline-scheduler pick: prefer reads, bound write starvation.

        Synchronous reads block applications while queued writes are
        asynchronous writeback, so reads go first -- except after
        ``write_starvation_limit`` consecutive reads, when one write
        round is forced.
        """
        if self._read_streak[spindle] >= self.write_starvation_limit:
            request = self._pop_rr(spindle, WRITE)
            if request is not None:
                self._read_streak[spindle] = 0
                return request
        request = self._pop_rr(spindle, READ)
        if request is not None:
            self._read_streak[spindle] += 1
            return request
        request = self._pop_rr(spindle, None)
        if request is not None:
            self._read_streak[spindle] = 0
        return request

    def _earliest_plug_expiry(self, spindle: int) -> _t.Optional[float]:
        earliest: _t.Optional[float] = None
        spindle_of = self._spindle_of
        write_plug = self.params.write_plug
        for sched in self._schedulers:
            ready = sched.earliest_plug_expiry(
                spindle, spindle_of, write_plug
            )
            if ready is not None and (earliest is None or ready < earliest):
                earliest = ready
        return earliest

    def _serve(self, spindle: int) -> _t.Generator:
        env = self.env
        while True:
            request = self._next_request(spindle)
            if request is None:
                # Nothing dispatchable.  Sleep until a new submission
                # arrives -- or, if plugged writes are pending, until the
                # oldest unplugs, whichever comes first (a newly arrived
                # sync request must not wait out a write plug).
                self._wakeups[spindle] = env.event()
                plug_ready = self._earliest_plug_expiry(spindle)
                if plug_ready is not None:
                    delay = max(0.0, plug_ready - env.now) + 1e-9
                    yield env.any_of(
                        [env.timeout(delay), self._wakeups[spindle]]
                    )
                else:
                    yield self._wakeups[spindle]
                continue

            fenced = self.write_fenced(request)
            if fenced:
                # Rejected at command level: the controller validates the
                # reservation before any mechanical work, so the request
                # pays only command overhead, moves no head, and -- the
                # point of fencing -- never reaches the platters.
                service = self.params.command_overhead
                seek_distance = 0
            else:
                service, seek_distance = self.service_time(
                    spindle, request
                )
            # Dispatched but not yet durable: if the cluster dies now,
            # this request is lost (crash_cluster counts it alongside
            # still-queued requests).  It leaves in_flight only after its
            # service completes and writes are in the stable set.
            self.in_flight.append(request)
            dispatch_span = None
            if self.obs is not None:
                dispatch_span = self.obs.tracer.begin(
                    "disk_dispatch",
                    "blk",
                    node="array",
                    actor=f"spindle-{spindle}",
                    update_ids=request.trace_updates(),
                    op=request.op,
                    start=request.start,
                    length=request.length,
                    seek=seek_distance,
                    client=request.client_id,
                )
            start = env.now
            yield env.timeout(service)
            self.busy_time += env.now - start

            if fenced:
                self.fenced_writes += 1
                if self.obs is not None:
                    self.obs.tracer.instant(
                        "write_fenced", "fault", node="array",
                        actor=f"spindle-{spindle}",
                        update_ids=request.trace_updates(),
                        client=request.client_id,
                        start=request.start,
                        length=request.length,
                    )
                    self.obs.registry.counter("array.fenced_writes").inc()
                if dispatch_span is not None:
                    self.obs.tracer.end(dispatch_span, fenced=True)
                self.in_flight.remove(request)
                # The completion still fires (the command returned, with
                # an error status); the client side of error handling is
                # out of scope -- what matters is the data never landed.
                request.complete_all()
                continue

            self._heads[spindle] = request.end
            self._local_heads[spindle] = (
                self.params.spindle_local(request.end - 1) + 1
            )
            self.ops_served += 1
            self.bytes_served += request.length
            if request.op == WRITE:
                if self.group is not None:
                    # Replicated group: fan the extent to every live
                    # member and wait out the slowest secondary ack
                    # before the write counts as stable/complete.
                    extra = self.group.replicate(
                        request.start, request.end
                    )
                    if extra > 0.0:
                        yield env.timeout(extra)
                self.stable.add(request.start, request.end)
            if self.trace is not None:
                self.trace.record(
                    time=env.now,
                    op=request.op,
                    start=request.start,
                    length=request.length,
                    seek_distance=seek_distance,
                    client_id=request.client_id,
                    queued=request.count_all(),
                )
            if dispatch_span is not None:
                self.obs.tracer.end(dispatch_span)
            self.in_flight.remove(request)
            request.complete_all()

    def service_time(
        self, spindle: int, request: BlockRequest
    ) -> _t.Tuple[float, int]:
        """Return (service seconds, seek distance bytes) for ``request``.

        The seek distance is measured in the spindle's local (physical)
        address space; heads are tracked logically (for C-LOOK ordering)
        and mapped here.
        """
        distance = abs(
            self.params.spindle_local(request.start)
            - self._local_heads[spindle]
        )
        service = self.params.command_overhead + self.params.transfer_time(
            request.length
        )
        if distance > 0:
            service += self.params.seek_time(distance)
            rotation = self.params.rotation_period
            if distance < self.params.near_threshold:
                rotation /= 4.0  # track buffer / short-seek optimisation
            service += self.rng.uniform(0.0, rotation)
        return service, distance

    @property
    def head_position(self) -> int:
        """Head of spindle 0 (kept for single-spindle tests)."""
        return self._heads[0]

    @property
    def utilization(self) -> float:
        """Mean per-spindle busy fraction of elapsed virtual time."""
        if self.env.now <= 0:
            return 0.0
        return self.busy_time / (self.env.now * self.params.num_spindles)