"""Reed-Solomon erasure coding over GF(2^8) for block arrangements.

The ``block4-2`` storage-group arrangement stripes each extent across
six members: four data shards plus two parity shards, any four of which
reconstruct the stripe.  The code here is a classic systematic
Cauchy-matrix Reed-Solomon construction (Jerasure-style): the encoding
matrix is ``[I_k ; C]`` where ``C[i][j] = 1 / (x_i ^ y_j)`` with the
``x_i`` and ``y_j`` drawn from disjoint subsets of the field.  Every
``k x k`` submatrix of such a matrix is invertible, which is exactly the
MDS property the quorum math in :mod:`repro.storage.groups` relies on.

Pure Python, no dependencies: the field is tiny (256 elements) so the
log/antilog tables are built once at import and a stripe encode is a
handful of table lookups per byte -- plenty for tests and for the
simulator, which models replication at extent granularity and only
touches real bytes in the property tests.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "gf_mul",
    "gf_inv",
    "encode_stripe",
    "reconstruct_stripe",
]

#: The usual Reed-Solomon field polynomial x^8 + x^4 + x^3 + x^2 + 1,
#: under which x itself is primitive (so the log tables are dense).
_POLY = 0x11D

# Log/antilog tables for GF(2^8) with generator x.
_EXP = [0] * 512
_LOG = [0] * 256
_value = 1
for _i in range(255):
    _EXP[_i] = _value
    _LOG[_value] = _i
    _value <<= 1
    if _value & 0x100:
        _value ^= _POLY
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return _EXP[255 - _LOG[a]]


def _cauchy_rows(k: int, m: int) -> _t.List[_t.List[int]]:
    """The ``m x k`` Cauchy block C with C[i][j] = 1/(x_i ^ y_j).

    ``x_i = i`` for parity rows and ``y_j = m + j`` for data columns;
    the two index sets are disjoint so every denominator is nonzero,
    and every square submatrix of a Cauchy matrix is invertible.
    """
    if k + m > 256:
        raise ValueError(f"k+m must fit in GF(2^8), got {k}+{m}")
    return [
        [gf_inv(i ^ (m + j)) for j in range(k)] for i in range(m)
    ]


def _encoding_matrix(k: int, m: int) -> _t.List[_t.List[int]]:
    """``(k+m) x k`` systematic encoding matrix [I_k ; C]."""
    identity = [
        [1 if r == c else 0 for c in range(k)] for r in range(k)
    ]
    return identity + _cauchy_rows(k, m)


def _invert(matrix: _t.List[_t.List[int]]) -> _t.List[_t.List[int]]:
    """Gauss-Jordan inversion of a square matrix over GF(2^8)."""
    n = len(matrix)
    aug = [row[:] + [1 if i == j else 0 for j in range(n)]
           for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if aug[r][col] != 0), None
        )
        if pivot is None:
            raise ValueError("singular matrix (not MDS?)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = gf_inv(aug[col][col])
        aug[col] = [gf_mul(inv, v) for v in aug[col]]
        for row in range(n):
            if row != col and aug[row][col]:
                factor = aug[row][col]
                aug[row] = [
                    v ^ gf_mul(factor, p)
                    for v, p in zip(aug[row], aug[col])
                ]
    return [row[n:] for row in aug]


def encode_stripe(data: bytes, k: int = 4, m: int = 2) -> _t.List[bytes]:
    """Split ``data`` into ``k`` shards and append ``m`` parity shards.

    The stripe is zero-padded up to a multiple of ``k``; callers that
    need the exact length back pass it to :func:`reconstruct_stripe`.
    Returns ``k + m`` equal-length shards, indexed by member id.
    """
    if k <= 0 or m < 0:
        raise ValueError(f"bad geometry k={k} m={m}")
    shard_len = (len(data) + k - 1) // k if data else 1
    padded = data.ljust(shard_len * k, b"\0")
    shards = [
        bytearray(padded[i * shard_len:(i + 1) * shard_len])
        for i in range(k)
    ]
    for row in _cauchy_rows(k, m):
        parity = bytearray(shard_len)
        for coeff, shard in zip(row, shards):
            if coeff == 0:
                continue
            for pos in range(shard_len):
                parity[pos] ^= gf_mul(coeff, shard[pos])
        shards.append(parity)
    return [bytes(s) for s in shards]


def reconstruct_stripe(
    shares: _t.Mapping[int, bytes], size: int, k: int = 4, m: int = 2
) -> bytes:
    """Rebuild the original ``size`` bytes from any ``k`` surviving shards.

    ``shares`` maps member index (0..k+m-1) to that member's shard.  Any
    ``k`` of the ``k + m`` members suffice (the MDS property); fewer
    raises ``ValueError``.
    """
    if len(shares) < k:
        raise ValueError(
            f"need {k} shards to reconstruct, have {len(shares)}"
        )
    rows = sorted(shares)[:k]
    full = _encoding_matrix(k, m)
    sub = [full[r] for r in rows]
    decode = _invert(sub)
    shard_len = len(shares[rows[0]])
    data_shards = []
    for i in range(k):
        out = bytearray(shard_len)
        for coeff, row_idx in zip(decode[i], rows):
            if coeff == 0:
                continue
            shard = shares[row_idx]
            for pos in range(shard_len):
                out[pos] ^= gf_mul(coeff, shard[pos])
        data_shards.append(out)
    return b"".join(data_shards)[:size]
