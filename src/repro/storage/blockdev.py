"""The block-device interface a client uses to reach the shared array.

A :class:`BlockDevice` binds one client's elevator queue to the array and
exposes the two calls the file-system layer needs:

- :meth:`BlockDevice.submit_write` / :meth:`submit_read` -- queue an I/O
  and get back its completion event (the ``writepage`` of §III.A: issue
  now, wait -- or not -- later).

Synchronous commit yields the completion immediately after submitting;
delayed commit stores it in the commit record and lets the background
daemon wait instead.
"""

from __future__ import annotations

import typing as _t

from repro.core.kernel.events import Event
from repro.storage.disk import DiskArray
from repro.storage.scheduler import READ, WRITE, BlockRequest, ElevatorScheduler

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


class BlockDevice:
    """Per-client block-layer entry point."""

    def __init__(
        self,
        env: "Effects",
        client_id: int,
        array: DiskArray,
        max_merge_bytes: int = 512 * 1024,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.array = array
        #: Per-shard write-generation fencing tokens stamped into every
        #: request (keyed by the metadata shard owning the request's
        #: volume range; a single-MDS deployment only uses shard 0).
        #: The *array-side* fence generation moves on lease reclaim, at
        #: which point this client's outstanding writes on that shard's
        #: slice are rejected.  When the client is next heard from,
        #: re-admission (``RedbudCluster._readmit_client``) re-stamps
        #: the shard's entry to the current array generation -- the
        #: collapsed form of the NFSv4 state re-establishment handshake.
        self.write_generations: _t.Dict[int, int] = {}
        self.scheduler = ElevatorScheduler(
            env, client_id, max_merge_bytes=max_merge_bytes, obs=obs
        )
        array.attach(self.scheduler)

    @property
    def write_generation(self) -> int:
        """Shard-0 fencing token (the whole story when unsharded)."""
        return self.write_generations.get(0, 0)

    @write_generation.setter
    def write_generation(self, value: int) -> None:
        self.write_generations[0] = value

    def submit_write(
        self,
        start: int,
        length: int,
        file_id: int,
        sync: bool = False,
        trace_update: _t.Optional[int] = None,
    ) -> Event:
        """Queue a data write; returns its completion event (writepage).

        ``sync`` marks a write the application is blocked on: it skips
        block-layer plugging and is dispatched as soon as the elevator
        reaches it.  ``trace_update`` tags the request with its causal
        update id when tracing is on.
        """
        return self._submit(WRITE, start, length, file_id, sync, trace_update)

    def submit_read(self, start: int, length: int, file_id: int) -> Event:
        """Queue a data read; returns its completion event."""
        return self._submit(READ, start, length, file_id, sync=True)

    def expedite_file(self, file_id: int) -> None:
        """Unplug pending writes of a file (the fsync writeback kick)."""
        self.scheduler.expedite_file(file_id)

    def _submit(
        self,
        op: str,
        start: int,
        length: int,
        file_id: int,
        sync: bool,
        trace_update: _t.Optional[int] = None,
    ) -> Event:
        completion = Event(self.env)
        request = BlockRequest(
            op=op,
            start=start,
            length=length,
            client_id=self.client_id,
            file_id=file_id,
            submit_time=self.env.now,
            completion=completion,
            sync=sync,
            trace_update=trace_update,
            write_generation=self.write_generations.get(
                self.array.shard_of_offset(start), 0
            ),
        )
        self.scheduler.submit(request)
        return completion

    @property
    def queue_depth(self) -> int:
        return len(self.scheduler)
