"""Storage substrate: the shared disk array behind the Fibre Channel.

The paper's clients write file data *directly* to a shared disk array over
a 4 Gb FC network, with request queueing and merging happening in each
client's block layer.  This package models that stack:

- :mod:`repro.storage.disk` -- mechanical disk service-time model and the
  shared :class:`DiskArray` server process.
- :mod:`repro.storage.scheduler` -- per-client elevator (C-LOOK) request
  queues with front/back contiguous-request merging; this is where the
  paper's *I/O merge ratio* (Fig. 4) is produced and measured.
- :mod:`repro.storage.blockdev` -- the submit/wait interface clients use.
- :mod:`repro.storage.blktrace` -- dispatch-level tracing (Fig. 5).
- :mod:`repro.storage.cache` -- the client page cache (dirty pages,
  ``writepage``, read hits).
"""

from repro.storage.blockdev import BlockDevice
from repro.storage.blktrace import BlkTrace, SeekAnalysis, TraceRecord
from repro.storage.cache import PageCache
from repro.storage.disk import DiskArray, DiskParameters
from repro.storage.scheduler import BlockRequest, ElevatorScheduler

__all__ = [
    "BlkTrace",
    "BlockDevice",
    "BlockRequest",
    "DiskArray",
    "DiskParameters",
    "ElevatorScheduler",
    "PageCache",
    "SeekAnalysis",
    "TraceRecord",
]
