"""Per-client block request queues with elevator ordering and merging.

Each Redbud client owns one :class:`ElevatorScheduler` -- the analogue of
the Linux block-layer request queue on which the paper ran ``blktrace``.
Two behaviours matter for the reproduction:

*Merging* (Fig. 1, Fig. 4).  When a new request is contiguous with one
already waiting (same direction, back-to-back LBAs) the two are coalesced
into a single disk operation.  Merges can only happen while requests
*coexist* in the queue, which is why synchronous commit (queue depth ~1)
shows none and delayed commit (many outstanding writes) shows many.

*Elevator ordering* (Fig. 5).  Dispatch follows C-LOOK: the request with
the lowest start address at-or-after the head position goes first, wrapping
to the lowest address when the sweep passes the end.  This shapes the seek
traces of Fig. 5.
"""

from __future__ import annotations

import bisect
import typing as _t
from dataclasses import dataclass, field

from repro.core.kernel.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects

READ = "read"
WRITE = "write"


@dataclass
class BlockRequest:
    """One block-layer I/O request against the shared volume.

    ``start``/``length`` are byte addresses on the flat volume address
    space.  ``completion`` fires when the disk array finishes the request
    (or the request it was merged into).
    """

    op: str
    start: int
    length: int
    client_id: int
    file_id: int
    submit_time: float
    completion: Event
    #: A synchronous request (the application is waiting on it): never
    #: plugged, dispatched as soon as the elevator reaches it.  Async
    #: writeback requests are plugged so neighbours can merge in.
    sync: bool = False
    #: Requests absorbed into this one by merging.
    merged: _t.List["BlockRequest"] = field(default_factory=list)
    #: Causal-trace id of the logical update that issued this request
    #: (None when tracing is off or the request is not part of a write).
    trace_update: _t.Optional[int] = None
    #: Write-generation fencing token (DESIGN §8): stamped from the
    #: owning block device at submission.  The array rejects a WRITE
    #: whose generation is below the client's fence generation -- the
    #: SCSI persistent-reservation analogue that keeps a
    #: reclaimed-but-alive client from scribbling over re-allocated
    #: blocks.
    write_generation: int = 0
    #: Cached owning spindle of ``start``.  The start address never
    #: changes after submission (merges only extend ``length``), so the
    #: striping function is evaluated at most once per request instead of
    #: on every elevator scan.
    spindle: _t.Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ValueError(f"bad op {self.op!r}")
        if self.start < 0 or self.length <= 0:
            raise ValueError(
                f"bad extent start={self.start} length={self.length}"
            )

    @property
    def end(self) -> int:
        return self.start + self.length

    def complete_all(self) -> None:
        """Fire completion for this request and everything merged into it."""
        self.completion.succeed()
        for sub in self.merged:
            sub.complete_all()

    def count_all(self) -> int:
        """Number of original submissions represented (self + merged)."""
        return 1 + sum(sub.count_all() for sub in self.merged)

    def trace_updates(self) -> _t.Tuple[int, ...]:
        """Update ids of this request and everything merged into it."""
        ids: _t.List[int] = []
        if self.trace_update is not None:
            ids.append(self.trace_update)
        for sub in self.merged:
            ids.extend(sub.trace_updates())
        return tuple(ids)

    def __repr__(self) -> str:
        return (
            f"<BlockRequest {self.op} [{self.start}, {self.end}) "
            f"client={self.client_id} file={self.file_id}>"
        )


@dataclass
class SchedulerStats:
    """Counters from which the I/O merge ratio (Fig. 4) is computed."""

    submitted: int = 0
    dispatched: int = 0
    #: Original submissions carried by dispatched requests (a dispatch
    #: of a request with three merged neighbours counts four).
    dispatched_submissions: int = 0
    merges: int = 0
    bytes_submitted: int = 0

    @property
    def merge_ratio(self) -> float:
        """Submitted requests per dispatched disk operation (>= 1.0).

        Computed over *dispatched* work only, so a still-queued backlog
        at the end of a run does not inflate the ratio.
        """
        if self.dispatched == 0:
            return 1.0
        return self.dispatched_submissions / self.dispatched

    def merged_into(self, other: "SchedulerStats") -> None:
        other.submitted += self.submitted
        other.dispatched += self.dispatched
        other.dispatched_submissions += self.dispatched_submissions
        other.merges += self.merges
        other.bytes_submitted += self.bytes_submitted


class ElevatorScheduler:
    """C-LOOK elevator queue with contiguous-request merging.

    Parameters
    ----------
    env:
        Simulation environment.
    client_id:
        Owning client (queues are per-client, as in the paper's setup).
    max_merge_bytes:
        Upper bound on a merged request's size, mirroring the block
        layer's ``max_sectors`` limit.
    """

    def __init__(
        self,
        env: "Effects",
        client_id: int,
        max_merge_bytes: int = 512 * 1024,
        read_deadline: float = 0.05,
        write_deadline: float = 0.5,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.max_merge_bytes = max_merge_bytes
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        #: Anti-starvation deadlines (the Linux ``deadline`` scheduler's
        #: idea): a request older than its deadline is served before the
        #: C-LOOK sweep continues.  Without this, an ever-advancing write
        #: frontier starves reads behind the head indefinitely.
        self.read_deadline = read_deadline
        self.write_deadline = write_deadline
        #: Requests waiting for dispatch, kept sorted by start address.
        self._queue: _t.List[BlockRequest] = []
        self._starts: _t.List[int] = []
        self.stats = SchedulerStats()
        #: Called (with no args) whenever a request becomes available.
        self.on_submit: _t.Optional[_t.Callable[[], None]] = None
        #: The owning array's striping function (see
        #: :meth:`set_spindle_map`); ``None`` for standalone schedulers.
        self.spindle_map: _t.Optional[_t.Callable[[int], int]] = None
        #: Per-spindle views of the queue (parallel start/request lists,
        #: each sorted by start), maintained only when a spindle map is
        #: installed.  The per-spindle service loops then scan just
        #: their own spindle's requests instead of the whole queue --
        #: with 16 spindles and deep 10k-client queues the full-queue
        #: scans dominated the profile.  Purely an accelerator: within
        #: one spindle the view preserves the main queue's order (same
        #: bisect policy), so every pick is identical to a filtered scan.
        self._sp_queue: _t.Optional[_t.Dict[int, _t.List[BlockRequest]]] = (
            None
        )
        self._sp_starts: _t.Dict[int, _t.List[int]] = {}

    def set_spindle_map(
        self, spindle_of: _t.Callable[[int], int]
    ) -> None:
        """Install the array's address->spindle function.

        Caches each queued request's spindle and starts maintaining the
        per-spindle queue views.  Scans behave identically, they just
        stop visiting other spindles' requests.
        """
        self.spindle_map = spindle_of
        sp_queue: _t.Dict[int, _t.List[BlockRequest]] = {}
        sp_starts: _t.Dict[int, _t.List[int]] = {}
        # The main queue is sorted by start, so appending in order
        # leaves every per-spindle view sorted with the same relative
        # order among equal starts.
        for request in self._queue:
            sp = spindle_of(request.start)
            request.spindle = sp
            sp_queue.setdefault(sp, []).append(request)
            sp_starts.setdefault(sp, []).append(request.start)
        self._sp_queue = sp_queue
        self._sp_starts = sp_starts

    def _spindle_of(self, request: BlockRequest) -> int:
        sp = request.spindle
        if sp is None:
            sp = request.spindle = self.spindle_map(request.start)
        return sp

    def _sp_add(self, request: BlockRequest) -> None:
        table = self._sp_queue
        if table is None:
            return
        sp = self._spindle_of(request)
        reqs = table.get(sp)
        if reqs is None:
            table[sp] = [request]
            self._sp_starts[sp] = [request.start]
            return
        starts = self._sp_starts[sp]
        # bisect_left on both lists keeps equal-start runs in the same
        # relative order as the main queue.
        idx = bisect.bisect_left(starts, request.start)
        reqs.insert(idx, request)
        starts.insert(idx, request.start)

    def _sp_remove(self, request: BlockRequest) -> None:
        table = self._sp_queue
        if table is None:
            return
        sp = self._spindle_of(request)
        reqs = table[sp]
        starts = self._sp_starts[sp]
        idx = bisect.bisect_left(starts, request.start)
        while reqs[idx] is not request:
            idx += 1
        reqs.pop(idx)
        starts.pop(idx)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending(self) -> _t.Sequence[BlockRequest]:
        return tuple(self._queue)

    # -- submission with merging -------------------------------------------

    def submit(self, request: BlockRequest) -> None:
        """Queue ``request``, merging it into a neighbour if contiguous."""
        self.stats.submitted += 1
        self.stats.bytes_submitted += request.length

        if not self._try_merge(request):
            idx = bisect.bisect_left(self._starts, request.start)
            self._queue.insert(idx, request)
            self._starts.insert(idx, request.start)
            self._sp_add(request)

        if self.on_submit is not None:
            self.on_submit()

    def _try_merge(self, request: BlockRequest) -> bool:
        """Attempt a back- or front-merge with a queued request."""
        # Back merge: queued request ends where the new one starts.
        idx = bisect.bisect_right(self._starts, request.start) - 1
        if 0 <= idx < len(self._queue):
            head = self._queue[idx]
            if (
                head.op == request.op
                and head.end == request.start
                and head.length + request.length <= self.max_merge_bytes
                and head.write_generation == request.write_generation
            ):
                head.merged.append(request)
                head.length += request.length
                self.stats.merges += 1
                self._record_merge(request, head, "back")
                return True

        # Front merge: new request ends where a queued one starts.
        idx = bisect.bisect_left(self._starts, request.end)
        if 0 <= idx < len(self._queue):
            tail = self._queue[idx]
            if (
                tail.op == request.op
                and request.end == tail.start
                and tail.length + request.length <= self.max_merge_bytes
                and tail.write_generation == request.write_generation
            ):
                # The new request becomes the head of the merged pair.
                self._queue.pop(idx)
                self._starts.pop(idx)
                self._sp_remove(tail)
                request.merged.append(tail)
                request.length += tail.length
                new_idx = bisect.bisect_left(self._starts, request.start)
                self._queue.insert(new_idx, request)
                self._starts.insert(new_idx, request.start)
                self._sp_add(request)
                self.stats.merges += 1
                self._record_merge(tail, request, "front")
                return True

        return False

    def _record_merge(
        self, absorbed: BlockRequest, into: BlockRequest, kind: str
    ) -> None:
        if self.obs is None:
            return
        self.obs.tracer.instant(
            "blk_merge",
            "blk",
            node=f"client-{self.client_id}",
            actor="elevator",
            update_ids=into.trace_updates(),
            merge_kind=kind,
            start=into.start,
            length=into.length,
        )
        self.obs.registry.counter("blk.merges").inc()

    # -- dispatch ------------------------------------------------------------

    def pop_next(self, head_position: int) -> BlockRequest:
        """Remove and return the next request in C-LOOK order.

        The request with the smallest start address at or after
        ``head_position`` is chosen; if the sweep has passed every queued
        request, it wraps to the lowest address.
        """
        if not self._queue:
            raise IndexError("scheduler queue is empty")
        idx = bisect.bisect_left(self._starts, head_position)
        if idx >= len(self._queue):
            idx = 0  # C-LOOK wrap.
        request = self._queue.pop(idx)
        self._starts.pop(idx)
        self._sp_remove(request)
        self.stats.dispatched += 1
        self.stats.dispatched_submissions += request.count_all()
        return request

    def _main_remove(self, request: BlockRequest) -> None:
        """Remove ``request`` from the main queue by identity."""
        idx = bisect.bisect_left(self._starts, request.start)
        queue = self._queue
        while queue[idx] is not request:
            idx += 1
        queue.pop(idx)
        self._starts.pop(idx)

    def pop_next_for_spindle(
        self,
        head_position: int,
        spindle_id: int,
        spindle_of: _t.Callable[[int], int],
        op: _t.Optional[str] = None,
        write_plug: float = 0.0,
    ) -> _t.Optional[BlockRequest]:
        """Deadline-then-C-LOOK pop restricted to one spindle's requests.

        ``spindle_of`` maps a start address to its owning spindle (the
        array's striping function); a request belongs to the spindle of
        its start address.  Requests past their deadline are served
        oldest-first before the sweep continues.  ``op`` restricts the
        pick to reads or writes (the array uses this for its global read
        preference).  ``write_plug`` holds writes younger than the given
        age in the queue -- the block layer's *plugging*, which lets a
        burst of contiguous submissions coalesce before dispatch.
        Returns ``None`` when no matching request is queued.
        """
        indexed = (
            self._sp_queue is not None and spindle_of is self.spindle_map
        )
        if indexed:
            # Scan only this spindle's view of the queue.  Within one
            # spindle the view's order matches the main queue's, so the
            # pick is identical to the old filtered full-queue scan.
            queue = self._sp_queue.get(spindle_id)
            if not queue:
                return None
            starts = self._sp_starts[spindle_id]
        else:
            queue = self._queue
            starts = self._starts
        now = self.env.now
        read_deadline = self.read_deadline
        write_deadline = self.write_deadline
        best_idx: _t.Optional[int] = None
        wrap_idx: _t.Optional[int] = None
        expired_idx: _t.Optional[int] = None
        expired_time = float("inf")
        for idx, (start, request) in enumerate(zip(starts, queue)):
            if op is not None and request.op != op:
                continue
            if not indexed:
                sp = request.spindle
                if sp is None:
                    sp = request.spindle = spindle_of(start)
                if sp != spindle_id:
                    continue
            submit_time = request.submit_time
            if (
                write_plug > 0.0
                and request.op == WRITE
                and not request.sync
                and now - submit_time < write_plug
            ):
                continue  # still plugged: let neighbours merge in
            deadline = (
                read_deadline if request.op == READ else write_deadline
            )
            if now - submit_time > deadline:
                if submit_time < expired_time:
                    expired_time = submit_time
                    expired_idx = idx
            if best_idx is None and start >= head_position:
                best_idx = idx
            if wrap_idx is None:
                wrap_idx = idx
        if expired_idx is not None:
            idx: _t.Optional[int] = expired_idx
        else:
            idx = best_idx if best_idx is not None else wrap_idx
        if idx is None:
            return None
        request = queue.pop(idx)
        starts.pop(idx)
        if indexed:
            self._main_remove(request)
        else:
            self._sp_remove(request)
        self.stats.dispatched += 1
        self.stats.dispatched_submissions += request.count_all()
        return request

    def has_request_for_spindle(
        self, spindle_id: int, spindle_of: _t.Callable[[int], int]
    ) -> bool:
        table = self._sp_queue
        if table is not None and spindle_of is self.spindle_map:
            return bool(table.get(spindle_id))
        return any(
            spindle_of(start) == spindle_id for start in self._starts
        )

    def earliest_plug_expiry(
        self,
        spindle_id: int,
        spindle_of: _t.Callable[[int], int],
        write_plug: float,
    ) -> _t.Optional[float]:
        """When the oldest plugged write for this spindle becomes
        dispatchable, or ``None`` if none are queued."""
        table = self._sp_queue
        indexed = table is not None and spindle_of is self.spindle_map
        if indexed:
            queue = table.get(spindle_id)
            if not queue:
                return None
        else:
            queue = self._queue
        earliest: _t.Optional[float] = None
        for request in queue:
            if request.op != WRITE:
                continue
            if not indexed:
                sp = request.spindle
                if sp is None:
                    sp = request.spindle = spindle_of(request.start)
                if sp != spindle_id:
                    continue
            if request.sync:
                continue  # dispatchable already
            ready = request.submit_time + write_plug
            if earliest is None or ready < earliest:
                earliest = ready
        return earliest

    def drop_all(self) -> int:
        """Discard every queued request (single-node death).

        The completion events of dropped requests (and of everything
        merged into them) never fire -- only processes on the dead node
        wait on them, and those are parked anyway.  Returns the number of
        queue entries dropped (merged groups count once, matching
        ``len()``).
        """
        dropped = len(self._queue)
        self._queue.clear()
        self._starts.clear()
        if self._sp_queue is not None:
            self._sp_queue.clear()
            self._sp_starts.clear()
        return dropped

    def expedite_file(self, file_id: int) -> None:
        """Unplug every queued write of ``file_id`` (fsync kicks
        writeback: plugged async writes become dispatchable at once)."""
        changed = False
        for request in self._queue:
            if request.file_id == file_id and request.op == WRITE:
                request.sync = True
                changed = True
        if changed and self.on_submit is not None:
            self.on_submit()

    def expedite_all_writes(self) -> None:
        """Unplug everything (memory-pressure writeback kick)."""
        changed = False
        for request in self._queue:
            if request.op == WRITE and not request.sync:
                request.sync = True
                changed = True
        if changed and self.on_submit is not None:
            self.on_submit()
