"""Dispatch-level I/O tracing, the in-sim analogue of ``blktrace``.

The paper collects block traces "for analyzing the changes of block-level
I/O characteristics" and plots, per configuration, the dispatched LBA over
time (Fig. 5) -- dense sawtooth waves when the workload seeks constantly,
near-flat ramps with occasional spikes under space delegation.

:class:`BlkTrace` records every dispatched request; :class:`SeekAnalysis`
summarises the trace into the quantities the figure conveys visually:
seek counts, seek distances, and sequential-run statistics.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One dispatched disk operation."""

    time: float
    op: str
    start: int
    length: int
    seek_distance: int
    client_id: int
    #: How many submitted requests this dispatch represents (merge count).
    queued: int


class BlkTrace:
    """Accumulates :class:`TraceRecord` entries during a run."""

    def __init__(self) -> None:
        self.records: _t.List[TraceRecord] = []

    def record(self, **kwargs: _t.Any) -> None:
        self.records.append(TraceRecord(**kwargs))

    def __len__(self) -> int:
        return len(self.records)

    def series(self) -> _t.Tuple[np.ndarray, np.ndarray]:
        """Return (times, start addresses) -- the Fig. 5 scatter series."""
        times = np.array([r.time for r in self.records], dtype=float)
        starts = np.array([r.start for r in self.records], dtype=float)
        return times, starts

    def analyze(self) -> "SeekAnalysis":
        return SeekAnalysis.from_trace(self)

    def to_rows(self) -> _t.List[_t.Tuple[float, str, int, int, int, int]]:
        """Rows for CSV export: (time, op, start, length, seek, client)."""
        return [
            (r.time, r.op, r.start, r.length, r.seek_distance, r.client_id)
            for r in self.records
        ]


def placement_analysis(
    trace: BlkTrace,
    op: str = "write",
    since: float = 0.0,
) -> "SeekAnalysis":
    """Seek analysis of each client's op-stream placement (Fig. 5).

    The paper traced each *client's* block device, so a panel shows one
    request stream: the figure's "seeks" are the address jumps between a
    client's consecutive dispatches.  This recomputes exactly that --
    per-client distances between consecutive dispatches of one op class
    -- optionally restricted to the measurement window (``since``).
    Under space delegation a client's stream is near-sequential; with
    MDS-side allocation it jumps constantly.
    """
    per_client_last: _t.Dict[int, int] = {}
    synthetic = BlkTrace()
    for record in trace.records:
        if record.op != op or record.time < since:
            continue
        last = per_client_last.get(record.client_id)
        distance = 0 if last is None else abs(record.start - last)
        per_client_last[record.client_id] = record.start + record.length
        synthetic.record(
            time=record.time,
            op=record.op,
            start=record.start,
            length=record.length,
            seek_distance=distance,
            client_id=record.client_id,
            queued=record.queued,
        )
    return synthetic.analyze()


@dataclass(frozen=True)
class SeekAnalysis:
    """Summary statistics of a block trace.

    ``seek_fraction`` is the share of dispatches that required head
    movement; space delegation drives it toward zero (Fig. 5c/5f), while
    the original configuration keeps it near one (Fig. 5a/5d).
    """

    dispatches: int
    seeks: int
    total_seek_distance: int
    mean_seek_distance: float
    max_seek_distance: int
    sequential_runs: int
    mean_run_length: float

    @property
    def seek_fraction(self) -> float:
        return self.seeks / self.dispatches if self.dispatches else 0.0

    @classmethod
    def from_trace(cls, trace: BlkTrace) -> "SeekAnalysis":
        records = trace.records
        if not records:
            return cls(0, 0, 0, 0.0, 0, 0, 0.0)
        distances = np.array(
            [r.seek_distance for r in records], dtype=np.int64
        )
        seeks = int(np.count_nonzero(distances))
        # A sequential run is a maximal streak of zero-distance dispatches
        # together with the seek that started it.
        run_count = 0
        in_run = False
        run_lengths: _t.List[int] = []
        current = 0
        for d in distances:
            if d > 0:
                if in_run:
                    run_lengths.append(current)
                run_count += 1
                in_run = True
                current = 1
            elif in_run:
                current += 1
            else:  # leading sequential dispatches count as a run too
                run_count += 1
                in_run = True
                current = 1
        if in_run:
            run_lengths.append(current)
        mean_run = float(np.mean(run_lengths)) if run_lengths else 0.0
        return cls(
            dispatches=len(records),
            seeks=seeks,
            total_seek_distance=int(distances.sum()),
            mean_seek_distance=float(distances.mean()),
            max_seek_distance=int(distances.max()),
            sequential_runs=run_count,
            mean_run_length=mean_run,
        )
