"""Client page cache.

The paper leans on the client cache twice: delayed commit "gains more by
leveraging the client cache" (writes land in memory and the application
proceeds), and in the 32 KB xcdn discussion the cache is noted to be
useless when small files are "randomly scattered over the whole
namespace" (read misses).  This model captures residency -- which byte
ranges of which files are in client memory -- with LRU eviction at file
granularity, plus the dirty/clean distinction the crash model needs.

The cache is volatile: :meth:`PageCache.drop_volatile` models a client
crash by discarding everything (committed-but-cached data would be
re-readable from disk after recovery; for simplicity a crash empties the
cache entirely, which is conservative).
"""

from __future__ import annotations

import typing as _t
from collections import OrderedDict

from repro.util.intervals import IntervalSet


class _FileEntry:
    __slots__ = ("resident", "dirty")

    def __init__(self) -> None:
        self.resident = IntervalSet()
        self.dirty = IntervalSet()

    def bytes_resident(self) -> int:
        return self.resident.total()


class PageCache:
    """Byte-range page cache with file-granularity LRU eviction.

    Parameters
    ----------
    capacity:
        Total resident bytes allowed; ``None`` disables eviction.
    """

    def __init__(self, capacity: _t.Optional[int] = 8 * 1024**3) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._files: "OrderedDict[int, _FileEntry]" = OrderedDict()
        self._resident_bytes = 0
        self._dirty_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- writes ----------------------------------------------------------------

    def write(self, file_id: int, offset: int, length: int) -> None:
        """Buffer a write: the range becomes resident and dirty."""
        entry = self._touch(file_id)
        before = entry.bytes_resident()
        dirty_before = entry.dirty.total()
        entry.resident.add(offset, offset + length)
        entry.dirty.add(offset, offset + length)
        self._resident_bytes += entry.bytes_resident() - before
        self._dirty_bytes += entry.dirty.total() - dirty_before
        self._evict_if_needed(exclude=file_id)

    def mark_clean(self, file_id: int, offset: int, length: int) -> None:
        """The range's data write completed; it is stable on disk."""
        entry = self._files.get(file_id)
        if entry is not None:
            dirty_before = entry.dirty.total()
            entry.dirty.remove(offset, offset + length)
            self._dirty_bytes += entry.dirty.total() - dirty_before

    # -- reads ---------------------------------------------------------------

    def read_hit(self, file_id: int, offset: int, length: int) -> bool:
        """Whether a read of the range can be served from memory."""
        entry = self._files.get(file_id)
        if entry is not None and entry.resident.contains(
            offset, offset + length
        ):
            self._touch(file_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, file_id: int, offset: int, length: int) -> None:
        """Install clean data read from disk."""
        entry = self._touch(file_id)
        before = entry.bytes_resident()
        entry.resident.add(offset, offset + length)
        self._resident_bytes += entry.bytes_resident() - before
        self._evict_if_needed(exclude=file_id)

    # -- state ------------------------------------------------------------------

    def dirty_ranges(self, file_id: int) -> IntervalSet:
        entry = self._files.get(file_id)
        return entry.dirty if entry is not None else IntervalSet()

    def is_dirty(self, file_id: int) -> bool:
        entry = self._files.get(file_id)
        return entry is not None and bool(entry.dirty)

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def dirty_bytes(self) -> int:
        """Total buffered bytes whose data write has not yet completed."""
        return self._dirty_bytes

    def drop_file(self, file_id: int) -> None:
        entry = self._files.pop(file_id, None)
        if entry is not None:
            self._resident_bytes -= entry.bytes_resident()
            self._dirty_bytes -= entry.dirty.total()

    def drop_volatile(self) -> None:
        """Crash: all cached state (clean and dirty) is lost."""
        self._files.clear()
        self._resident_bytes = 0
        self._dirty_bytes = 0

    # -- internals ----------------------------------------------------------------

    def _touch(self, file_id: int) -> _FileEntry:
        entry = self._files.get(file_id)
        if entry is None:
            entry = _FileEntry()
            self._files[file_id] = entry
        else:
            self._files.move_to_end(file_id)
        return entry

    def _evict_if_needed(self, exclude: int) -> None:
        if self.capacity is None or self._resident_bytes <= self.capacity:
            return
        # One pass in LRU order; dirty files and the protected file are
        # skipped (dirty data is never dropped silently).
        for victim_id in list(self._files):
            if self._resident_bytes <= self.capacity:
                break
            if victim_id == exclude:
                continue
            victim = self._files[victim_id]
            if victim.dirty:
                continue
            del self._files[victim_id]
            self._resident_bytes -= victim.bytes_resident()
            self.evictions += 1
