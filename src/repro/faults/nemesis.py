"""The tracked nemesis: long-horizon fault planning for soak runs.

``repro check`` explores *short* schedules -- one or two clauses, a few
hundred virtual milliseconds.  The soak harness (ROADMAP 4b) instead
wants sustained churn over virtual *hours*: faults continuously
injected and healed, with the oracle always able to ask which faults
were live (the YDB nemesis discipline -- track what you break so you
know which violations are excusable).

:class:`TrackedNemesis` walks the virtual-time horizon in order,
drawing inject/heal action pairs from every fault family the
mini-language knows (loss/delay bursts, client partitions, shard
partitions, MDS restarts, client deaths, disk loss + readmit).  Each
action is rendered as a canonical clause string, so the whole plan is
one parseable :class:`~repro.faults.spec.FaultSpec` -- which buys:

- execution through the battle-tested :class:`FaultInjector` (whose
  timed processes register every action in the shared
  :class:`~repro.faults.tracking.FaultTracker` as it arms and heals);
- replay (``repro run --faults '<plan>'``) and ddmin shrinking of any
  failing window, because clause subsets of a valid plan stay valid.

Planning is a pure function of the RNG stream: same seed, same plan.
Per-scope gating keeps the plan well-formed -- no two actions on the
same scope overlap, and each scope stays quiet for a convergence
grace period after a heal so the liveness probes measure the system,
not the next fault.  Client deaths never take out a majority, and disk
losses stay inside the arrangement's fault budget (every loss is
readmitted, so re-silvering is exercised on each one).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.faults.tracking import Scope

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import StreamRNG

__all__ = ["NemesisAction", "TrackedNemesis"]

#: Mean virtual seconds between actions at ``intensity=1``.
BASE_GAP = 30.0
#: Quiet margin a scope keeps after a heal: the convergence bound the
#: liveness probes use, plus slack so the probe itself lands before the
#: scope's next fault.
CONVERGENCE_GRACE = 10.0
SCOPE_SLACK = 2.0
#: The plan leaves the end of the horizon fault-free so the final
#: convergence judgement is never racing a live fault.
TAIL_MARGIN = 30.0


@dataclass(frozen=True)
class NemesisAction:
    """One planned inject/heal pair, rendered as a replayable clause."""

    kind: str
    clause: str
    scope: Scope
    start: float
    #: When the fault heals (partition lift, burst end, MDS back up,
    #: disk readmitted).  For client deaths -- which never "heal" at the
    #: protocol level -- this is the reclamation bound: the instant by
    #: which lease GC has fenced and reclaimed the corpse, after which
    #: the death stops excusing violations.
    end: float

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "kind": self.kind,
            "clause": self.clause,
            "scope": list(self.scope),
            "start": self.start,
            "end": self.end,
        }


class TrackedNemesis:
    """Deterministically sample a fault plan over a long virtual horizon.

    Parameters
    ----------
    rng:
        A dedicated :class:`StreamRNG` stream; the plan consumes it in
        one deterministic pass.
    horizon:
        Virtual seconds of soak.
    num_clients, shards, replication:
        Cluster shape -- gates which families are drawn (shard
        partitions need ``shards > 1``, disk losses a replicated
        group), mirroring the explorer's family gating so arming one
        axis never perturbs another's draws.
    intensity:
        Scales the action rate: mean gap is ``BASE_GAP / intensity``.
    start_at:
        First instant a fault may land (leave workload setup alone).
    death_recovery:
        Reclamation bound for client deaths (lease duration + GC scan
        cadence + margin), supplied by the harness that knows the
        cluster's lease parameters.
    """

    def __init__(
        self,
        rng: "StreamRNG",
        horizon: float,
        num_clients: int,
        *,
        shards: int = 1,
        replication: str = "none",
        intensity: float = 1.0,
        start_at: float = 1.0,
        death_recovery: float = 0.5,
    ) -> None:
        if horizon <= start_at + TAIL_MARGIN:
            raise ValueError(
                f"horizon {horizon} too short for a soak (needs > "
                f"{start_at + TAIL_MARGIN} virtual seconds)"
            )
        if intensity <= 0:
            raise ValueError(f"intensity must be positive: {intensity}")
        self.rng = rng
        self.horizon = horizon
        self.num_clients = num_clients
        self.shards = shards
        self.replication = replication
        self.intensity = intensity
        self.start_at = start_at
        self.death_recovery = death_recovery

    # -- the plan ---------------------------------------------------------

    def sample(self) -> _t.List[NemesisAction]:
        """Walk the horizon once and return the chronological plan."""
        rng = self.rng
        actions: _t.List[NemesisAction] = []
        busy: _t.Dict[_t.Tuple[_t.Any, ...], float] = {}
        dead: _t.Set[int] = set()
        # Majority of clients must stay alive for progress detection to
        # stay meaningful (and the check workload to keep churning).
        max_deaths = max(0, (self.num_clients - 1) // 2)
        disk_pool: _t.List[int] = []
        if self.replication != "none":
            from repro.storage.groups import arrangement_named

            arr = arrangement_named(self.replication)
            # The spec's documented failure assumption: never more
            # losses than the arrangement tolerates, distinct members.
            disk_pool = list(range(arr.size))[: arr.tolerates]

        families = ["loss_burst", "delay_burst", "partition", "mds_restart"]
        weights = [3.0, 3.0, 3.0, 2.0]
        if self.shards > 1:
            families.append("shard_partition")
            weights.append(2.0)
        families.append("client_death")
        weights.append(1.0)
        if disk_pool:
            families.append("disk_loss")
            weights.append(1.0)

        deadline = self.horizon - TAIL_MARGIN
        t = self.start_at
        while True:
            t += rng.exponential(BASE_GAP / self.intensity)
            if t >= deadline:
                break
            family = rng.weighted_choice(families, weights)
            action = self._draw(family, round(t, 4), rng, busy, dead,
                                disk_pool, deadline)
            if action is not None:
                actions.append(action)
        return actions

    def clauses(self) -> _t.List[str]:
        return [action.clause for action in self.sample()]

    # -- per-family draws -------------------------------------------------

    def _draw(
        self,
        family: str,
        t0: float,
        rng: "StreamRNG",
        busy: _t.Dict[_t.Tuple[_t.Any, ...], float],
        dead: _t.Set[int],
        disk_pool: _t.List[int],
        deadline: float,
    ) -> _t.Optional[NemesisAction]:
        """One action, or None when the slot is gated off.

        Every family draws its parameters *before* gating, so a skipped
        slot consumes the same draws as an emitted one -- adding a gate
        never perturbs the rest of the plan.
        """

        def emit(
            kind: str,
            clause: str,
            scope: Scope,
            key: _t.Tuple[_t.Any, ...],
            end: float,
        ) -> _t.Optional[NemesisAction]:
            if busy.get(key, 0.0) > t0 or end > deadline:
                return None
            busy[key] = end + CONVERGENCE_GRACE + SCOPE_SLACK
            return NemesisAction(
                kind=kind, clause=clause, scope=scope, start=t0, end=end
            )

        if family == "loss_burst":
            prob = round(rng.uniform(0.05, 0.3), 3)
            t1 = round(t0 + rng.uniform(1.0, 4.0), 4)
            return emit(
                "loss_burst", f"loss={prob!r}@{t0!r}-{t1!r}",
                ("net", "*"), ("loss_burst",), t1,
            )
        if family == "delay_burst":
            prob = round(rng.uniform(0.1, 0.4), 3)
            max_delay = round(rng.uniform(0.002, 0.02), 4)
            t1 = round(t0 + rng.uniform(1.0, 4.0), 4)
            return emit(
                "delay_burst",
                f"delay={prob!r}:{max_delay!r}@{t0!r}-{t1!r}",
                ("net", "*"), ("delay_burst",), t1,
            )
        if family == "partition":
            cid = rng.integers(0, self.num_clients)
            t1 = round(t0 + rng.uniform(2.0, 6.0), 4)
            if cid in dead:
                return None  # Partitioning a corpse proves nothing.
            return emit(
                "partition", f"partition={cid}@{t0!r}-{t1!r}",
                ("client", cid), ("partition", cid), t1,
            )
        if family == "mds_restart":
            down = round(rng.uniform(0.3, 1.0), 4)
            if self.shards > 1:
                sid = rng.integers(0, self.shards)
                return emit(
                    "mds_restart",
                    f"mds_restart@{t0!r}:{down!r}:shard={sid}",
                    ("shard", sid), ("mds", sid), round(t0 + down, 4),
                )
            return emit(
                "mds_restart", f"mds_restart@{t0!r}:{down!r}",
                ("mds", "*"), ("mds", "*"), round(t0 + down, 4),
            )
        if family == "shard_partition":
            sid = rng.integers(0, self.shards)
            t1 = round(t0 + rng.uniform(1.0, 4.0), 4)
            return emit(
                "shard_partition", f"shard_partition={sid}@{t0!r}-{t1!r}",
                ("shard", sid), ("shard_partition", sid), t1,
            )
        if family == "client_death":
            cid = rng.integers(0, self.num_clients)
            if cid in dead or len(dead) >= max(
                0, (self.num_clients - 1) // 2
            ):
                return None
            action = emit(
                "client_death", f"client_death={cid}@{t0!r}",
                ("client", cid), ("partition", cid),
                round(t0 + self.death_recovery, 4),
            )
            if action is not None:
                dead.add(cid)
                # The corpse's scope stays busy forever: no point
                # partitioning it later.
                busy[("partition", cid)] = float("inf")
            return action
        if family == "disk_loss":
            rebuild = round(rng.uniform(2.0, 6.0), 4)
            if not disk_pool:
                return None
            member = disk_pool[0]
            action = emit(
                "disk_loss", f"disk_loss={member}@{t0!r}:{rebuild!r}",
                ("member", member), ("member", member),
                round(t0 + rebuild, 4),
            )
            if action is not None:
                disk_pool.pop(0)
            return action
        raise AssertionError(f"unknown family {family!r}")
