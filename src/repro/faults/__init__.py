"""Deterministic, seeded fault injection for the simulator.

The package has two halves:

- :mod:`repro.faults.spec` -- :class:`FaultSpec`, a declarative fault
  schedule parsed from the ``--faults`` CLI string (message loss and
  delay probabilities, partition windows, timed MDS restarts and client
  deaths).
- :mod:`repro.faults.injector` -- :class:`FaultInjector`, which arms a
  built cluster with a spec: per-link fault models drawing from named
  RNG streams (same seed + same spec => identical fault sequence), plus
  scheduled processes firing the timed faults.
- :mod:`repro.faults.tracking` -- :class:`FaultTracker`, the live
  registry of active faults (id, kind, scope, start, heal) shared by
  the SLO timeline and the soak oracles.
- :mod:`repro.faults.nemesis` -- :class:`TrackedNemesis`, the
  long-horizon fault planner behind ``repro soak``.

The protocol machinery that survives the injected faults lives where the
protocols live: RPC timeout/retry in :mod:`repro.net.rpc`, duplicate
suppression in :mod:`repro.mds.server`, lease-based reclamation in
:mod:`repro.mds.lease_gc`, and delayed->synchronous degradation in
:mod:`repro.client.client`.
"""

from repro.faults.injector import FaultInjector, LinkFaults
from repro.faults.nemesis import NemesisAction, TrackedNemesis
from repro.faults.spec import (
    ClientDeath,
    DelayBurst,
    DiskLoss,
    FaultSpec,
    LossBurst,
    MdsRestart,
    Partition,
    ShardPartition,
)
from repro.faults.tracking import (
    FaultRecord,
    FaultTracker,
    Scope,
    scopes_overlap,
)

__all__ = [
    "ClientDeath",
    "DelayBurst",
    "DiskLoss",
    "FaultInjector",
    "FaultRecord",
    "FaultSpec",
    "FaultTracker",
    "LinkFaults",
    "LossBurst",
    "MdsRestart",
    "NemesisAction",
    "Partition",
    "Scope",
    "ShardPartition",
    "TrackedNemesis",
    "scopes_overlap",
]
