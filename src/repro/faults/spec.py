"""Declarative fault schedules and the ``--faults`` mini-language.

A spec is a comma-separated list of clauses::

    loss=P                 drop each message with probability P (all links)
    loss=P@T0-T1           same, but only during the window [T0, T1) --
                           a *loss burst* (the tracked nemesis's bread
                           and butter; several non-overlapping bursts
                           may be given)
    delay=P:MAX            delay a fraction P of messages by an extra
                           uniform(0, MAX) seconds -- since deliveries are
                           independent timeouts, this also reorders them
    delay=P:MAX@T0-T1      the windowed *delay burst* variant
    partition=CID@T0-T1    cut client CID off (both directions) during
                           the virtual-time window [T0, T1)
    mds_restart@T:D        crash the MDS at time T, restart it D seconds
                           later (inbox contents are lost)
    mds_restart@T:D:shard=K
                           same, but only metadata shard K of a sharded
                           deployment (others keep serving)
    shard_partition=K@T0-T1
                           cut metadata shard K off from every client
                           (both directions) during [T0, T1)
    client_death=CID@T     kill client CID at time T (volatile state and
                           queued I/O lost; lease GC reclaims its space)
    disk_loss=M@T          permanently destroy replica member M of the
                           storage group at time T (requires a replicated
                           cluster, ``--replication mirror3|block4-2``)
    disk_loss=M@T:R        same, but readmit the member R seconds later;
                           it comes back empty and re-silvers from the
                           surviving members
    crash@T                whole-cluster crash at time T -- the run is cut
                           short, recovery runs, and the consistency
                           invariants are checked (handled by the harness,
                           not the injector)

Example: ``loss=0.05,delay=0.1:0.004,mds_restart@0.5:0.2,client_death=2@0.8``.

Multiple ``partition``/``mds_restart``/``client_death``/``disk_loss``
and windowed burst clauses may be given; at most one ``crash``, and at
most one *scalar* ``loss`` / ``delay`` each (a duplicate scalar clause
is a parse error, not a silent overwrite).  Two windowed clauses with
the same scope (the same client's partitions, the same shard's cuts,
two global loss bursts) must not overlap in time, and a dead client
cannot die twice -- both are spec validation errors, because a shrunk
or nemesis-generated schedule carrying them would be ambiguous to
replay.  Unknown clause keys are parse errors carrying the offending
token, so a typo like ``disk_los=0@5`` cannot silently arm nothing.  An
empty string parses to the empty spec, which injects nothing.
``FaultSpec.serialize`` renders a spec back into this language such that
``parse(spec.serialize()) == spec``.
"""

from __future__ import annotations

import re
import typing as _t
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LossBurst:
    """Message loss at probability ``prob`` during ``[start, end)``."""

    prob: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0.0 < self.prob < 1.0:
            raise ValueError(
                f"loss burst probability must be in (0, 1), got {self.prob}"
            )
        if not 0 <= self.start < self.end:
            raise ValueError(
                f"bad loss burst window [{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class DelayBurst:
    """Extra delivery delay during ``[start, end)``: a fraction ``prob``
    of messages receive uniform(0, ``max_delay``) extra seconds."""

    prob: float
    max_delay: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0.0 < self.prob <= 1.0:
            raise ValueError(
                f"delay burst probability must be in (0, 1], got {self.prob}"
            )
        if self.max_delay <= 0:
            raise ValueError(
                f"delay burst needs a positive max delay, got {self.max_delay}"
            )
        if not 0 <= self.start < self.end:
            raise ValueError(
                f"bad delay burst window [{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class Partition:
    """One client's network cut off during ``[start, end)``."""

    client_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"bad client id {self.client_id}")
        if not 0 <= self.start < self.end:
            raise ValueError(
                f"bad partition window [{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class MdsRestart:
    """MDS crash at ``at``, restart ``downtime`` seconds later.

    ``shard`` narrows the crash to one metadata shard of a sharded
    deployment; ``None`` (the default, and the only legal value for a
    single-MDS cluster) crashes the whole service.
    """

    at: float
    downtime: float
    shard: _t.Optional[int] = None

    def __post_init__(self) -> None:
        if self.at < 0 or self.downtime <= 0:
            raise ValueError(
                f"bad mds_restart at={self.at} downtime={self.downtime}"
            )
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"bad mds_restart shard {self.shard}")


@dataclass(frozen=True)
class ShardPartition:
    """Metadata shard ``shard`` cut off from all clients in [start, end)."""

    shard: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"bad shard id {self.shard}")
        if not 0 <= self.start < self.end:
            raise ValueError(
                f"bad shard_partition window [{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class ClientDeath:
    """Client ``client_id`` dies at ``at`` and never comes back."""

    client_id: int
    at: float

    def __post_init__(self) -> None:
        if self.client_id < 0 or self.at < 0:
            raise ValueError(
                f"bad client_death client={self.client_id} at={self.at}"
            )


@dataclass(frozen=True)
class DiskLoss:
    """Replica member ``member`` destroyed at ``at``.

    The member's disk contents are gone (not merely unreachable).  With
    ``rebuild_after`` set, the member is readmitted that many seconds
    later, empty, and re-silvers from the surviving members.
    """

    member: int
    at: float
    rebuild_after: _t.Optional[float] = None

    def __post_init__(self) -> None:
        if self.member < 0 or self.at < 0:
            raise ValueError(
                f"bad disk_loss member={self.member} at={self.at}"
            )
        if self.rebuild_after is not None and self.rebuild_after <= 0:
            raise ValueError(
                f"bad disk_loss rebuild window {self.rebuild_after}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """A complete fault schedule for one run."""

    #: Per-message drop probability on every link.
    loss: float = 0.0
    #: Fraction of messages receiving an extra delay.
    delay_prob: float = 0.0
    #: Upper bound of the uniform extra delay, seconds.
    delay_max: float = 0.0
    partitions: _t.Tuple[Partition, ...] = field(default_factory=tuple)
    mds_restarts: _t.Tuple[MdsRestart, ...] = field(default_factory=tuple)
    client_deaths: _t.Tuple[ClientDeath, ...] = field(default_factory=tuple)
    shard_partitions: _t.Tuple[ShardPartition, ...] = field(
        default_factory=tuple
    )
    disk_losses: _t.Tuple[DiskLoss, ...] = field(default_factory=tuple)
    #: Windowed loss/delay bursts (the tracked nemesis's replayable
    #: actions); they stack on top of the scalar background rates.
    loss_bursts: _t.Tuple[LossBurst, ...] = field(default_factory=tuple)
    delay_bursts: _t.Tuple[DelayBurst, ...] = field(default_factory=tuple)
    #: Whole-cluster crash time.  The injector ignores this field; the
    #: crash-schedule harness (``repro.check``) and ``repro run`` cut the
    #: run at this instant and run recovery + the consistency oracle.
    crash_at: _t.Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.delay_prob <= 1.0:
            raise ValueError(
                f"delay probability must be in [0, 1], got {self.delay_prob}"
            )
        if self.delay_max < 0:
            raise ValueError(f"delay_max must be >= 0, got {self.delay_max}")
        if self.delay_prob > 0 and self.delay_max <= 0:
            raise ValueError("delay clause needs a positive max delay")
        if self.crash_at is not None and self.crash_at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.crash_at}")
        self._check_scope_overlaps()

    def _check_scope_overlaps(self) -> None:
        """Reject same-scope windows that overlap, and double deaths.

        Two partition windows for the same client (or two global loss
        bursts, two cuts of the same shard...) that overlap in time are
        ambiguous: which clause a dropped message "belongs to" is
        undefined, so a shrunk schedule could not attribute the failure.
        The nemesis never generates them; hand-written specs get a
        validation error instead of silently merged behaviour.
        """
        windows: _t.List[_t.Tuple[_t.Any, float, float]] = []
        for p in self.partitions:
            windows.append((("partition", p.client_id), p.start, p.end))
        for sp in self.shard_partitions:
            windows.append(
                (("shard_partition", sp.shard), sp.start, sp.end)
            )
        for lb in self.loss_bursts:
            windows.append((("loss_burst", "*"), lb.start, lb.end))
        for db in self.delay_bursts:
            windows.append((("delay_burst", "*"), db.start, db.end))
        by_scope: _t.Dict[_t.Any, _t.List[_t.Tuple[float, float]]] = {}
        for scope, start, end in windows:
            by_scope.setdefault(scope, []).append((start, end))
        for scope, spans in by_scope.items():
            spans.sort()
            for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
                if s1 < e0:
                    raise ValueError(
                        f"duplicate scope {scope[0]}={scope[1]}: windows "
                        f"[{s0}, {e0}) and starting at {s1} overlap"
                    )
        deaths = [d.client_id for d in self.client_deaths]
        if len(set(deaths)) != len(deaths):
            dup = sorted(
                cid for cid in set(deaths) if deaths.count(cid) > 1
            )
            raise ValueError(
                f"client_death clauses name client(s) {dup} more than "
                "once (a dead client cannot die again)"
            )

    @property
    def empty(self) -> bool:
        """True when the *injector* has nothing to do.

        ``crash_at`` is deliberately excluded: the crash is enacted by the
        harness that drives the run, not by ``FaultInjector``, so a spec
        carrying only a crash still takes the unperturbed fast path.
        """
        return (
            self.loss == 0.0
            and self.delay_prob == 0.0
            and not self.partitions
            and not self.mds_restarts
            and not self.client_deaths
            and not self.shard_partitions
            and not self.disk_losses
            and not self.loss_bursts
            and not self.delay_bursts
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the ``--faults`` mini-language (see module docstring)."""
        loss: _t.Optional[float] = None
        delay: _t.Optional[_t.Tuple[float, float]] = None
        loss_bursts: _t.List[LossBurst] = []
        delay_bursts: _t.List[DelayBurst] = []
        partitions: _t.List[Partition] = []
        mds_restarts: _t.List[MdsRestart] = []
        client_deaths: _t.List[ClientDeath] = []
        shard_partitions: _t.List[ShardPartition] = []
        disk_losses: _t.List[DiskLoss] = []
        crash_at: _t.Optional[float] = None
        for raw in text.split(","):
            clause = raw.strip()
            if not clause:
                continue
            try:
                if clause.startswith("loss="):
                    body = clause[len("loss="):]
                    if "@" in body:
                        prob_s, window = body.split("@")
                        start_s, end_s = re.split(r"(?<![eE])-", window)
                        loss_bursts.append(
                            LossBurst(
                                prob=float(prob_s),
                                start=float(start_s),
                                end=float(end_s),
                            )
                        )
                    else:
                        if loss is not None:
                            raise ValueError("duplicate loss clause")
                        loss = float(body)
                elif clause.startswith("delay="):
                    body = clause[len("delay="):]
                    if "@" in body:
                        rates, window = body.split("@")
                        prob_s, max_s = rates.split(":")
                        start_s, end_s = re.split(r"(?<![eE])-", window)
                        delay_bursts.append(
                            DelayBurst(
                                prob=float(prob_s),
                                max_delay=float(max_s),
                                start=float(start_s),
                                end=float(end_s),
                            )
                        )
                    else:
                        if delay is not None:
                            raise ValueError("duplicate delay clause")
                        prob_s, max_s = body.split(":")
                        delay = (float(prob_s), float(max_s))
                elif clause.startswith("partition="):
                    cid_s, window = clause[len("partition="):].split("@")
                    # Split on the window separator only, not the "-" of a
                    # scientific-notation exponent (e.g. "1e-05-0.5").
                    start_s, end_s = re.split(r"(?<![eE])-", window)
                    partitions.append(
                        Partition(
                            client_id=int(cid_s),
                            start=float(start_s),
                            end=float(end_s),
                        )
                    )
                elif clause.startswith("mds_restart@"):
                    parts = clause[len("mds_restart@"):].split(":")
                    shard: _t.Optional[int] = None
                    if len(parts) == 3:
                        if not parts[2].startswith("shard="):
                            raise ValueError(
                                f"expected shard=K, got {parts[2]!r}"
                            )
                        shard = int(parts[2][len("shard="):])
                    elif len(parts) != 2:
                        raise ValueError("expected mds_restart@T:D[:shard=K]")
                    mds_restarts.append(
                        MdsRestart(
                            at=float(parts[0]),
                            downtime=float(parts[1]),
                            shard=shard,
                        )
                    )
                elif clause.startswith("shard_partition="):
                    sid_s, window = clause[len("shard_partition="):].split(
                        "@"
                    )
                    start_s, end_s = re.split(r"(?<![eE])-", window)
                    shard_partitions.append(
                        ShardPartition(
                            shard=int(sid_s),
                            start=float(start_s),
                            end=float(end_s),
                        )
                    )
                elif clause.startswith("client_death="):
                    cid_s, at_s = clause[len("client_death="):].split("@")
                    client_deaths.append(
                        ClientDeath(client_id=int(cid_s), at=float(at_s))
                    )
                elif clause.startswith("disk_loss="):
                    member_s, rest = clause[len("disk_loss="):].split("@")
                    parts = rest.split(":")
                    if len(parts) == 1:
                        rebuild: _t.Optional[float] = None
                    elif len(parts) == 2:
                        rebuild = float(parts[1])
                    else:
                        raise ValueError("expected disk_loss=M@T[:R]")
                    disk_losses.append(
                        DiskLoss(
                            member=int(member_s),
                            at=float(parts[0]),
                            rebuild_after=rebuild,
                        )
                    )
                elif clause.startswith("crash@"):
                    if crash_at is not None:
                        raise ValueError("at most one crash clause")
                    crash_at = float(clause[len("crash@"):])
                else:
                    raise ValueError(f"unknown fault clause {clause!r}")
            except (ValueError, TypeError) as exc:
                if "unknown fault clause" in str(exc):
                    raise
                raise ValueError(
                    f"malformed fault clause {clause!r}: {exc}"
                ) from exc
        return cls(
            loss=loss if loss is not None else 0.0,
            delay_prob=delay[0] if delay is not None else 0.0,
            delay_max=delay[1] if delay is not None else 0.0,
            partitions=tuple(partitions),
            mds_restarts=tuple(mds_restarts),
            client_deaths=tuple(client_deaths),
            shard_partitions=tuple(shard_partitions),
            disk_losses=tuple(disk_losses),
            loss_bursts=tuple(loss_bursts),
            delay_bursts=tuple(delay_bursts),
            crash_at=crash_at,
        )

    def serialize(self) -> str:
        """Render back into the ``--faults`` mini-language.

        ``FaultSpec.parse(spec.serialize()) == spec`` for every spec;
        floats are emitted with ``repr`` so round-trips are exact.
        """
        clauses: _t.List[str] = []
        if self.loss:
            clauses.append(f"loss={self.loss!r}")
        if self.delay_prob:
            clauses.append(f"delay={self.delay_prob!r}:{self.delay_max!r}")
        for lb in self.loss_bursts:
            clauses.append(f"loss={lb.prob!r}@{lb.start!r}-{lb.end!r}")
        for db in self.delay_bursts:
            clauses.append(
                f"delay={db.prob!r}:{db.max_delay!r}"
                f"@{db.start!r}-{db.end!r}"
            )
        for p in self.partitions:
            clauses.append(f"partition={p.client_id}@{p.start!r}-{p.end!r}")
        for r in self.mds_restarts:
            suffix = "" if r.shard is None else f":shard={r.shard}"
            clauses.append(f"mds_restart@{r.at!r}:{r.downtime!r}{suffix}")
        for d in self.client_deaths:
            clauses.append(f"client_death={d.client_id}@{d.at!r}")
        for sp in self.shard_partitions:
            clauses.append(
                f"shard_partition={sp.shard}@{sp.start!r}-{sp.end!r}"
            )
        for dl in self.disk_losses:
            suffix = (
                "" if dl.rebuild_after is None else f":{dl.rebuild_after!r}"
            )
            clauses.append(f"disk_loss={dl.member}@{dl.at!r}{suffix}")
        if self.crash_at is not None:
            clauses.append(f"crash@{self.crash_at!r}")
        return ",".join(clauses)

    @classmethod
    def random(
        cls,
        rng: _t.Any,
        duration: float,
        num_clients: int,
    ) -> "FaultSpec":
        """Draw a randomized schedule (property-test harness).

        ``rng`` is a ``repro.sim.rng`` stream; every draw is deterministic
        per seed.  The schedule always exercises all four fault families:
        background loss + delay, one partition window, one MDS restart,
        and one client death (never the same client as the partition, so
        the partitioned client lives to demonstrate fencing).
        """
        loss = 0.02 + 0.06 * rng.random()
        delay_prob = 0.05 + 0.10 * rng.random()
        delay_max = 0.002 + 0.004 * rng.random()
        victims = list(range(num_clients))
        dead = victims[int(rng.integers(0, len(victims)))]
        partitioned = victims[int(rng.integers(0, len(victims)))]
        if partitioned == dead:
            partitioned = (dead + 1) % num_clients
        p_start = duration * (0.1 + 0.3 * rng.random())
        p_len = duration * (0.1 + 0.2 * rng.random())
        r_at = duration * (0.2 + 0.4 * rng.random())
        r_down = duration * (0.05 + 0.1 * rng.random())
        d_at = duration * (0.3 + 0.4 * rng.random())
        return cls(
            loss=loss,
            delay_prob=delay_prob,
            delay_max=delay_max,
            partitions=(
                Partition(
                    client_id=partitioned, start=p_start, end=p_start + p_len
                ),
            ),
            mds_restarts=(MdsRestart(at=r_at, downtime=r_down),),
            client_deaths=(ClientDeath(client_id=dead, at=d_at),),
        )
