"""Live fault registry shared by the SLO layer and the soak harness.

PR 6's tail-latency layer derived "which windows was the nemesis
biting?" by scanning the tracer for ``cat="fault"`` events inside
``Timeline.build``.  That logic is generalized here into one source of
truth -- a :class:`FaultTracker` holding :class:`FaultRecord` entries
(id, kind, scope, start, heal time) -- which both consumers share:

- the SLO timeline builds a tracker from a recorded trace
  (:meth:`FaultTracker.from_tracer`) and asks it for per-window fault
  annotations (:meth:`FaultTracker.window_annotations`), reproducing
  the PR 6 excusal semantics exactly;
- the soak harness (:mod:`repro.check.soak`) maintains a tracker *live*
  -- the injector registers every fault as it arms and heals -- so the
  oracles can ask "is anything active right now / was anything active
  in this window?" without a trace (long soaks run untraced to keep
  memory bounded over tens of virtual hours).

A record's **scope** names its blast radius: ``("net", "*")`` for
link-level loss/delay (every RPC may be affected), ``("client", cid)``
for partitions and deaths, ``("shard", k)`` / ``("mds", "*")`` for
metadata faults, ``("member", m)`` for disk losses.  The wildcard
``"*"`` matches any instance of its kind, and the cluster-wide scope
``("*", "*")`` overlaps everything -- the conservative default for
oracle violations that cannot be attributed more precisely.

Everything here is pure bookkeeping: no events scheduled, no RNG
consumed (the zero-perturbation contract of :mod:`repro.obs` holds for
trace-derived trackers, and determinism holds for live ones).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer

__all__ = ["FaultRecord", "FaultTracker", "Scope", "scopes_overlap"]

#: ``(domain, instance)`` -- e.g. ``("client", 3)``, ``("shard", 0)``,
#: ``("net", "*")``.  ``"*"`` wildcards one side; ``("*", "*")`` is
#: cluster-wide.
Scope = _t.Tuple[str, _t.Union[int, str]]

CLUSTER_WIDE: Scope = ("*", "*")


def scopes_overlap(a: Scope, b: Scope) -> bool:
    """True when two blast radii intersect.

    Domains must match unless either is the cluster-wide wildcard;
    instances must match unless either is ``"*"``.
    """
    if a[0] == "*" or b[0] == "*":
        return True
    if a[0] != b[0]:
        return False
    return a[1] == "*" or b[1] == "*" or a[1] == b[1]


@dataclass
class FaultRecord:
    """One fault's lifetime in the registry."""

    fault_id: int
    #: Fault family / event name (``partition``, ``mds_restart``...).
    kind: str
    scope: Scope
    start: float
    #: Scheduled heal time, when known at injection (partition end, MDS
    #: restart, disk readmit).  ``None`` for point faults and for
    #: permanent ones (an un-readmitted disk loss, a client death).
    heal_at: _t.Optional[float] = None
    #: Actual heal time, stamped by :meth:`FaultTracker.heal`.  For
    #: trace-derived records this equals ``heal_at``.
    healed_at: _t.Optional[float] = None
    #: Distinguishes a no-``heal_at`` record that stays active forever
    #: (client death, un-readmitted disk loss) from a point event that
    #: flashes and is gone (an MDS crash instant).
    permanent: bool = False

    @property
    def point(self) -> bool:
        """A zero-width fault event (its window is still annotated)."""
        return (
            self.heal_at is None
            and self.healed_at is None
            and not self.permanent
        )

    @property
    def end(self) -> _t.Optional[float]:
        """When the fault stopped biting (``None`` while live/permanent)."""
        if self.healed_at is not None:
            return self.healed_at
        return self.heal_at

    def active_at(self, time: float) -> bool:
        """Whether the fault is live at ``time`` (point faults are not)."""
        if time < self.start:
            return False
        end = self.end
        if end is None:
            # Point events flash and are gone; open-ended faults
            # (client death, unhealed disk loss) stay active forever.
            return not self.point
        return time < end

    def overlaps_window(self, lo: float, hi: float) -> bool:
        """Whether the fault was live anywhere in ``[lo, hi)``."""
        if self.point:
            return lo <= self.start < hi
        end = self.end
        return self.start < hi and (end is None or end > lo)

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "id": self.fault_id,
            "kind": self.kind,
            "scope": list(self.scope),
            "start": self.start,
            "heal_at": self.heal_at,
            "healed_at": self.healed_at,
            "permanent": self.permanent,
        }


class FaultTracker:
    """The live registry of injected faults (YDB-style tracked nemesis)."""

    def __init__(self) -> None:
        self.records: _t.List[FaultRecord] = []
        self._next_id = 0

    # -- registration (injector / nemesis side) --------------------------

    def begin(
        self,
        kind: str,
        scope: Scope,
        start: float,
        heal_at: _t.Optional[float] = None,
        permanent: bool = False,
    ) -> FaultRecord:
        """Register a fault going live; returns its record for healing."""
        record = FaultRecord(
            fault_id=self._next_id,
            kind=kind,
            scope=scope,
            start=start,
            heal_at=heal_at,
            permanent=permanent,
        )
        self._next_id += 1
        self.records.append(record)
        return record

    def heal(self, record: FaultRecord, at: float) -> None:
        """Stamp the actual heal time (idempotent)."""
        if record.healed_at is None:
            record.healed_at = at

    # -- queries (oracle side) --------------------------------------------

    def active(self, time: float) -> _t.List[FaultRecord]:
        return [r for r in self.records if r.active_at(time)]

    def active_during(self, lo: float, hi: float) -> _t.List[FaultRecord]:
        return [r for r in self.records if r.overlaps_window(lo, hi)]

    def excusers(
        self,
        scope: Scope,
        lo: float,
        hi: float,
        grace: float = 0.0,
    ) -> _t.List[FaultRecord]:
        """Faults whose blast radius excuses a violation on ``scope``
        observed during ``[lo, hi)``.

        ``grace`` extends each fault's excusal window past its heal time
        -- the re-convergence allowance the liveness oracles grant.
        """
        out = []
        for r in self.records:
            if not scopes_overlap(r.scope, scope):
                continue
            if r.point:
                if lo <= r.start < hi + grace and r.start < hi:
                    out.append(r)
                continue
            end = r.end
            if r.start < hi and (end is None or end + grace > lo):
                out.append(r)
        return out

    def window_annotations(
        self, width: float, cap_index: _t.Optional[int] = None
    ) -> _t.Dict[int, _t.Set[str]]:
        """Per-window fault names, PR 6 semantics.

        A point fault marks its own window; a ranged fault marks every
        window from its start through its end, clamped to ``cap_index``
        (the SLO timeline caps at the last data window so a trailing
        heal never extends the timeline).
        """
        out: _t.Dict[int, _t.Set[str]] = {}
        for r in self.records:
            wi = int(r.start / width)
            end = r.end
            if end is None or end <= r.start:
                out.setdefault(wi, set()).add(r.kind)
                continue
            last = int(end / width)
            if cap_index is not None:
                last = min(last, cap_index)
            for k in range(wi, max(last, wi) + 1):
                out.setdefault(k, set()).add(r.kind)
        return out

    # -- construction from a recorded trace -------------------------------

    @classmethod
    def from_tracer(cls, tracer: "Tracer") -> "FaultTracker":
        """Rebuild the registry from ``cat="fault"`` trace events.

        Mirrors the scan :class:`repro.obs.slo.Timeline` performed
        before this module existed: every fault event becomes a record;
        an event carrying ``until`` in its args (partition windows, MDS
        downtime, disk rebuild windows) becomes a ranged fault healed at
        that instant, anything else a point fault.
        """
        tracker = cls()
        for event in tracer.events:
            if event.cat != "fault":
                continue
            until = event.args.get("until")
            scope = _scope_from_args(event.name, event.args)
            if until is not None and until > event.time:
                record = tracker.begin(
                    event.name, scope, event.time, heal_at=until
                )
                record.healed_at = until
            else:
                tracker.begin(event.name, scope, event.time)
        return tracker


def _scope_from_args(name: str, args: _t.Mapping[str, _t.Any]) -> Scope:
    """Best-effort blast radius from a fault event's arguments."""
    if "client" in args and args["client"] is not None:
        return ("client", int(args["client"]))
    if "member" in args and args["member"] is not None:
        return ("member", int(args["member"]))
    if "shard" in args and args["shard"] is not None:
        return ("shard", int(args["shard"]))
    if name.startswith("mds_"):
        return ("mds", "*")
    if name.startswith(("message_", "partition_drop")):
        return ("net", "*")
    return CLUSTER_WIDE
