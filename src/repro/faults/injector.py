"""Arm a built cluster with a :class:`~repro.faults.spec.FaultSpec`.

Determinism contract: every random decision draws from a named child
stream of the cluster's root RNG (``root.stream("faults", link_name)``),
and link verdicts are drawn in the link's own send order -- which the
event kernel already makes deterministic.  Same seed + same spec =>
identical fault sequence, byte-identical traces.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.faults.spec import (
    ClientDeath,
    DelayBurst,
    DiskLoss,
    FaultSpec,
    LossBurst,
    MdsRestart,
    Partition,
    ShardPartition,
)
from repro.faults.tracking import FaultTracker

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.fs.redbud import RedbudCluster
    from repro.net.link import Link


@dataclass
class FaultStats:
    """Shared counters across all fault sources of one injector."""

    messages_dropped: int = 0
    messages_delayed: int = 0
    partition_drops: int = 0
    mds_restarts: int = 0
    client_deaths: int = 0
    shard_partitions: int = 0
    disk_losses: int = 0
    disk_readmissions: int = 0
    loss_bursts: int = 0
    delay_bursts: int = 0

    @property
    def total_injected(self) -> int:
        """Every individual fault event injected into the run."""
        return (
            self.messages_dropped
            + self.messages_delayed
            + self.partition_drops
            + self.mds_restarts
            + self.client_deaths
            + self.shard_partitions
            + self.disk_losses
            + self.loss_bursts
            + self.delay_bursts
        )


@dataclass
class LinkFaults:
    """Per-link fault model consulted by :meth:`repro.net.link.Link.send`.

    ``verdict`` returns ``(dropped, extra_delay)``.  Partition windows
    drop unconditionally (no RNG draw, so messages outside the window
    see the same draw sequence whether or not a partition is configured
    elsewhere in time); otherwise one draw decides loss and -- for
    surviving messages -- one more decides delay.
    """

    rng: _t.Any
    loss: float = 0.0
    delay_prob: float = 0.0
    delay_max: float = 0.0
    #: Partition windows [(start, end), ...] during which every message
    #: on this link is dropped.
    windows: _t.List[_t.Tuple[float, float]] = field(default_factory=list)
    #: Loss bursts [(start, end, prob), ...]: inside the window the
    #: per-message drop probability is raised to ``prob``.  Draws happen
    #: only while an effective rate is positive, so a burst perturbs
    #: draw sequences inside its own window only.
    loss_bursts: _t.List[_t.Tuple[float, float, float]] = field(
        default_factory=list
    )
    #: Delay bursts [(start, end, prob, max_delay), ...].
    delay_bursts: _t.List[_t.Tuple[float, float, float, float]] = field(
        default_factory=list
    )
    stats: _t.Optional[FaultStats] = None
    obs: _t.Optional[_t.Any] = None
    # Forward-scan cursors over the (sorted, per-scope non-overlapping)
    # window lists.  ``verdict`` is called in send order, so virtual time
    # only advances; skipping expired entries once keeps per-message cost
    # O(1) even for soak schedules with thousands of windows.  Pure
    # bookkeeping: the same entries match, so draws are unchanged.
    _win_i: int = field(default=0, init=False, repr=False)
    _loss_i: int = field(default=0, init=False, repr=False)
    _delay_i: int = field(default=0, init=False, repr=False)

    def seal(self) -> None:
        """Sort the window lists once installation is complete."""
        self.windows.sort()
        self.loss_bursts.sort()
        self.delay_bursts.sort()

    def verdict(self, link: "Link") -> _t.Tuple[bool, float]:
        now = link.env.now
        wins = self.windows
        while self._win_i < len(wins) and wins[self._win_i][1] <= now:
            self._win_i += 1
        if self._win_i < len(wins) and wins[self._win_i][0] <= now:
            if self.stats is not None:
                self.stats.partition_drops += 1
            self._record(link, "partition_drop")
            return True, 0.0
        loss = self.loss
        bursts = self.loss_bursts
        while self._loss_i < len(bursts) and bursts[self._loss_i][1] <= now:
            self._loss_i += 1
        if self._loss_i < len(bursts) and bursts[self._loss_i][0] <= now:
            prob = bursts[self._loss_i][2]
            if prob > loss:
                loss = prob
        if loss > 0.0 and self.rng.random() < loss:
            if self.stats is not None:
                self.stats.messages_dropped += 1
            self._record(link, "message_drop")
            return True, 0.0
        delay_prob, delay_max = self.delay_prob, self.delay_max
        bursts = self.delay_bursts
        while (
            self._delay_i < len(bursts) and bursts[self._delay_i][1] <= now
        ):
            self._delay_i += 1
        if self._delay_i < len(bursts) and bursts[self._delay_i][0] <= now:
            _, _, prob, max_delay = bursts[self._delay_i]
            if prob > delay_prob:
                delay_prob, delay_max = prob, max_delay
        if delay_prob > 0.0 and self.rng.random() < delay_prob:
            extra = self.rng.uniform(0.0, delay_max)
            if self.stats is not None:
                self.stats.messages_delayed += 1
            self._record(link, "message_delay", extra=extra)
            return False, extra
        return False, 0.0

    def _record(self, link: "Link", what: str, **args: _t.Any) -> None:
        if self.obs is None:
            return
        self.obs.tracer.instant(
            what, "fault", node=link.name, actor="net", **args
        )
        self.obs.registry.counter(f"faults.{what}").inc()


class FaultInjector:
    """Installs a fault schedule on a Redbud cluster.

    Requires the cluster's clients to have an RPC retry policy when the
    spec can drop or stall messages -- without one, the first lost RPC
    parks its caller forever.
    """

    def __init__(self, cluster: "RedbudCluster", spec: FaultSpec) -> None:
        self.cluster = cluster
        self.spec = spec
        self.stats = FaultStats()
        self._obs = cluster.obs
        #: The live fault registry (repro.faults.tracking): every fault
        #: this injector arms is registered on begin and stamped on
        #: heal, so oracles can ask what was biting when without a
        #: trace.  Always on -- it is pure bookkeeping.
        self.tracker = FaultTracker()
        env = cluster.env

        needs_retry = (
            spec.loss > 0.0
            or spec.delay_prob > 0.0
            or spec.partitions
            or spec.mds_restarts
            or spec.shard_partitions
            or spec.loss_bursts
            or spec.delay_bursts
        )
        if needs_retry and any(
            client.rpc.retry is None for client in cluster.clients
        ):
            raise ValueError(
                "fault spec can lose or stall RPCs but the cluster has no "
                "retry policy; build it with ClusterConfig(retry=...)"
            )

        # Per-direction link fault models, each on its own RNG stream.
        rng_root = cluster.root_rng
        self._links: _t.List["Link"] = []
        self._per_client: _t.Dict[int, _t.List[LinkFaults]] = {}
        for cid, uplink in enumerate(cluster.uplinks):
            downlink = cluster.mds.downlinks[cid]
            models = []
            for link in (uplink, downlink):
                model = LinkFaults(
                    rng=rng_root.stream("faults", link.name),
                    loss=spec.loss,
                    delay_prob=spec.delay_prob,
                    delay_max=spec.delay_max,
                    loss_bursts=[
                        (b.start, b.end, b.prob) for b in spec.loss_bursts
                    ],
                    delay_bursts=[
                        (b.start, b.end, b.prob, b.max_delay)
                        for b in spec.delay_bursts
                    ],
                    stats=self.stats,
                    obs=self._obs,
                )
                link.faults = model
                self._links.append(link)
                models.append(model)
            self._per_client[cid] = models

        # Scalar background loss/delay run until stop(); registered as
        # open-ended net-scoped faults so they excuse for the whole run.
        if spec.loss > 0.0:
            self._scalar_records = [
                self.tracker.begin(
                    "loss", ("net", "*"), env.now, permanent=True
                )
            ]
        else:
            self._scalar_records = []
        if spec.delay_prob > 0.0:
            self._scalar_records.append(
                self.tracker.begin(
                    "delay", ("net", "*"), env.now, permanent=True
                )
            )
        for burst in spec.loss_bursts:
            env.process(
                self._burst_marker("loss_burst", burst.start, burst.end),
                name=f"fault-loss-burst-{burst.start}",
            )
        for burst in spec.delay_bursts:
            env.process(
                self._burst_marker("delay_burst", burst.start, burst.end),
                name=f"fault-delay-burst-{burst.start}",
            )

        for partition in spec.partitions:
            if partition.client_id not in self._per_client:
                raise ValueError(
                    f"partition names client {partition.client_id}, but the "
                    f"cluster has {len(cluster.clients)} clients"
                )
            for model in self._per_client[partition.client_id]:
                model.windows.append((partition.start, partition.end))
            env.process(
                self._partition_marker(partition),
                name=f"fault-partition-{partition.client_id}",
            )
        for link in self._links:
            link.faults.seal()

        num_shards = cluster.metadata.num_shards
        for restart in spec.mds_restarts:
            if restart.shard is not None and restart.shard >= num_shards:
                raise ValueError(
                    f"mds_restart names shard {restart.shard}, but the "
                    f"cluster has {num_shards} metadata shard(s)"
                )
            env.process(
                self._mds_restart(restart),
                name=f"fault-mds-restart-{restart.at}",
            )

        for sp in spec.shard_partitions:
            if sp.shard >= num_shards:
                raise ValueError(
                    f"shard_partition names shard {sp.shard}, but the "
                    f"cluster has {num_shards} metadata shard(s)"
                )
            cluster.ports[sp.shard].partition_windows.append(
                (sp.start, sp.end)
            )
            env.process(
                self._shard_partition_marker(sp),
                name=f"fault-shard-partition-{sp.shard}",
            )

        if spec.disk_losses:
            group = getattr(cluster.array, "group", None)
            if group is None:
                raise ValueError(
                    "disk_loss requires a replicated cluster; build it "
                    "with --replication mirror3|block4-2"
                )
            members = [dl.member for dl in spec.disk_losses]
            if len(set(members)) != len(members):
                raise ValueError(
                    "disk_loss clauses must name distinct members"
                )
            for dl in spec.disk_losses:
                if dl.member >= group.size:
                    raise ValueError(
                        f"disk_loss names member {dl.member}, but group "
                        f"{group.arrangement.name} has {group.size} members"
                    )
            # Conservative budget: even with rebuilds, never schedule
            # more losses than the arrangement tolerates at once (the
            # documented failure assumption; see DESIGN section 13).
            if len(members) > group.arrangement.tolerates:
                raise ValueError(
                    f"{len(members)} disk_loss clauses exceed the "
                    f"{group.arrangement.name} fault budget "
                    f"(tolerates {group.arrangement.tolerates})"
                )
            for dl in spec.disk_losses:
                env.process(
                    self._disk_loss(dl),
                    name=f"fault-disk-loss-{dl.member}",
                )

        for death in spec.client_deaths:
            if death.client_id >= len(cluster.clients):
                raise ValueError(
                    f"client_death names client {death.client_id}, but the "
                    f"cluster has {len(cluster.clients)} clients"
                )
            env.process(
                self._client_death(death),
                name=f"fault-client-death-{death.client_id}",
            )

        # Injection counters as pull gauges so soak/SLO timelines can
        # plot fault rates alongside slo.* tracks.  The ``faults.<name>``
        # namespace already holds per-event counters, so the summary
        # lives under ``faults.injector.*``.
        if self._obs is not None:
            for key in self.summary():
                self._obs.registry.gauge(
                    f"faults.injector.{key}",
                    lambda k=key: self.summary()[k],
                )

    # -- timed fault processes ---------------------------------------------

    def _burst_marker(
        self, kind: str, start: float, end: float
    ) -> _t.Generator:
        """Track a loss/delay burst window (drops/delays are counted by
        the link models as messages actually hit the window)."""
        env = self.cluster.env
        yield env.timeout(max(0.0, start - env.now))
        if kind == "loss_burst":
            self.stats.loss_bursts += 1
        else:
            self.stats.delay_bursts += 1
        record = self.tracker.begin(kind, ("net", "*"), env.now, heal_at=end)
        self._instant(f"{kind}_start", until=end)
        yield env.timeout(max(0.0, end - env.now))
        self.tracker.heal(record, env.now)
        self._instant(f"{kind}_end")

    def _partition_marker(self, partition: Partition) -> _t.Generator:
        """Emit obs events at the partition edges (drops are counted by
        the link models as messages actually hit the window)."""
        env = self.cluster.env
        yield env.timeout(max(0.0, partition.start - env.now))
        record = self.tracker.begin(
            "partition", ("client", partition.client_id), env.now,
            heal_at=partition.end,
        )
        self._instant(
            "partition_start", client=partition.client_id,
            until=partition.end,
        )
        yield env.timeout(max(0.0, partition.end - env.now))
        self.tracker.heal(record, env.now)
        self._instant("partition_end", client=partition.client_id)

    def _mds_restart(self, restart: MdsRestart) -> _t.Generator:
        env = self.cluster.env
        yield env.timeout(max(0.0, restart.at - env.now))
        self.stats.mds_restarts += 1
        record = self.tracker.begin(
            "mds_restart",
            ("shard", restart.shard) if restart.shard is not None
            else ("mds", "*"),
            env.now,
            heal_at=env.now + restart.downtime,
        )
        # The server emits point instants (mds_crash/mds_restart); this
        # ranged marker carries ``until`` so the SLO timeline can excuse
        # the whole downtime window (tracked nemesis, ROADMAP 4b).
        self._instant(
            "mds_restart_begin",
            shard=restart.shard,
            until=env.now + restart.downtime,
        )
        self.cluster.metadata.crash(shard=restart.shard)
        yield env.timeout(restart.downtime)
        self.cluster.metadata.restart(shard=restart.shard)
        self.tracker.heal(record, env.now)

    def _shard_partition_marker(self, sp: ShardPartition) -> _t.Generator:
        """Emit obs events at the shard-partition edges (the drops are
        counted by the target shard's port as traffic hits the window)."""
        env = self.cluster.env
        yield env.timeout(max(0.0, sp.start - env.now))
        self.stats.shard_partitions += 1
        record = self.tracker.begin(
            "shard_partition", ("shard", sp.shard), env.now, heal_at=sp.end
        )
        self._instant("shard_partition_start", shard=sp.shard, until=sp.end)
        yield env.timeout(max(0.0, sp.end - env.now))
        self.tracker.heal(record, env.now)
        self._instant("shard_partition_end", shard=sp.shard)

    def _client_death(self, death: ClientDeath) -> _t.Generator:
        env = self.cluster.env
        yield env.timeout(max(0.0, death.at - env.now))
        # A death during workload setup would park the victim's setup
        # process and hang the run harness's all-clients setup barrier
        # forever, so deaths are deferred until setup has completed.
        while not getattr(self.cluster, "setup_complete", True):
            yield env.timeout(0.01)
        self.stats.client_deaths += 1
        # Open-ended: the client never comes back.  The record stays
        # active so violations scoped to this client remain excusable
        # (soak heals it once the lease GC has reclaimed the corpse).
        self.tracker.begin(
            "client_death", ("client", death.client_id), env.now,
            permanent=True,
        )
        self.cluster.clients[death.client_id].die()

    def _disk_loss(self, dl: DiskLoss) -> _t.Generator:
        env = self.cluster.env
        group = self.cluster.array.group
        yield env.timeout(max(0.0, dl.at - env.now))
        self.stats.disk_losses += 1
        record = self.tracker.begin(
            "disk_loss", ("member", dl.member), env.now,
            heal_at=(
                env.now + dl.rebuild_after
                if dl.rebuild_after is not None
                else None
            ),
            permanent=dl.rebuild_after is None,
        )
        if dl.rebuild_after is not None:
            self._instant(
                "disk_loss", member=dl.member,
                until=env.now + dl.rebuild_after,
            )
        else:
            self._instant("disk_loss", member=dl.member)
        group.lose(dl.member)
        if dl.rebuild_after is not None:
            yield env.timeout(dl.rebuild_after)
            copied = group.readmit(dl.member)
            self.stats.disk_readmissions += 1
            self.tracker.heal(record, env.now)
            self._instant(
                "disk_readmit", member=dl.member, resilvered=copied
            )

    def _instant(self, name: str, **args: _t.Any) -> None:
        if self._obs is None:
            return
        self._obs.tracer.instant(
            name, "fault", node="injector", actor="injector", **args
        )
        self._obs.registry.counter(f"faults.{name}").inc()

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Stop injecting message-level faults (post-schedule settling).

        Detaches the link fault models so retries succeed and the system
        can drain; already-scheduled timed faults still fire.
        """
        for link in self._links:
            link.faults = None
        for record in self._scalar_records:
            self.tracker.heal(record, self.cluster.env.now)

    def summary(self) -> _t.Dict[str, int]:
        return {
            "messages_dropped": self.stats.messages_dropped,
            "messages_delayed": self.stats.messages_delayed,
            "partition_drops": self.stats.partition_drops,
            "mds_restarts": self.stats.mds_restarts,
            "client_deaths": self.stats.client_deaths,
            "shard_partitions": self.stats.shard_partitions,
            "disk_losses": self.stats.disk_losses,
            "disk_readmissions": self.stats.disk_readmissions,
            "loss_bursts": self.stats.loss_bursts,
            "delay_bursts": self.stats.delay_bursts,
            "shard_partition_drops": sum(
                port.partition_drops for port in self.cluster.ports
            ),
            "total_injected": self.stats.total_injected,
        }
