"""Background commit daemons (§III.A step 4).

Each daemon loops: wait for a data-stable record in the commit queue,
check out up to *compound degree* records, construct one compound commit
RPC, send it to the MDS, and on reply mark every covered record
committed.  Because checkout requires ``data_stable``, the write order of
the paper is preserved: no file's metadata ever leaves the client before
its data is on disk.

Daemons are spawned and retired by the adaptive thread pool
(:mod:`repro.core.thread_pool`); a daemon parked on the queue can be
interrupted to retire instantly, while a busy daemon honours a retire
flag after finishing its in-flight RPC.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.commit_queue import CommitQueue
from repro.core.compound import CompoundController
from repro.core.records import CommitRecord
from repro.net.messages import CommitOp, CommitPayload
from repro.net.rpc import RpcClient
from repro.core.kernel.process import Interrupt

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


@dataclass
class CommitDaemonStats:
    """Shared counters across the daemon pool."""

    rpcs_sent: int = 0
    ops_committed: int = 0
    total_commit_latency: float = 0.0
    #: Histogram of compound degrees actually used: degree -> count.
    degree_histogram: _t.Dict[int, int] = field(default_factory=dict)

    @property
    def mean_degree(self) -> float:
        if self.rpcs_sent == 0:
            return 0.0
        return self.ops_committed / self.rpcs_sent

    @property
    def mean_commit_latency(self) -> float:
        """Mean enqueue-to-committed latency per op."""
        if self.ops_committed == 0:
            return 0.0
        return self.total_commit_latency / self.ops_committed


class CommitDaemonContext:
    """Everything a commit daemon needs, shared across the pool."""

    def __init__(
        self,
        env: "Effects",
        queue: CommitQueue,
        rpc: RpcClient,
        controller: CompoundController,
        on_committed: _t.Optional[_t.Callable[[CommitRecord], None]] = None,
        obs: _t.Optional[_t.Any] = None,
        node: str = "",
        witnesses: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.queue = queue
        self.rpc = rpc
        self.controller = controller
        self.on_committed = on_committed
        self.stats = CommitDaemonStats()
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self.node = node
        #: CURP witness set (:class:`repro.core.witness.WitnessSet`) of
        #: a replicated cluster, or None for the ordered-only path.
        self.witnesses = witnesses


class DaemonState:
    """Per-daemon flags the pool uses to manage the daemon's lifecycle."""

    __slots__ = ("idle", "retire_requested")

    def __init__(self) -> None:
        self.idle = True
        self.retire_requested = False


def commit_daemon(
    ctx: CommitDaemonContext, state: DaemonState
) -> _t.Generator:
    """Generator body of one background commit daemon."""
    env = ctx.env
    while not state.retire_requested:
        state.idle = True
        try:
            yield ctx.queue.wait_for_stable()
        except Interrupt:
            return  # Retired while parked.
        state.idle = False

        batch = ctx.queue.checkout_stable(limit=ctx.controller.degree)
        if not batch:
            continue  # Another daemon won the race.
        # Single-shard by construction (checkout never mixes shards);
        # the compound RPC routes to -- and its latency sample scores --
        # this shard's server.
        batch_shard = batch[0].shard

        batch_trace_ids = tuple(
            uid for record in batch for uid in record.trace_ids
        )
        if ctx.obs is not None:
            ctx.obs.tracer.instant(
                "compound_assembly",
                "daemon",
                node=ctx.node,
                actor="commit-daemon",
                update_ids=batch_trace_ids,
                degree=len(batch),
                files=[record.file_id for record in batch],
            )
        # Each checked-out record becomes exactly one commit op, stamped
        # with a client-unique op id.  A retried RPC resends the same ops
        # (same ids), which is what lets the MDS suppress replays.
        payload = CommitPayload(
            ops=[
                CommitOp(
                    file_id=record.file_id,
                    extents=record.extents,
                    enqueue_time=record.enqueue_time,
                    trace_ids=record.trace_ids,
                    op_id=ctx.rpc.next_op_id(),
                )
                for record in batch
            ]
        )
        sent_at = env.now
        # CURP fast path: commits whose file ranges are disjoint from
        # every unsynced op replicate unordered to the witnesses in one
        # fast RTT, after which the records count as committed; the
        # ordered MDS sync then proceeds with the records already
        # acknowledged.  Safe because checkout guarantees data-stable:
        # the extents are durable on >= quorum group members, and a
        # crash before the MDS sync replays the witnessed ops.
        witnessed = (
            ctx.witnesses is not None
            and ctx.witnesses.try_record(ctx.rpc.client_id, payload.ops)
        )
        if witnessed:
            yield env.timeout(ctx.witnesses.rtt)
            if ctx.obs is not None:
                ctx.obs.tracer.instant(
                    "witness_commit",
                    "daemon",
                    node=ctx.node,
                    actor="commit-daemon",
                    update_ids=batch_trace_ids,
                    degree=len(batch),
                )
            _finish_batch(ctx, batch, sent_at)
        try:
            yield ctx.rpc.call("commit", payload, trace_ids=batch_trace_ids)
        except Interrupt:
            # Retire requested mid-RPC; the reply is lost to this daemon
            # but the MDS applied the commit.  Treat records as committed
            # (witnessed batches already were); the witness entries stay
            # unsynced and are cleared by dedup at replay time.
            if not witnessed:
                _finish_batch(ctx, batch, sent_at)
            return
        ctx.controller.observe_rpc_latency(
            env.now - sent_at, shard=batch_shard
        )
        if witnessed:
            ctx.witnesses.sync(
                ctx.rpc.client_id, [op.op_id for op in payload.ops]
            )
        else:
            _finish_batch(ctx, batch, sent_at)


def _finish_batch(
    ctx: CommitDaemonContext,
    batch: _t.List[CommitRecord],
    sent_at: float,
) -> None:
    ctx.stats.rpcs_sent += 1
    degree = len(batch)
    ctx.stats.degree_histogram[degree] = (
        ctx.stats.degree_histogram.get(degree, 0) + 1
    )
    if ctx.obs is not None:
        reg = ctx.obs.registry
        reg.counter("commit.rpcs").inc()
        reg.histogram("commit.compound_degree").observe(degree)
    for record in batch:
        ctx.stats.ops_committed += 1
        ctx.stats.total_commit_latency += ctx.env.now - record.enqueue_time
        if ctx.obs is not None:
            ctx.obs.registry.counter("commit.ops_committed").inc()
            ctx.obs.registry.histogram("commit.latency").observe(
                ctx.env.now - record.enqueue_time
            )
        record.committed_event.succeed()
        if ctx.on_committed is not None:
            ctx.on_committed(record)
