"""The two write-path step sequences of §III.A.

*Synchronous commit* (the original Redbud, steps 1-4): the application
thread issues the data write, spins until it completes, then sends the
metadata commit RPC and waits for the reply.  The entire ordered write
sits on the application's critical path.

*Delayed commit* (steps 1-4 of the delayed listing): the data write is
issued, the commit request is inserted into the commit queue (dedup per
file), and the update returns immediately -- order keeping is now the
background daemons' job.

*Unordered commit* is a deliberately broken control mode used by the
consistency tests: it enqueues commits that do **not** wait for data
stability, demonstrating that the invariant checker catches exactly the
corruption ordered writes prevent.
"""

from __future__ import annotations

import typing as _t

from repro.core.commit_queue import CommitQueue
from repro.core.records import CommitRecord
from repro.mds.extent import Extent
from repro.net.messages import CommitOp, CommitPayload
from repro.net.rpc import RpcClient
from repro.core.kernel.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects

#: Valid commit-mode names, as accepted by cluster configuration.
COMMIT_MODES = ("synchronous", "delayed", "unordered")


class CommitProtocol:
    """Strategy interface for finishing an update after ``writepage``."""

    #: Whether this protocol runs background commit daemons.
    uses_daemons = False

    def finish_update(
        self,
        file_id: int,
        extents: _t.List[Extent],
        data_events: _t.List[Event],
        update_id: _t.Optional[int] = None,
    ) -> _t.Generator:
        """Generator completing the update per the protocol's rules.

        Returns (via StopIteration) the :class:`CommitRecord` tracking
        the commit, or ``None`` if the commit already happened inline.
        ``update_id`` is the logical update's causal-trace id (None when
        tracing is off); it tags every downstream stage.
        """
        raise NotImplementedError

    def on_record_committed(self, record: CommitRecord) -> None:
        """Hook invoked by daemons when a queued record commits."""


class SynchronousCommitProtocol(CommitProtocol):
    """Ordered writes on the application's critical path."""

    def __init__(
        self,
        env: "Effects",
        rpc: RpcClient,
        obs: _t.Optional[_t.Any] = None,
        node: str = "",
    ) -> None:
        self.env = env
        self.rpc = rpc
        self.obs = obs
        self.node = node
        self.commits_sent = 0

    def finish_update(
        self,
        file_id: int,
        extents: _t.List[Extent],
        data_events: _t.List[Event],
        update_id: _t.Optional[int] = None,
    ) -> _t.Generator:
        trace_ids = (update_id,) if update_id is not None else ()
        # Step 2: wait for local write completion (the barrier of Fig. 1a).
        wait_span = None
        if self.obs is not None:
            wait_span = self.obs.tracer.begin(
                "sync_wait_data",
                "client",
                node=self.node,
                actor="app",
                update_ids=trace_ids,
                file_id=file_id,
            )
        for event in data_events:
            yield event
        if wait_span is not None:
            self.obs.tracer.end(wait_span)
        # Steps 3-4: send the commit RPC and wait for the reply.
        payload = CommitPayload(
            ops=[
                CommitOp(
                    file_id=file_id,
                    extents=extents,
                    enqueue_time=self.env.now,
                    trace_ids=trace_ids,
                    op_id=self.rpc.next_op_id(),
                )
            ]
        )
        yield self.rpc.call("commit", payload, trace_ids=trace_ids)
        self.commits_sent += 1
        return None


class DelayedCommitProtocol(CommitProtocol):
    """Ordered writes handed to the file system's background daemons."""

    uses_daemons = True
    require_data_stable = True

    def __init__(self, queue: CommitQueue) -> None:
        self.queue = queue

    def finish_update(
        self,
        file_id: int,
        extents: _t.List[Extent],
        data_events: _t.List[Event],
        update_id: _t.Optional[int] = None,
    ) -> _t.Generator:
        # Backpressure: a full commit queue blocks the application (the
        # bound models finite client memory for pending commits).
        if not self.queue.has_room():
            yield self.queue.wait_for_room()
        record = self.queue.insert(
            file_id,
            extents,
            data_events,
            require_data_stable=self.require_data_stable,
            update_id=update_id,
        )
        # Step 3: return immediately; the daemons take it from here.
        return record


class UnorderedCommitProtocol(DelayedCommitProtocol):
    """CONTROL MODE: commits do not wait for data stability.

    This violates the ordered-writes rule on purpose so tests can show
    the invariant checker detecting dangling metadata after a crash.
    """

    require_data_stable = False


def make_protocol(
    mode: str,
    env: "Effects",
    rpc: RpcClient,
    queue: _t.Optional[CommitQueue],
    obs: _t.Optional[_t.Any] = None,
    node: str = "",
) -> CommitProtocol:
    """Factory mapping a mode name to its protocol strategy."""
    if mode == "synchronous":
        return SynchronousCommitProtocol(env, rpc, obs=obs, node=node)
    if mode == "delayed":
        if queue is None:
            raise ValueError("delayed commit requires a commit queue")
        return DelayedCommitProtocol(queue)
    if mode == "unordered":
        if queue is None:
            raise ValueError("unordered commit requires a commit queue")
        return UnorderedCommitProtocol(queue)
    raise ValueError(f"unknown commit mode {mode!r}; pick from {COMMIT_MODES}")
