"""The effects boundary: the capability object protocol code runs on.

Every client, MDS, commit-queue and witness routine in this reproduction
is a generator that ``yield``\\ s events.  :class:`Effects` is the
*capability object* those generators receive instead of a concrete
simulator environment: it provides time (``now``, ``sleep``), scheduling
(``schedule``, ``spawn``), event construction (``event``, ``any_of``,
``all_of``) and the optional I/O capabilities (``send``, ``recv``,
``disk_submit``) plus RNG and trace hooks.

Two substrates implement the contract:

- :class:`repro.sim.effects.SimEffects` (the virtual-time calendar;
  byte-identical to the pre-refactor engine -- it *is* the engine), and
- :class:`repro.rt.AsyncioEffects` (real asyncio timers and TCP sockets).

Substrate contract
------------------
A substrate must provide:

``now``
    Seconds since the substrate's epoch (virtual or monotonic-real).
``schedule(event, delay=0.0, priority=PRIORITY_NORMAL)``
    Arrange for ``event``'s callbacks to run ``delay`` seconds from now.
    The virtual substrate guarantees a deterministic total order over
    ``(time, priority, sequence)``; the real substrate guarantees only
    per-``call_soon`` FIFO -- see DESIGN §16 for exactly what that means
    for determinism.
``_active_process``
    Writable slot the process trampoline uses to expose the currently
    resuming generator (``active_process`` reads it).
``_note_cancelled()``
    Bookkeeping hook invoked by :meth:`Timeout.cancel`; the virtual
    substrate compacts tombstones, the real substrate ignores it (a
    cancelled asyncio timer fires into a no-op).

Everything else on this class is implemented once, in terms of that
contract, and inherited by both substrates.
"""

from __future__ import annotations

import typing as _t

from repro.core.kernel.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.core.kernel.process import Process
from repro.core.kernel.resources import Resource, Store

__all__ = ["Effects"]


class Effects:
    """Capability object giving protocol code its effects.

    Instances are *substrates*: concrete subclasses supply the clock and
    scheduler (see the module docstring for the contract).  Protocol
    modules type-hint against this class and never import a substrate.
    """

    __slots__ = ()

    #: The process currently being resumed (written by the trampoline).
    #: Substrates that use ``__slots__`` shadow this with a real slot.
    _active_process: _t.Optional[Process] = None

    # -- substrate contract ------------------------------------------------

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or real)."""
        raise NotImplementedError

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Arrange for ``event`` to be processed ``delay`` from now."""
        raise NotImplementedError

    def _note_cancelled(self) -> None:
        """A scheduled entry was tombstoned (see ``Timeout.cancel``).

        Substrates with an inspectable calendar compact it; the default
        is a no-op (an asyncio timer firing into a tombstone is harmless).
        """

    # -- event factories (implemented once, shared by substrates) ----------

    @property
    def active_process(self) -> _t.Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: _t.Any = None) -> Timeout:
        """Alias for :meth:`timeout` -- the effects verb.

        Returned handles support explicit ``.cancel()``; code that races
        a sleep against another event (RPC retry timers) must cancel the
        loser rather than rely on substrate-specific cleanup.
        """
        return self.timeout(delay, value)

    def process(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: _t.Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def spawn(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: _t.Optional[str] = None,
    ) -> Process:
        """Alias for :meth:`process` -- the effects verb."""
        return self.process(generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """An event that fires when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """An event that fires when any event in ``events`` has."""
        return AnyOf(self, events)

    def store(self, capacity: float = float("inf")) -> Store:
        """A FIFO buffer bound to this substrate."""
        return Store(self, capacity)

    def resource(self, capacity: int = 1) -> Resource:
        """A counted semaphore bound to this substrate."""
        return Resource(self, capacity)

    # -- I/O capabilities (substrate-optional) -----------------------------

    def send(self, channel: _t.Any, payload: _t.Any) -> Event:
        """Transmit ``payload`` on ``channel``; event fires when sent.

        The virtual substrate models transmission with
        :class:`repro.net.link.Link` objects instead; only the real
        substrate (framed TCP) implements this verb.
        """
        raise NotImplementedError(
            f"{type(self).__name__} provides no send capability"
        )

    def recv(self, channel: _t.Any) -> Event:
        """Event yielding the next message received on ``channel``."""
        raise NotImplementedError(
            f"{type(self).__name__} provides no recv capability"
        )

    def disk_submit(
        self,
        volume_offset: int,
        length: int,
        file_id: int = 0,
        sync: bool = False,
    ) -> Event:
        """Submit a block write; event fires when durable.

        The virtual substrate routes this through the modelled disk
        array (:class:`repro.storage.blockdev.BlockDevice`); the real
        substrate writes an on-disk volume file.  Raises until a disk
        capability is attached with :meth:`attach_disk`.
        """
        disk = getattr(self, "_disk", None)
        if disk is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no disk capability attached"
            )
        return disk.submit_write(volume_offset, length, file_id, sync=sync)

    def attach_disk(self, disk: _t.Any) -> None:
        """Install the object backing :meth:`disk_submit`.

        ``disk`` needs a ``submit_write(volume_offset, length, file_id,
        sync=) -> Event`` method.  Substrates with ``__slots__`` that do
        not include ``_disk`` cannot carry one (the simulator wires
        block devices explicitly instead).
        """
        self._disk = disk  # type: ignore[attr-defined]

    # -- RNG and trace hooks ----------------------------------------------

    #: Observability bundle (``repro.obs.Instrumentation``) or None.
    #: Protocol objects take their own ``obs`` parameters today; the
    #: hook exists so substrate-level code (rt server loops) can share
    #: one without threading it through every constructor.
    obs: _t.Optional[_t.Any] = None

    #: Root :class:`repro.util.rng.StreamRNG` for substrate-level draws,
    #: or None.  Protocol objects keep taking explicit ``*_rng`` streams
    #: (determinism depends on the split discipline), but the capability
    #: travels with the substrate for code that needs ad-hoc jitter.
    rng: _t.Optional[_t.Any] = None
