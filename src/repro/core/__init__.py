"""The paper's contribution: the Delayed Commit Protocol.

This package implements §III and §IV of the paper:

- :mod:`repro.core.records` / :mod:`repro.core.commit_queue` -- the commit
  queue into which update requests deposit their remote-commit work, with
  per-file deduplication ("one commit request is enough to commit the
  metadata of each file").
- :mod:`repro.core.daemon` -- background commit daemons that check out
  local-I/O-completed records and send compound commit RPCs.
- :mod:`repro.core.thread_pool` -- the adaptive commit thread pool,
  ``ThreadNums = rho * QueueLen`` (§IV.B).
- :mod:`repro.core.compound` -- the adaptive RPC compound-degree
  controller (§IV.B).
- :mod:`repro.core.delegation` -- the client-side double-space-pool for
  space delegation (§IV.A).
- :mod:`repro.core.protocol` -- the synchronous and delayed write-path
  step sequences of §III.A.
"""

from repro.core.commit_queue import CommitQueue
from repro.core.compound import CompoundController
from repro.core.daemon import CommitDaemonContext
from repro.core.delegation import DoubleSpacePool
from repro.core.records import CommitRecord
from repro.core.thread_pool import AdaptiveCommitThreadPool

__all__ = [
    "AdaptiveCommitThreadPool",
    "CommitDaemonContext",
    "CommitQueue",
    "CommitRecord",
    "CompoundController",
    "DoubleSpacePool",
]
