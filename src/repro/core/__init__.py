"""The paper's contribution: the Delayed Commit Protocol.

This package implements §III and §IV of the paper:

- :mod:`repro.core.records` / :mod:`repro.core.commit_queue` -- the commit
  queue into which update requests deposit their remote-commit work, with
  per-file deduplication ("one commit request is enough to commit the
  metadata of each file").
- :mod:`repro.core.daemon` -- background commit daemons that check out
  local-I/O-completed records and send compound commit RPCs.
- :mod:`repro.core.thread_pool` -- the adaptive commit thread pool,
  ``ThreadNums = rho * QueueLen`` (§IV.B).
- :mod:`repro.core.compound` -- the adaptive RPC compound-degree
  controller (§IV.B).
- :mod:`repro.core.delegation` -- the client-side double-space-pool for
  space delegation (§IV.A).
- :mod:`repro.core.protocol` -- the synchronous and delayed write-path
  step sequences of §III.A.
- :mod:`repro.core.effects` / :mod:`repro.core.kernel` -- the effects
  boundary and the substrate-neutral event kernel everything above runs
  on.

The conveniences below are re-exported lazily (PEP 562): the kernel is a
subpackage of this package, so an eager ``from repro.core.compound
import ...`` here would make *any* ``repro.core.kernel`` import execute
the whole protocol layer first -- a cycle when the importer is a module
the protocol layer itself uses (``repro.net.link``).
"""

import typing as _t

__all__ = [
    "AdaptiveCommitThreadPool",
    "CommitDaemonContext",
    "CommitQueue",
    "CommitRecord",
    "CompoundController",
    "DoubleSpacePool",
    "Effects",
]

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "AdaptiveCommitThreadPool": "repro.core.thread_pool",
    "CommitDaemonContext": "repro.core.daemon",
    "CommitQueue": "repro.core.commit_queue",
    "CommitRecord": "repro.core.records",
    "CompoundController": "repro.core.compound",
    "DoubleSpacePool": "repro.core.delegation",
    "Effects": "repro.core.effects",
}


def __getattr__(name: str) -> _t.Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> _t.List[str]:
    return sorted(__all__)
