"""The adaptive commit thread pool (§IV.B).

"The number of commit threads varies in the commit thread pool with the
length of commit queue ...  The thread numbers are kept as follows:
ThreadNums_cur = rho * QueueLen_cur, where rho =
ThreadNums_max / QueueLen_max."

The pool re-evaluates the target every ``control_period`` seconds, spawns
daemons on growth and retires them on shrink (idle daemons are
interrupted immediately; busy ones finish their in-flight RPC first).
Every evaluation also records a ``(time, thread_count, queue_length)``
sample -- exactly the two series plotted in Fig. 6.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

from repro.core.daemon import CommitDaemonContext, DaemonState, commit_daemon
from repro.core.kernel.process import Interrupt, Process

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


@dataclass(frozen=True)
class ThreadPoolPolicy:
    """Tunables of the adaptive pool."""

    #: Paper's maximum commit thread count (Fig. 6 uses 9).
    max_threads: int = 9
    #: Queue length at which the pool saturates at ``max_threads``.
    #: The paper's clients (16 app threads, minutes-long runs) reached
    #: queue lengths of 400+; at this reproduction's scale the queues
    #: are an order of magnitude shorter, so rho is scaled to match.
    max_queue_len: int = 16
    #: At least one daemon always runs (NPB stays at exactly one).
    min_threads: int = 1
    #: Controller evaluation (and Fig. 6 sampling) period, seconds.
    control_period: float = 0.1

    @property
    def rho(self) -> float:
        """threads per unit of queue length."""
        return self.max_threads / self.max_queue_len


class _DaemonHandle:
    __slots__ = ("process", "state")

    def __init__(self, process: Process, state: DaemonState) -> None:
        self.process = process
        self.state = state


class AdaptiveCommitThreadPool:
    """Spawns/retires commit daemons to track the commit-queue length."""

    def __init__(
        self,
        env: "Effects",
        ctx: CommitDaemonContext,
        policy: ThreadPoolPolicy = ThreadPoolPolicy(),
    ) -> None:
        if policy.min_threads < 1 or policy.max_threads < policy.min_threads:
            raise ValueError(f"bad thread bounds in {policy}")
        self.env = env
        self.ctx = ctx
        self.policy = policy
        self._daemons: _t.List[_DaemonHandle] = []
        #: (time, thread_count, queue_length) -- the Fig. 6 series.
        self.samples: _t.List[_t.Tuple[float, int, int]] = []
        self.spawns = 0
        self.retires = 0
        for _ in range(policy.min_threads):
            self._spawn()
        self._controller = env.process(
            self._control_loop(), name="commit-pool-controller"
        )

    # -- sizing ------------------------------------------------------------

    @property
    def thread_count(self) -> int:
        return len(self._daemons)

    def target_threads(self, queue_length: int) -> int:
        """The paper's formula, clamped to the pool bounds."""
        raw = math.ceil(self.policy.rho * queue_length)
        return max(self.policy.min_threads, min(self.policy.max_threads, raw))

    def _control_loop(self) -> _t.Generator:
        try:
            yield from self._control_iterations()
        except Interrupt:
            return

    def _control_iterations(self) -> _t.Generator:
        while True:
            yield self.env.timeout(self.policy.control_period)
            self._reap_finished()
            queue_length = len(self.ctx.queue)
            target = self.target_threads(queue_length)
            while self.thread_count < target:
                self._spawn()
            while self.thread_count > target:
                if not self._retire_one():
                    break
            self.samples.append(
                (self.env.now, self.thread_count, queue_length)
            )

    def _spawn(self) -> None:
        state = DaemonState()
        process = self.env.process(
            commit_daemon(self.ctx, state),
            name=f"commit-daemon-{self.spawns}",
        )
        self._daemons.append(_DaemonHandle(process, state))
        self.spawns += 1

    def _retire_one(self) -> bool:
        """Retire one daemon, preferring an idle (parked) one."""
        for i, handle in enumerate(self._daemons):
            if handle.state.idle and handle.process.is_alive:
                handle.state.retire_requested = True
                handle.process.interrupt("retire")
                self._daemons.pop(i)
                self.retires += 1
                return True
        for i, handle in enumerate(self._daemons):
            if not handle.state.retire_requested:
                handle.state.retire_requested = True
                self._daemons.pop(i)
                self.retires += 1
                return True
        return False

    def _reap_finished(self) -> None:
        self._daemons = [h for h in self._daemons if h.process.is_alive]

    # -- shutdown (tests / crash) ----------------------------------------------

    def stop(self) -> None:
        """Interrupt every daemon and the controller (client crash)."""
        for handle in self._daemons:
            if handle.process.is_alive:
                handle.state.retire_requested = True
                if handle.state.idle:
                    handle.process.interrupt("stop")
        self._daemons.clear()
        if self._controller.is_alive:
            self._controller.interrupt("stop")
