"""Commit records: the unit of work in the commit queue.

A record accumulates, per file, the extents whose metadata must be pushed
to the MDS and the completion events of the local data writes backing
them.  The ordered-writes rule of §III is encoded in
:attr:`CommitRecord.data_stable`: the record may be *checked out* (its
commit RPC constructed and sent) only once every backing data write has
completed.
"""

from __future__ import annotations

import typing as _t

from repro.mds.extent import Extent
from repro.core.kernel.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


class CommitRecord:
    """Pending metadata commit for one file.

    Commit requests of the same file share the in-memory metadata
    structure, so one record per file suffices (§III.A); subsequent
    updates to the same file *merge into* the existing record via
    :meth:`absorb`.
    """

    __slots__ = (
        "env",
        "file_id",
        "shard",
        "extents",
        "data_events",
        "enqueue_time",
        "committed_event",
        "checked_out",
        "require_data_stable",
        "trace_ids",
        "trace_span",
        "pending_data",
        "queue_seq",
        "_stable",
    )

    def __init__(
        self,
        env: "Effects",
        file_id: int,
        extents: _t.List[Extent],
        data_events: _t.List[Event],
        require_data_stable: bool = True,
        shard: int = 0,
    ) -> None:
        self.env = env
        self.file_id = file_id
        #: Metadata shard owning the file; commit batches never mix
        #: shards (one compound RPC targets one server).
        self.shard = shard
        self.extents = list(extents)
        self.data_events = list(data_events)
        self.enqueue_time = env.now
        #: Fires once the MDS has applied this record's commit.
        self.committed_event = Event(env)
        self.checked_out = False
        #: False only in the deliberately-broken "unordered" control mode.
        self.require_data_stable = require_data_stable
        #: Observability: ids of the logical updates merged into this
        #: record, and the open ``commit_queued`` span (both unused --
        #: empty/None -- when tracing is off).
        self.trace_ids: _t.Tuple[int, ...] = ()
        self.trace_span: _t.Optional[_t.Any] = None
        #: Distinct data events still in flight, maintained by the owning
        #: :class:`~repro.core.commit_queue.CommitQueue`'s stability
        #: watch.  Purely an accelerator: a positive count proves the
        #: record unstable without touching ``data_events``, which keeps
        #: the daemons' checkout scans O(1) per record at 10k-client
        #: queue depths.  Free-standing records (no queue) leave it at 0
        #: and fall back to the full scan.
        self.pending_data = 0
        #: Arrival sequence in the owning queue (FIFO checkout key).
        self.queue_seq = -1
        self._stable = False

    @property
    def data_stable(self) -> bool:
        """True when every backing data write has hit the disk."""
        if not self.require_data_stable:
            return True
        if self._stable:
            return True
        if self.pending_data:
            return False
        if all(ev.processed for ev in self.data_events):
            # Stability is monotonic until the next merge (processed
            # events never un-process); absorb() resets the cache.
            self._stable = True
            return True
        return False

    @property
    def committed(self) -> bool:
        return self.committed_event.triggered

    def absorb(
        self, extents: _t.List[Extent], data_events: _t.List[Event]
    ) -> None:
        """Fold another update of the same file into this record."""
        if self.checked_out:
            raise RuntimeError(
                f"record for file {self.file_id} already checked out"
            )
        self.extents.extend(extents)
        self.data_events.extend(data_events)
        self._stable = False

    def age(self) -> float:
        return self.env.now - self.enqueue_time

    def __repr__(self) -> str:
        return (
            f"<CommitRecord file={self.file_id} extents={len(self.extents)} "
            f"stable={self.data_stable} committed={self.committed}>"
        )
