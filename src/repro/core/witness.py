"""CURP-style witnesses for commutative 1-RTT commits.

The delayed-commit protocol already guarantees every checked-out commit
op is *data-stable* -- its extents are durable on the (replicated) disk
array before the op leaves the client.  What the ordered path still
pays is the full MDS round trip (queueing + journal service) before an
fsync can return.  Following CURP ("Exploiting Commutativity For
Practical Fast Replication"), commits touching **disjoint file ranges
commute**: they can be recorded unordered on a set of witnesses
co-located with the storage-group replicas in one fast RTT, letting the
client treat the op as committed while the ordered MDS sync proceeds in
the background.

Fallback rules (checked per compound batch, all-or-nothing):

- *conflict*: an op overlaps an unsynced op's file range (any client)
  -- ordering now matters, take the ordered path;
- *overflow*: the witnesses' slot budget is exhausted -- they cannot
  accept more unsynced state.

Every witness stores the same entries (the client sends to all of them
and needs all acks inside the fast RTT), so the set is modelled as one
logical store plus a replication factor.  Entries are removed when the
background MDS sync completes.  After a whole-cluster crash, unsynced
witness entries are replayed into the MDS -- deduplicated against its
durable ``(client, op_id)`` result table, so an op that did reach the
MDS before the crash is not applied twice (the exactly-once oracle
checks this).
"""

from __future__ import annotations

import typing as _t

from repro.util.intervals import IntervalSet

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.messages import CommitOp
    from repro.core.effects import Effects


class WitnessSet:
    """The witness ensemble of one replicated cluster."""

    def __init__(
        self,
        env: "Effects",
        num_witnesses: int,
        capacity: int,
        rtt: float,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        if num_witnesses < 1:
            raise ValueError(f"need >= 1 witness, got {num_witnesses}")
        if capacity < 1:
            raise ValueError(f"witness capacity must be >= 1: {capacity}")
        if rtt <= 0:
            raise ValueError(f"witness rtt must be positive: {rtt}")
        self.env = env
        self.num_witnesses = num_witnesses
        self.capacity = capacity
        #: One fast round trip to the slowest witness (virtual seconds).
        self.rtt = rtt
        self.obs = obs
        #: Unsynced entries: (client_id, op_id) -> (file_id, extents).
        self._entries: _t.Dict[
            _t.Tuple[int, int], _t.Tuple[int, _t.Tuple[_t.Any, ...]]
        ] = {}
        #: Per-file unsynced ranges (file-offset space) for conflict
        #: detection -- the same interval machinery the commit queue's
        #: dedup uses.
        self._outstanding: _t.Dict[int, IntervalSet] = {}
        # Counters surfaced as curp.* pull gauges (instrument.py).
        self.fast_commits = 0
        self.fallback_conflict = 0
        self.fallback_overflow = 0
        self.synced_ops = 0
        self.replayed_ops = 0

    def __len__(self) -> int:
        return len(self._entries)

    def outstanding_ranges(self, file_id: int) -> IntervalSet:
        return self._outstanding.get(file_id, IntervalSet())

    # -- the fast path -----------------------------------------------------

    def try_record(
        self, client_id: int, ops: _t.Sequence["CommitOp"]
    ) -> bool:
        """Record a batch on every witness, or refuse it atomically.

        Returns True when the whole batch was accepted (the caller then
        owes one witness RTT before treating it as committed); False on
        conflict or overflow (the caller takes the ordered path).
        """
        if len(self._entries) + len(ops) > self.capacity:
            self.fallback_overflow += 1
            return False
        for op in ops:
            ranges = self._outstanding.get(op.file_id)
            if ranges is None:
                continue
            for extent in op.extents:
                if ranges.overlaps(extent.file_offset, extent.file_end):
                    self.fallback_conflict += 1
                    return False
        for op in ops:
            key = (client_id, op.op_id)
            self._entries[key] = (op.file_id, tuple(op.extents))
            ranges = self._outstanding.setdefault(
                op.file_id, IntervalSet()
            )
            for extent in op.extents:
                ranges.add(extent.file_offset, extent.file_end)
        self.fast_commits += len(ops)
        return True

    def sync(self, client_id: int, op_ids: _t.Iterable[int]) -> None:
        """Drop entries once the ordered MDS sync confirmed them."""
        for op_id in op_ids:
            entry = self._entries.pop((client_id, op_id), None)
            if entry is None:
                continue
            file_id, extents = entry
            ranges = self._outstanding.get(file_id)
            if ranges is not None:
                for extent in extents:
                    ranges.remove(extent.file_offset, extent.file_end)
                if not ranges:
                    del self._outstanding[file_id]
            self.synced_ops += 1

    # -- recovery ----------------------------------------------------------

    def unsynced_ops(
        self,
    ) -> _t.List[_t.Tuple[int, int, int, _t.Tuple[_t.Any, ...]]]:
        """Snapshot of unsynced entries for crash-recovery replay.

        Sorted by (client, op id) so replay order -- and therefore the
        recovered MDS oplog -- is deterministic.
        """
        return [
            (client_id, op_id, file_id, extents)
            for (client_id, op_id), (file_id, extents) in sorted(
                self._entries.items()
            )
        ]

    def summary(self) -> _t.Dict[str, int]:
        return {
            "witnesses": self.num_witnesses,
            "capacity": self.capacity,
            "unsynced": len(self._entries),
            "fast_commits": self.fast_commits,
            "fallback_conflict": self.fallback_conflict,
            "fallback_overflow": self.fallback_overflow,
            "synced_ops": self.synced_ops,
            "replayed_ops": self.replayed_ops,
        }
