"""Event primitives of the substrate-neutral protocol kernel.

An :class:`Event` is a one-shot future on *some* timeline -- virtual
(:class:`repro.sim.engine.Environment`) or real
(:class:`repro.rt.AsyncioEffects`).  It moves through three states:

1. *pending* -- created but not yet triggered; holds a callback list.
2. *triggered* -- given a value (or an exception) and handed to the
   substrate's scheduler; still holds its callbacks.
3. *processed* -- dispatched by the substrate; its callbacks have run and
   the callback list is discarded (set to ``None``).

Processes (see :mod:`repro.core.kernel.process`) suspend by yielding
events; the event's callback resumes the process generator when the event
is processed.

The only thing an event asks of its environment is the
:class:`~repro.core.effects.Effects` contract: ``schedule(event, delay,
priority)``, ``now``, and the ``_note_cancelled`` bookkeeping hook.  That
is what lets the identical classes run on either substrate.
"""

from __future__ import annotations

import typing as _t
from sys import getrefcount as _getrefcount

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.effects import Effects

#: Sentinel stored in ``Event._value`` while the event is untriggered.
PENDING = object()

#: Default scheduling priority band; lower fires first at equal times.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence on the timeline.

    Events carry either a *value* (success) or an *exception* (failure).
    Other events and processes subscribe through :attr:`callbacks`.

    Parameters
    ----------
    env:
        The owning effects substrate.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Effects") -> None:
        self.env = env
        #: Callables invoked (with this event) when the event is processed.
        self.callbacks: _t.Optional[list] = []
        self._value: _t.Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has a value and is on the calendar."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only meaningful if triggered)."""
        return self._ok

    @property
    def defused(self) -> bool:
        """``True`` if a failure was acknowledged by some handler."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    @property
    def value(self) -> _t.Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns ``self`` so triggering can be chained or yielded.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy state from another (triggered) event and schedule.

        Used as a callback to chain events together.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed time delay."""

    __slots__ = ("delay",)

    def __init__(
        self, env: "Effects", delay: float, value: _t.Any = None
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def cancel(self) -> None:
        """Withdraw a pending timeout: it will never fire.

        Lazy invalidation: the scheduled entry is tombstoned in place
        (callbacks dropped) rather than dug out of the scheduler; the
        dispatch loops skip it, and the virtual-time environment compacts
        the scheduler when tombstones pile up, so repeated
        cancel/reschedule churn (RPC retry timers, backoff) keeps the
        calendar bounded by the live event count.  On the asyncio
        substrate the underlying timer simply fires into a no-op.
        Cancelling an already-processed or already-cancelled timeout is a
        no-op.
        """
        if self.callbacks is None:
            return
        self.callbacks = None
        self.env._note_cancelled()

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of event -> value produced by a :class:`Condition`.

    Preserves the order the events were passed in, so
    ``list(cv.values())`` lines up with the original event list.
    """

    __slots__ = ("events",)

    def __init__(self, events: _t.List[Event]) -> None:
        self.events = events

    def __getitem__(self, event: Event) -> _t.Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def keys(self) -> _t.Iterator[Event]:
        return iter(self.events)

    def values(self) -> _t.Iterator[_t.Any]:
        return (e._value for e in self.events)

    def items(self) -> _t.Iterator[_t.Tuple[Event, _t.Any]]:
        return ((e, e._value) for e in self.events)

    def todict(self) -> _t.Dict[Event, _t.Any]:
        return dict(self.items())

    def __repr__(self) -> str:
        pairs = ", ".join(f"{e!r}: {e._value!r}" for e in self.events)
        return f"<ConditionValue {{{pairs}}}>"


class Condition(Event):
    """An event that triggers when a boolean combination of events holds.

    ``evaluate`` receives ``(events, num_triggered)`` and returns ``True``
    when the condition is satisfied.  On success the condition's value is a
    :class:`ConditionValue` of all *triggered* constituent events.

    A failure of any constituent immediately fails the condition (and the
    constituent is marked defused, since the condition took ownership).
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Effects",
        evaluate: _t.Callable[[_t.List[Event], int], bool],
        events: _t.Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Immediately-true condition (e.g. AllOf([])).
        if self._evaluate(self._events, 0) and not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._detach_unfired()
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            done = [e for e in self._events if e.processed]
            self.succeed(ConditionValue(done))
            self._detach_unfired()

    def _detach_unfired(self) -> None:
        """Unsubscribe from constituents that will no longer matter.

        Once the condition has triggered, its ``_check`` callback on the
        still-unfired constituents is dead weight.  Removing it lets an
        orphaned timeout -- the ubiquitous ``any_of([reply, timeout])``
        RPC pattern, where the reply wins -- be cancelled outright
        instead of sitting on the calendar until its deadline.  A
        timeout is only cancelled when nothing else can observe it:
        no other subscriber, and no outside reference (the refcount
        check -- the ``_events`` list, the loop local and getrefcount's
        argument account for exactly three).
        """
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is None:
                continue
            try:
                callbacks.remove(self._check)
            except ValueError:
                continue
            if (
                not callbacks
                and type(event) is Timeout
                and _getrefcount(event) <= 3
            ):
                event.cancel()

    @staticmethod
    def all_events(events: _t.List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: _t.List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition satisfied when *all* of ``events`` have succeeded."""

    def __init__(self, env: "Effects", events: _t.Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition satisfied when *any* of ``events`` has succeeded."""

    def __init__(self, env: "Effects", events: _t.Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
