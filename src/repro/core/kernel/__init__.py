"""Substrate-neutral event kernel shared by both effects substrates.

This package holds the event, process and resource primitives the
protocol layer (``repro.core``, ``repro.client``, ``repro.mds``,
``repro.net``) is written against.  The classes depend on their
environment only through the :class:`~repro.core.effects.Effects`
contract -- ``schedule(event, delay, priority)``, ``now``, the
``_active_process`` slot and the ``_note_cancelled`` bookkeeping hook --
so the *identical* objects run on the virtual-time calendar
(:class:`repro.sim.engine.Environment`) and on real asyncio timers
(:class:`repro.rt.AsyncioEffects`).

Historically these classes lived in ``repro.sim``; that package now
re-exports them for compatibility, and all protocol code imports from
here so it carries no dependency on the simulator.
"""

from repro.core.kernel.events import (
    PENDING,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Timeout,
)
from repro.core.kernel.process import Interrupt, Process
from repro.core.kernel.resources import (
    Container,
    FilterStore,
    FilterStoreGet,
    PriorityItem,
    PriorityStore,
    Request,
    Resource,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "PENDING",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Event",
    "FilterStore",
    "FilterStoreGet",
    "Interrupt",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
]
