"""Generator-backed processes of the substrate-neutral kernel.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.core.kernel.events.Event`; the process
suspends until that event is processed, at which point the event's value
(or exception) is sent (or thrown) back into the generator.

Processes are themselves events -- they trigger when the generator returns
(success, with the generator's return value) or raises (failure).  This
lets one process ``yield`` another to join on it.

The trampoline only ever touches the environment through the
:class:`~repro.core.effects.Effects` contract (``schedule`` and the
``_active_process`` slot), so the identical class runs on the virtual
clock and on asyncio.

Interrupts
----------
:meth:`Process.interrupt` throws an :class:`Interrupt` into the generator
at its current suspension point.  This is how the adaptive commit-thread
pool retires surplus daemons (see :mod:`repro.core.thread_pool`).
"""

from __future__ import annotations

import typing as _t
from sys import getrefcount as _getrefcount

from repro.core.kernel.events import (
    PENDING,
    PRIORITY_URGENT,
    Event,
    Timeout,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> _t.Any:
        """The ``cause`` passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _Initialize(Event):
    """Internal immediate event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Effects", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env.schedule(self, priority=PRIORITY_URGENT)


class _Interruption(Event):
    """Internal immediate event that delivers an :class:`Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: _t.Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise RuntimeError(f"{process!r} has terminated; cannot interrupt")
        if process is process.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [self._deliver]
        self.env.schedule(self, priority=PRIORITY_URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # Terminated between scheduling and delivery.
        # Unsubscribe the process from whatever it was waiting on, then
        # resume it with the failure (the Interrupt exception).
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
            if (
                not target.callbacks
                and type(target) is Timeout
                and _getrefcount(target) <= 3
            ):
                # The interrupted sleep's timer is orphaned (no other
                # subscriber, no outside reference): cancel it so a
                # retired daemon's pending wakeup does not linger on the
                # calendar until its deadline.  The refcount bound is
                # ``process._target`` + the local + getrefcount's arg.
                target.cancel()
        process._resume(self)


class Process(Event):
    """A running generator on the timeline.

    Parameters
    ----------
    env:
        Owning effects substrate.
    generator:
        A generator whose yields are events.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Effects",
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: _t.Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently suspended on.
        self._target: _t.Optional[Event] = _Initialize(env, self)

    @property
    def target(self) -> _t.Optional[Event]:
        """The event the process is currently waiting on (or ``None``)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        exc_to_raise: _t.Optional[BaseException] = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed; mark it defused (we are handling it
                    # by throwing into the generator) and deliver.
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                exc_to_raise = RuntimeError(
                    f"process {self.name!r} yielded a non-event: "
                    f"{next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc_to_raise
                continue

            if next_event.callbacks is not None:
                # Pending or triggered-but-unprocessed: subscribe and stop.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break

            # Already processed: loop immediately with its outcome.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"
