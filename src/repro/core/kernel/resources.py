"""Shared-resource primitives built on the kernel events.

These are the coordination structures the file-system protocol is written
against:

- :class:`Resource` -- counted semaphore (MDS daemon threads, disk channel).
- :class:`Store` -- FIFO buffer of items (network queues, request queues).
- :class:`PriorityStore` -- heap-ordered buffer (elevator staging).
- :class:`FilterStore` -- buffer with predicate-matched gets (the commit
  daemon's "check out the local-I/O-completed requests" step).
- :class:`Container` -- continuous quantity (delegated free space).

All follow the SimPy idiom: operations return events that a process
``yield``\\ s; a request event used as a context manager auto-releases.
Like the rest of the kernel they only touch the environment through the
:class:`~repro.core.effects.Effects` contract, so they behave identically
on the virtual clock and on asyncio.
"""

from __future__ import annotations

import heapq
import typing as _t
from collections import deque
from dataclasses import dataclass, field

from repro.core.kernel.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


# ---------------------------------------------------------------------------
# Resource (counted semaphore)
# ---------------------------------------------------------------------------


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: _t.Any) -> None:
        # Release if held; withdraw if still queued (the owning process
        # may be torn down while waiting, e.g. at simulation shutdown).
        if self in self.resource.users:
            self.resource.release(self)
        elif self in self.resource.queue:
            self.resource.queue.remove(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A shared resource with ``capacity`` identical slots.

    Usage::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    def __init__(self, env: "Effects", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: _t.List[Request] = []
        # A deque, not a list: the MDS daemon pool queues thousands of
        # waiters at 10k-client scale and every grant used to pop(0).
        self.queue: _t.Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @capacity.setter
    def capacity(self, value: int) -> None:
        """Grow or shrink capacity; grants queued requests on growth."""
        if value <= 0:
            raise ValueError(f"capacity must be positive, got {value}")
        self._capacity = value
        self._grant()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a slot held by ``request``."""
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError(f"{request!r} does not hold {self!r}") from None
        self._grant()

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        if request.triggered:
            raise RuntimeError("cannot cancel a granted request; release it")
        self.queue.remove(request)

    def _grant(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed()

    def __repr__(self) -> str:
        return (
            f"<Resource capacity={self._capacity} used={len(self.users)} "
            f"queued={len(self.queue)}>"
        )


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


class StorePut(Event):
    """A (possibly waiting) put of ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: _t.Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._puts.append(self)
        store._dispatch()


class StoreGet(Event):
    """A (possibly waiting) get from a store."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._gets.append(self)
        store._dispatch()


class Store:
    """FIFO buffer of Python objects with optional capacity.

    ``put(item)`` and ``get()`` return events.  Gets are granted in FIFO
    order; puts block while the buffer is full.
    """

    def __init__(
        self, env: "Effects", capacity: float = float("inf")
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Buffered items.  A deque for the FIFO stores (popleft is O(1);
        #: under fan-in the old ``list.pop(0)`` made every dispatch pass
        #: O(n)); :class:`PriorityStore` swaps in a list for ``heapq``.
        self.items: _t.MutableSequence[_t.Any] = deque()
        self._puts: _t.Deque[StorePut] = deque()
        self._gets: _t.Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: _t.Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def drain(self) -> _t.List[_t.Any]:
        """Remove and return every buffered item (crash modelling).

        Queued puts are admitted first (their items are "in the buffer"
        from the sender's point of view) so the returned list is the
        complete set of items lost with the store's owner.
        """
        while self._puts:
            put = self._puts.popleft()
            self._store_item(put.item)
            put.succeed()
        items = list(self.items)
        self.items.clear()
        return items

    def cancel_gets(self) -> int:
        """Abandon every waiting get; their events never fire.

        Needed when the consumers of this store are torn down (an MDS
        crash interrupts its daemon processes): an interrupted process
        leaves its ``StoreGet`` behind, and a later ``put`` would succeed
        that orphaned get -- silently black-holing the item.  Returns the
        number of gets cancelled.
        """
        cancelled = len(self._gets)
        self._gets.clear()
        return cancelled

    # -- internals ---------------------------------------------------------

    def _store_item(self, item: _t.Any) -> None:
        self.items.append(item)

    def _take_item(self, get_event: StoreGet) -> _t.Optional[_t.Any]:
        """Return an item for ``get_event`` or None if none available."""
        if self.items:
            return self.items.popleft()
        return None

    def _dispatch(self) -> None:
        """Match queued puts and gets until no more progress is possible.

        Alternates an admit-puts pass with a serve-gets pass, exactly as
        many times as the old rebuild-``remaining`` loop did useful work:
        a further round can only make progress if the gets pass freed
        buffer room *and* a put is still waiting to use it, so the loop
        exits as soon as that cannot hold.  Within a pass, puts are
        admitted and gets served in FIFO order -- the succeed() sequence
        (and therefore the event calendar) is bit-for-bit identical to
        the previous implementation, which the determinism tests gate.
        """
        puts = self._puts
        items = self.items
        capacity = self.capacity
        while True:
            while puts and len(items) < capacity:
                put = puts.popleft()
                self._store_item(put.item)
                put.succeed()
            if not self._serve_gets():
                return
            if not puts or len(items) >= capacity:
                return

    def _serve_gets(self) -> bool:
        """Serve waiting gets in FIFO order; True if any was served.

        For the FIFO stores an unsatisfiable get at the head means every
        get behind it is unsatisfiable too (``_take_item`` ignores the
        get), so the pass stops at the first failure instead of probing
        each of the ``m`` waiters -- the old quadratic fan-in cost.
        """
        gets = self._gets
        served = False
        while gets:
            get = gets[0]
            item = self._take_item(get)
            if item is None and not self._satisfied_with_none(get):
                break
            gets.popleft()
            get.succeed(item)
            served = True
        return served

    @staticmethod
    def _satisfied_with_none(_get: StoreGet) -> bool:
        """Whether a ``None`` return from ``_take_item`` means success.

        Plain stores never buffer ``None`` (reserve it as the no-item
        signal); subclasses keep that contract.
        """
        return False


@dataclass(order=True)
class PriorityItem:
    """Wrapper giving any payload an explicit priority for a store."""

    priority: float
    item: _t.Any = field(compare=False)


class PriorityStore(Store):
    """A store whose gets return the smallest item first (heap order)."""

    def __init__(
        self, env: "Effects", capacity: float = float("inf")
    ) -> None:
        super().__init__(env, capacity)
        # ``heapq`` requires a list, not the FIFO deque of the base class.
        self.items = []

    def _store_item(self, item: _t.Any) -> None:
        heapq.heappush(self.items, item)

    def _take_item(self, get_event: StoreGet) -> _t.Optional[_t.Any]:
        if self.items:
            return heapq.heappop(self.items)
        return None


class FilterStoreGet(StoreGet):
    """A get that only matches items satisfying ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(
        self,
        store: "FilterStore",
        predicate: _t.Callable[[_t.Any], bool],
    ) -> None:
        self.predicate = predicate
        super().__init__(store)


class FilterStore(Store):
    """A store supporting predicate-matched retrieval.

    ``get(predicate)`` completes with the first (FIFO) item for which
    ``predicate(item)`` is true.  This models the commit daemon checking
    out only those commit records whose local data write has completed.
    """

    def get(  # type: ignore[override]
        self, predicate: _t.Callable[[_t.Any], bool] = lambda item: True
    ) -> FilterStoreGet:
        return FilterStoreGet(self, predicate)

    def _take_item(self, get_event: StoreGet) -> _t.Optional[_t.Any]:
        predicate = getattr(get_event, "predicate", None)
        if predicate is None:
            return self.items.popleft() if self.items else None
        for i, item in enumerate(self.items):
            if predicate(item):
                del self.items[i]
                return item
        return None

    def _serve_gets(self) -> bool:
        """One FIFO pass over every waiting get (predicates differ).

        Unlike the FIFO stores, an unsatisfiable get here does not imply
        the ones behind it fail too, so each waiter is probed once per
        pass.  Rotating through the deque keeps the survivors in their
        original order without rebuilding a ``remaining`` list; a get's
        predicate is re-evaluated only when :meth:`Store._dispatch`
        admitted new items or :meth:`notify` signalled an external state
        change -- never spuriously within a pass.
        """
        gets = self._gets
        served = False
        for _ in range(len(gets)):
            get = gets.popleft()
            item = self._take_item(get)
            if item is not None or self._satisfied_with_none(get):
                get.succeed(item)
                served = True
            else:
                gets.append(get)
        return served

    def notify(self) -> None:
        """Re-evaluate waiting gets after external item-state changes.

        FilterStore predicates may depend on mutable item state (e.g. a
        commit record becoming data-stable); call this after mutating.
        """
        self._dispatch()


# ---------------------------------------------------------------------------
# Container (continuous quantity)
# ---------------------------------------------------------------------------


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._puts.append(self)
        container._dispatch()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._gets.append(self)
        container._dispatch()


class Container:
    """A homogeneous continuous quantity (bytes of delegated space, etc.)."""

    def __init__(
        self,
        env: "Effects",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._puts: _t.Deque[ContainerPut] = deque()
        self._gets: _t.Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts:
                put = self._puts[0]
                if self._level + put.amount <= self.capacity:
                    self._puts.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._gets:
                get = self._gets[0]
                if get.amount <= self._level:
                    self._gets.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progressed = True
