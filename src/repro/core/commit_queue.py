"""The commit queue (§III.A).

"Issued commit requests are inserted into the commit queue if no commit
request of this file resides in" -- insertion deduplicates per file by
merging into the resident record.  Background daemons *check out* records
whose local data writes have completed (the ordered-writes gate) and send
their metadata to the MDS.

The queue also provides:

- **backpressure**: a capacity bound models the finite memory available
  for pending commits; applications block on :meth:`wait_for_room` when
  the queue is full (this keeps delayed commit stable under overload);
- **observability**: a length-change listener feeds the adaptive
  thread-pool controller and the Fig. 6 time series.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.core.records import CommitRecord
from repro.mds.extent import Extent
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class CommitQueue:
    """FIFO of per-file commit records with dedup and stable-checkout."""

    def __init__(
        self,
        env: "Environment",
        capacity: int = 4096,
        obs: _t.Optional[_t.Any] = None,
        node: str = "",
        shard_of: _t.Optional[_t.Callable[[int], int]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Maps a file id to its metadata shard.  ``None`` (single MDS)
        #: pins everything to shard 0 -- checkout then behaves exactly
        #: like the unsharded queue.  With a mapper, dedup/merge state is
        #: already partitioned (a record is per file, a file is per
        #: shard) and :meth:`checkout_stable` keeps batches single-shard.
        self._shard_of = shard_of
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        #: Node label for spans ("client-3"); cosmetic.
        self.node = node
        self._records: _t.List[CommitRecord] = []
        self._by_file: _t.Dict[int, CommitRecord] = {}
        self._waiting_gets: _t.List[Event] = []
        self._waiting_room: _t.Deque[Event] = deque()
        #: Data events that already carry this queue's stability
        #: callback.  Dedup merges of long-lived files may present the
        #: same write-completion event many times; registering once per
        #: event keeps callback lists flat and avoids wakeups firing for
        #: records that were already checked out.
        self._stability_watch: _t.Set[Event] = set()
        #: Total :meth:`_wake_getters` invocations (regression gauge for
        #: the one-callback-per-event guarantee).
        self.wakeups = 0
        #: Called with the new length after every insert/checkout.
        self.on_length_change: _t.Optional[_t.Callable[[int], None]] = None
        self.inserts = 0
        self.dedup_hits = 0
        self.checkouts = 0
        self.peak_length = 0

    def __len__(self) -> int:
        return len(self._records)

    # -- insertion (application side) ------------------------------------------

    def insert(
        self,
        file_id: int,
        extents: _t.List[Extent],
        data_events: _t.List[Event],
        require_data_stable: bool = True,
        update_id: _t.Optional[int] = None,
    ) -> CommitRecord:
        """Insert a commit request, deduplicating per file.

        Returns the (new or resident) record for the file.  The caller
        should have checked :meth:`has_room` / yielded
        :meth:`wait_for_room` first; inserting over capacity is allowed
        (a single in-flight op per thread may overshoot slightly).
        ``update_id`` tags the record with the originating logical
        update for causal tracing (None when tracing is off).
        """
        self.inserts += 1
        resident = self._by_file.get(file_id)
        if resident is not None and not resident.checked_out:
            resident.absorb(extents, data_events)
            self.dedup_hits += 1
            if update_id is not None:
                resident.trace_ids += (update_id,)
            if self.obs is not None:
                self.obs.tracer.instant(
                    "commit_merge",
                    "queue",
                    node=self.node,
                    actor="commit-queue",
                    update_ids=resident.trace_ids,
                    file_id=file_id,
                    merged_update=update_id,
                )
                if resident.trace_span is not None:
                    resident.trace_span.update_ids = resident.trace_ids
                self.obs.registry.counter("commit_queue.merges").inc()
            self._notify_stability(resident, data_events)
            return resident

        record = CommitRecord(
            self.env,
            file_id,
            extents,
            data_events,
            require_data_stable=require_data_stable,
            shard=(
                self._shard_of(file_id) if self._shard_of is not None else 0
            ),
        )
        if update_id is not None:
            record.trace_ids = (update_id,)
        if self.obs is not None:
            record.trace_span = self.obs.tracer.begin(
                "commit_queued",
                "queue",
                node=self.node,
                actor="commit-queue",
                update_ids=record.trace_ids,
                file_id=file_id,
            )
        self._records.append(record)
        self._by_file[file_id] = record
        self.peak_length = max(self.peak_length, len(self._records))
        self._notify_stability(record, data_events)
        self._changed()
        return record

    def _notify_stability(
        self, record: CommitRecord, data_events: _t.List[Event]
    ) -> None:
        """Wake sleeping daemons once a record's data becomes stable.

        Each pending data event gets the queue's wake callback exactly
        once, however many dedup merges present it again: repeat
        registrations used to accumulate duplicate callbacks on
        long-lived events, each firing a (wasted) wakeup pass after the
        record they were registered for had already been checked out.
        """
        watch = self._stability_watch
        for ev in data_events:
            if ev.callbacks is not None and ev not in watch:
                watch.add(ev)
                ev.callbacks.append(self._on_data_stable)
        if record.data_stable:
            self._wake_getters()

    def _on_data_stable(self, ev: Event) -> None:
        self._stability_watch.discard(ev)
        self._wake_getters()

    # -- checkout (daemon side) -----------------------------------------------

    def checkout_stable(self, limit: int = 1) -> _t.List[CommitRecord]:
        """Remove and return up to ``limit`` data-stable records (FIFO).

        The scan stops as soon as the batch is full: stable records
        cluster at the head (oldest writes complete first), so a full
        queue no longer pays an O(n) rebuild per checkout -- only the
        scanned prefix is spliced and the unscanned tail is reused.

        The batch is single-shard: the first stable record fixes the
        destination, and stable records of other shards stay queued for
        the next checkout (a compound commit RPC targets one server).
        With one shard every record matches, so the scan is unchanged.
        """
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        records = self._records
        batch: _t.List[CommitRecord] = []
        keep: _t.List[CommitRecord] = []
        batch_shard: _t.Optional[int] = None
        scanned = 0
        for record in records:
            scanned += 1
            if record.data_stable and (
                batch_shard is None or record.shard == batch_shard
            ):
                batch_shard = record.shard
                record.checked_out = True
                del self._by_file[record.file_id]
                batch.append(record)
                if self.obs is not None and record.trace_span is not None:
                    self.obs.tracer.end(
                        record.trace_span,
                        extents=len(record.extents),
                        merged_updates=len(record.trace_ids),
                    )
                if len(batch) == limit:
                    break
            else:
                keep.append(record)
        if batch:
            keep.extend(records[scanned:])
            self._records = keep
            self.checkouts += len(batch)
            if self.obs is not None:
                self.obs.tracer.instant(
                    "commit_checkout",
                    "queue",
                    node=self.node,
                    actor="commit-queue",
                    update_ids=tuple(
                        uid for r in batch for uid in r.trace_ids
                    ),
                    files=tuple(r.file_id for r in batch),
                )
                self.obs.registry.counter("commit_queue.checkouts").inc(
                    len(batch)
                )
            self._changed()
            self._wake_room_waiters()
        return batch

    def wait_for_stable(self) -> Event:
        """Event firing when at least one data-stable record is present."""
        ev = Event(self.env)
        if any(r.data_stable for r in self._records):
            ev.succeed()
        else:
            self._waiting_gets.append(ev)
        return ev

    def _wake_getters(self) -> None:
        self.wakeups += 1
        if not self._waiting_gets:
            return
        if any(r.data_stable for r in self._records):
            waiters, self._waiting_gets = self._waiting_gets, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    # -- backpressure ----------------------------------------------------------

    def has_room(self) -> bool:
        return len(self._records) < self.capacity

    def wait_for_room(self) -> Event:
        """Event firing when the queue is below capacity."""
        ev = Event(self.env)
        if self.has_room():
            ev.succeed()
        else:
            self._waiting_room.append(ev)
        return ev

    def _wake_room_waiters(self) -> None:
        while self._waiting_room and self.has_room():
            ev = self._waiting_room.popleft()
            if not ev.triggered:
                ev.succeed()

    # -- introspection -----------------------------------------------------------

    def record_for(self, file_id: int) -> _t.Optional[CommitRecord]:
        return self._by_file.get(file_id)

    def pending_records(self) -> _t.Sequence[CommitRecord]:
        return tuple(self._records)

    def drop_all(self) -> _t.List[CommitRecord]:
        """Crash: volatile queue contents are lost; returns what was lost.

        Dropping the records opens room, so writers parked in
        :meth:`wait_for_room` must be released here -- without the wake
        they would stall forever (nothing else re-checks room until the
        next checkout, which can never happen on an empty queue).
        """
        lost, self._records = self._records, []
        self._by_file.clear()
        self._changed()
        self._wake_room_waiters()
        return lost

    def _changed(self) -> None:
        if self.on_length_change is not None:
            self.on_length_change(len(self._records))
