"""The commit queue (§III.A).

"Issued commit requests are inserted into the commit queue if no commit
request of this file resides in" -- insertion deduplicates per file by
merging into the resident record.  Background daemons *check out* records
whose local data writes have completed (the ordered-writes gate) and send
their metadata to the MDS.

The queue also provides:

- **backpressure**: a capacity bound models the finite memory available
  for pending commits; applications block on :meth:`wait_for_room` when
  the queue is full (this keeps delayed commit stable under overload);
- **observability**: a length-change listener feeds the adaptive
  thread-pool controller and the Fig. 6 time series.
"""

from __future__ import annotations

import typing as _t
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush

from repro.core.records import CommitRecord
from repro.mds.extent import Extent
from repro.core.kernel.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


class CommitQueue:
    """FIFO of per-file commit records with dedup and stable-checkout."""

    def __init__(
        self,
        env: "Effects",
        capacity: int = 4096,
        obs: _t.Optional[_t.Any] = None,
        node: str = "",
        shard_of: _t.Optional[_t.Callable[[int], int]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Maps a file id to its metadata shard.  ``None`` (single MDS)
        #: pins everything to shard 0 -- checkout then behaves exactly
        #: like the unsharded queue.  With a mapper, dedup/merge state is
        #: already partitioned (a record is per file, a file is per
        #: shard) and :meth:`checkout_stable` keeps batches single-shard.
        self._shard_of = shard_of
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        #: Node label for spans ("client-3"); cosmetic.
        self.node = node
        #: Resident records keyed by arrival sequence.  Dict insertion
        #: order doubles as the FIFO (deletions preserve it), which
        #: makes checkout's removals O(1) instead of the old list
        #: rebuild -- the rebuild was O(depth) per checkout and
        #: dominated deep-queue runs.
        self._records: _t.Dict[int, CommitRecord] = {}
        self._next_seq = 0
        #: Min-heap of arrival seqs whose records *became* data-stable.
        #: Lazily invalidated: a merge can unstabilise a record again,
        #: and re-stabilising pushes a duplicate seq, so each pop
        #: re-checks the record before trusting the entry.  Popping in
        #: seq order reproduces the old FIFO prefix scan exactly.
        self._stable_seqs: _t.List[int] = []
        self._by_file: _t.Dict[int, CommitRecord] = {}
        self._waiting_gets: _t.List[Event] = []
        self._waiting_room: _t.Deque[Event] = deque()
        #: Data events that already carry this queue's stability
        #: callback, mapped to the resident record awaiting them.  Dedup
        #: merges of long-lived files may present the same
        #: write-completion event many times; registering once per event
        #: keeps callback lists flat and avoids wakeups firing for
        #: records that were already checked out.  The record lists fund
        #: ``CommitRecord.pending_data``: every completion decrements
        #: the in-flight count of each record awaiting that event, so
        #: stability checks never rescan event lists.  (A list, not a
        #: single record: one data event may back records of several
        #: files.)
        self._stability_watch: _t.Dict[Event, _t.List[CommitRecord]] = {}
        #: Resident records that are currently data-stable.  Maintained
        #: at the transition points (insert, merge, event completion,
        #: checkout) so :meth:`wait_for_stable` and the daemon wakeups
        #: are O(1) instead of scanning the queue -- at 10k-client
        #: depths those scans dominated the whole run.
        self._stable_count = 0
        #: Total :meth:`_wake_getters` invocations (regression gauge for
        #: the one-callback-per-event guarantee).
        self.wakeups = 0
        #: Called with the new length after every insert/checkout.
        self.on_length_change: _t.Optional[_t.Callable[[int], None]] = None
        self.inserts = 0
        self.dedup_hits = 0
        self.checkouts = 0
        self.peak_length = 0

    def __len__(self) -> int:
        return len(self._records)

    # -- insertion (application side) ------------------------------------------

    def insert(
        self,
        file_id: int,
        extents: _t.List[Extent],
        data_events: _t.List[Event],
        require_data_stable: bool = True,
        update_id: _t.Optional[int] = None,
    ) -> CommitRecord:
        """Insert a commit request, deduplicating per file.

        Returns the (new or resident) record for the file.  The caller
        should have checked :meth:`has_room` / yielded
        :meth:`wait_for_room` first; inserting over capacity is allowed
        (a single in-flight op per thread may overshoot slightly).
        ``update_id`` tags the record with the originating logical
        update for causal tracing (None when tracing is off).
        """
        self.inserts += 1
        resident = self._by_file.get(file_id)
        if resident is not None and not resident.checked_out:
            was_stable = resident.data_stable
            resident.absorb(extents, data_events)
            self.dedup_hits += 1
            if update_id is not None:
                resident.trace_ids += (update_id,)
            if self.obs is not None:
                self.obs.tracer.instant(
                    "commit_merge",
                    "queue",
                    node=self.node,
                    actor="commit-queue",
                    update_ids=resident.trace_ids,
                    file_id=file_id,
                    merged_update=update_id,
                )
                if resident.trace_span is not None:
                    resident.trace_span.update_ids = resident.trace_ids
                self.obs.registry.counter("commit_queue.merges").inc()
            self._notify_stability(resident, data_events, was_stable)
            return resident

        record = CommitRecord(
            self.env,
            file_id,
            extents,
            data_events,
            require_data_stable=require_data_stable,
            shard=(
                self._shard_of(file_id) if self._shard_of is not None else 0
            ),
        )
        if update_id is not None:
            record.trace_ids = (update_id,)
        if self.obs is not None:
            record.trace_span = self.obs.tracer.begin(
                "commit_queued",
                "queue",
                node=self.node,
                actor="commit-queue",
                update_ids=record.trace_ids,
                file_id=file_id,
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        record.queue_seq = seq
        self._records[seq] = record
        self._by_file[file_id] = record
        self.peak_length = max(self.peak_length, len(self._records))
        self._notify_stability(record, data_events)
        self._changed()
        return record

    def _notify_stability(
        self,
        record: CommitRecord,
        data_events: _t.List[Event],
        was_stable: bool = False,
    ) -> None:
        """Wake sleeping daemons once a record's data becomes stable.

        Each pending data event gets the queue's wake callback exactly
        once, however many dedup merges present it again: repeat
        registrations used to accumulate duplicate callbacks on
        long-lived events, each firing a (wasted) wakeup pass after the
        record they were registered for had already been checked out.

        ``was_stable`` is the record's stability before this insert/merge
        (False for a brand-new record, which is not yet counted); the
        stable-resident counter moves by the transition.
        """
        watch = self._stability_watch
        for ev in data_events:
            if ev.callbacks is None:
                continue
            waiting = watch.get(ev)
            if waiting is None:
                watch[ev] = [record]
                record.pending_data += 1
                ev.callbacks.append(self._on_data_stable)
            elif record not in waiting:
                waiting.append(record)
                record.pending_data += 1
        now_stable = record.data_stable
        if now_stable != was_stable:
            if now_stable:
                self._stable_count += 1
                _heappush(self._stable_seqs, record.queue_seq)
            else:
                self._stable_count -= 1
        if now_stable:
            self._wake_getters()

    def _on_data_stable(self, ev: Event) -> None:
        waiting = self._stability_watch.pop(ev, None)
        if waiting is not None:
            for record in waiting:
                record.pending_data -= 1
                if (
                    record.pending_data == 0
                    and record.require_data_stable
                    and not record.checked_out
                ):
                    # The last in-flight write of a resident ordered
                    # record just hit the disk: the record became
                    # checkout-eligible.  (Unordered records were
                    # counted stable at insert, and checked-out records
                    # are no longer resident.)
                    self._stable_count += 1
                    _heappush(self._stable_seqs, record.queue_seq)
        self._wake_getters()

    # -- checkout (daemon side) -----------------------------------------------

    def checkout_stable(self, limit: int = 1) -> _t.List[CommitRecord]:
        """Remove and return up to ``limit`` data-stable records (FIFO).

        Candidates come straight off the stable-seq heap, so a checkout
        costs O(batch log stable) however deep the queue is -- the old
        full-queue prefix scan was O(depth) per checkout and dominated
        10k-client runs.  Popping seqs in heap order visits stable
        records oldest-first, which is exactly the order the scan
        produced.  Stale heap entries (records merged back to unstable,
        or already checked out through a duplicate entry) are dropped on
        the floor; re-stabilising always pushes a fresh seq.

        The batch is single-shard: the first stable record fixes the
        destination, and stable records of other shards stay queued for
        the next checkout (a compound commit RPC targets one server).
        """
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        records = self._records
        seqs = self._stable_seqs
        batch: _t.List[CommitRecord] = []
        deferred: _t.List[int] = []
        batch_shard: _t.Optional[int] = None
        while seqs and len(batch) < limit:
            seq = _heappop(seqs)
            record = records.get(seq)
            if record is None or not record.data_stable:
                continue  # stale entry
            if batch_shard is not None and record.shard != batch_shard:
                deferred.append(seq)  # stable, but wrong shard: stays
                continue
            batch_shard = record.shard
            record.checked_out = True
            del records[seq]
            del self._by_file[record.file_id]
            batch.append(record)
            if self.obs is not None and record.trace_span is not None:
                self.obs.tracer.end(
                    record.trace_span,
                    extents=len(record.extents),
                    merged_updates=len(record.trace_ids),
                )
        for seq in deferred:
            _heappush(seqs, seq)
        if batch:
            self._stable_count -= len(batch)
            self.checkouts += len(batch)
            if self.obs is not None:
                self.obs.tracer.instant(
                    "commit_checkout",
                    "queue",
                    node=self.node,
                    actor="commit-queue",
                    update_ids=tuple(
                        uid for r in batch for uid in r.trace_ids
                    ),
                    files=tuple(r.file_id for r in batch),
                )
                self.obs.registry.counter("commit_queue.checkouts").inc(
                    len(batch)
                )
            self._changed()
            self._wake_room_waiters()
        return batch

    def wait_for_stable(self) -> Event:
        """Event firing when at least one data-stable record is present."""
        ev = Event(self.env)
        if self._stable_count:
            ev.succeed()
        else:
            self._waiting_gets.append(ev)
        return ev

    def _wake_getters(self) -> None:
        self.wakeups += 1
        if not self._waiting_gets:
            return
        if self._stable_count:
            waiters, self._waiting_gets = self._waiting_gets, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    # -- backpressure ----------------------------------------------------------

    def has_room(self) -> bool:
        return len(self._records) < self.capacity

    def wait_for_room(self) -> Event:
        """Event firing when the queue is below capacity."""
        ev = Event(self.env)
        if self.has_room():
            ev.succeed()
        else:
            self._waiting_room.append(ev)
        return ev

    def _wake_room_waiters(self) -> None:
        while self._waiting_room and self.has_room():
            ev = self._waiting_room.popleft()
            if not ev.triggered:
                ev.succeed()

    # -- introspection -----------------------------------------------------------

    def record_for(self, file_id: int) -> _t.Optional[CommitRecord]:
        return self._by_file.get(file_id)

    def pending_records(self) -> _t.Sequence[CommitRecord]:
        return tuple(self._records.values())

    def drop_all(self) -> _t.List[CommitRecord]:
        """Crash: volatile queue contents are lost; returns what was lost.

        Dropping the records opens room, so writers parked in
        :meth:`wait_for_room` must be released here -- without the wake
        they would stall forever (nothing else re-checks room until the
        next checkout, which can never happen on an empty queue).
        """
        lost = list(self._records.values())
        self._records.clear()
        self._by_file.clear()
        # Stale watch entries must not resurrect counts for lost
        # records when their (still in-flight) writes complete.
        self._stability_watch.clear()
        self._stable_seqs.clear()
        self._stable_count = 0
        self._changed()
        self._wake_room_waiters()
        return lost

    def _changed(self) -> None:
        if self.on_length_change is not None:
            self.on_length_change(len(self._records))
