"""The commit queue (§III.A).

"Issued commit requests are inserted into the commit queue if no commit
request of this file resides in" -- insertion deduplicates per file by
merging into the resident record.  Background daemons *check out* records
whose local data writes have completed (the ordered-writes gate) and send
their metadata to the MDS.

The queue also provides:

- **backpressure**: a capacity bound models the finite memory available
  for pending commits; applications block on :meth:`wait_for_room` when
  the queue is full (this keeps delayed commit stable under overload);
- **observability**: a length-change listener feeds the adaptive
  thread-pool controller and the Fig. 6 time series.
"""

from __future__ import annotations

import typing as _t

from repro.core.records import CommitRecord
from repro.mds.extent import Extent
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class CommitQueue:
    """FIFO of per-file commit records with dedup and stable-checkout."""

    def __init__(
        self,
        env: "Environment",
        capacity: int = 4096,
        obs: _t.Optional[_t.Any] = None,
        node: str = "",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        #: Node label for spans ("client-3"); cosmetic.
        self.node = node
        self._records: _t.List[CommitRecord] = []
        self._by_file: _t.Dict[int, CommitRecord] = {}
        self._waiting_gets: _t.List[Event] = []
        self._waiting_room: _t.List[Event] = []
        #: Called with the new length after every insert/checkout.
        self.on_length_change: _t.Optional[_t.Callable[[int], None]] = None
        self.inserts = 0
        self.dedup_hits = 0
        self.checkouts = 0
        self.peak_length = 0

    def __len__(self) -> int:
        return len(self._records)

    # -- insertion (application side) ------------------------------------------

    def insert(
        self,
        file_id: int,
        extents: _t.List[Extent],
        data_events: _t.List[Event],
        require_data_stable: bool = True,
        update_id: _t.Optional[int] = None,
    ) -> CommitRecord:
        """Insert a commit request, deduplicating per file.

        Returns the (new or resident) record for the file.  The caller
        should have checked :meth:`has_room` / yielded
        :meth:`wait_for_room` first; inserting over capacity is allowed
        (a single in-flight op per thread may overshoot slightly).
        ``update_id`` tags the record with the originating logical
        update for causal tracing (None when tracing is off).
        """
        self.inserts += 1
        resident = self._by_file.get(file_id)
        if resident is not None and not resident.checked_out:
            resident.absorb(extents, data_events)
            self.dedup_hits += 1
            if update_id is not None:
                resident.trace_ids += (update_id,)
            if self.obs is not None:
                self.obs.tracer.instant(
                    "commit_merge",
                    "queue",
                    node=self.node,
                    actor="commit-queue",
                    update_ids=resident.trace_ids,
                    file_id=file_id,
                    merged_update=update_id,
                )
                if resident.trace_span is not None:
                    resident.trace_span.update_ids = resident.trace_ids
                self.obs.registry.counter("commit_queue.merges").inc()
            self._notify_stability(resident, data_events)
            return resident

        record = CommitRecord(
            self.env,
            file_id,
            extents,
            data_events,
            require_data_stable=require_data_stable,
        )
        if update_id is not None:
            record.trace_ids = (update_id,)
        if self.obs is not None:
            record.trace_span = self.obs.tracer.begin(
                "commit_queued",
                "queue",
                node=self.node,
                actor="commit-queue",
                update_ids=record.trace_ids,
                file_id=file_id,
            )
        self._records.append(record)
        self._by_file[file_id] = record
        self.peak_length = max(self.peak_length, len(self._records))
        self._notify_stability(record, data_events)
        self._changed()
        return record

    def _notify_stability(
        self, record: CommitRecord, data_events: _t.List[Event]
    ) -> None:
        """Wake sleeping daemons once a record's data becomes stable."""
        for ev in data_events:
            if ev.callbacks is not None:
                ev.callbacks.append(lambda _ev: self._wake_getters())
        if record.data_stable:
            self._wake_getters()

    # -- checkout (daemon side) -----------------------------------------------

    def checkout_stable(self, limit: int = 1) -> _t.List[CommitRecord]:
        """Remove and return up to ``limit`` data-stable records (FIFO)."""
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        batch: _t.List[CommitRecord] = []
        remaining: _t.List[CommitRecord] = []
        for record in self._records:
            if len(batch) < limit and record.data_stable:
                record.checked_out = True
                del self._by_file[record.file_id]
                batch.append(record)
                if self.obs is not None and record.trace_span is not None:
                    self.obs.tracer.end(
                        record.trace_span,
                        extents=len(record.extents),
                        merged_updates=len(record.trace_ids),
                    )
            else:
                remaining.append(record)
        if batch:
            self._records = remaining
            self.checkouts += len(batch)
            self._changed()
            self._wake_room_waiters()
        return batch

    def wait_for_stable(self) -> Event:
        """Event firing when at least one data-stable record is present."""
        ev = Event(self.env)
        if any(r.data_stable for r in self._records):
            ev.succeed()
        else:
            self._waiting_gets.append(ev)
        return ev

    def _wake_getters(self) -> None:
        if not self._waiting_gets:
            return
        if any(r.data_stable for r in self._records):
            waiters, self._waiting_gets = self._waiting_gets, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    # -- backpressure ----------------------------------------------------------

    def has_room(self) -> bool:
        return len(self._records) < self.capacity

    def wait_for_room(self) -> Event:
        """Event firing when the queue is below capacity."""
        ev = Event(self.env)
        if self.has_room():
            ev.succeed()
        else:
            self._waiting_room.append(ev)
        return ev

    def _wake_room_waiters(self) -> None:
        while self._waiting_room and self.has_room():
            ev = self._waiting_room.pop(0)
            if not ev.triggered:
                ev.succeed()

    # -- introspection -----------------------------------------------------------

    def record_for(self, file_id: int) -> _t.Optional[CommitRecord]:
        return self._by_file.get(file_id)

    def pending_records(self) -> _t.Sequence[CommitRecord]:
        return tuple(self._records)

    def drop_all(self) -> _t.List[CommitRecord]:
        """Crash: volatile queue contents are lost; returns what was lost."""
        lost, self._records = self._records, []
        self._by_file.clear()
        self._changed()
        return lost

    def _changed(self) -> None:
        if self.on_length_change is not None:
            self.on_length_change(len(self._records))
