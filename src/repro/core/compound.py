"""Adaptive RPC compound-degree control (§IV.B).

"The compound degree changes periodically with the knowledge of the
network traffic in the cluster and the workload on the MDS.  The compound
degree increases as the network is congested or the MDS is busy enough,
so as to reduce the RPC requests."

A client cannot read the MDS's queue directly; like real systems it infers
load from what it can observe: its own uplink backlog (local NIC queue)
and the round-trip latency of recent commit RPCs (an EWMA compared
against the uncongested baseline).  The controller re-evaluates every
``period`` seconds and moves the degree one step at a time within
``[1, max_degree]``.

A ``fixed_degree`` short-circuits adaptation -- used by the Fig. 7 sweep,
which compares fixed degrees 1 / 3 / 6.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.net.link import Link

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


@dataclass(frozen=True)
class CompoundPolicy:
    """Tunables for the adaptive compound controller."""

    max_degree: int = 8
    period: float = 0.25
    #: Uplink backlog (seconds of queued serialisation) deemed congested.
    backlog_high: float = 0.0005
    #: RPC latency ratio over baseline deemed "MDS busy".
    latency_ratio_high: float = 2.0
    #: Ratio below which the controller relaxes the degree.
    latency_ratio_low: float = 1.3
    #: EWMA smoothing for observed RPC latency.
    ewma_alpha: float = 0.2


class CompoundController:
    """Chooses how many commit ops ride in one RPC."""

    def __init__(
        self,
        env: "Environment",
        uplink: Link,
        policy: CompoundPolicy = CompoundPolicy(),
        fixed_degree: _t.Optional[int] = None,
        obs: _t.Optional[_t.Any] = None,
        node: str = "",
    ) -> None:
        if fixed_degree is not None and fixed_degree <= 0:
            raise ValueError(f"fixed_degree must be positive: {fixed_degree}")
        self.env = env
        self.uplink = uplink
        self.policy = policy
        self.fixed_degree = fixed_degree
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self.node = node
        self._degree = fixed_degree if fixed_degree is not None else 1
        self._latency_ewma: _t.Optional[float] = None
        self._latency_baseline: _t.Optional[float] = None
        self.adjustments = 0
        #: (time, degree) history for diagnostics.
        self.history: _t.List[_t.Tuple[float, int]] = []
        if fixed_degree is None:
            env.process(self._control_loop(), name="compound-controller")

    @property
    def degree(self) -> int:
        """Current compound degree (ops per commit RPC)."""
        return self._degree

    def observe_rpc_latency(self, latency: float) -> None:
        """Feed one commit RPC round-trip time into the load estimate."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        if self._latency_ewma is None:
            self._latency_ewma = latency
            self._latency_baseline = latency
        else:
            a = self.policy.ewma_alpha
            self._latency_ewma = (1 - a) * self._latency_ewma + a * latency
            # The baseline tracks the smallest smoothed latency seen.
            self._latency_baseline = min(
                self._latency_baseline, self._latency_ewma
            )

    def _latency_ratio(self) -> float:
        if not self._latency_ewma or not self._latency_baseline:
            return 1.0
        return self._latency_ewma / self._latency_baseline

    def _control_loop(self) -> _t.Generator:
        while True:
            yield self.env.timeout(self.policy.period)
            old = self._degree
            congested = (
                self.uplink.backlog > self.policy.backlog_high
                or self._latency_ratio() > self.policy.latency_ratio_high
            )
            relaxed = (
                self.uplink.backlog == 0.0
                and self._latency_ratio() < self.policy.latency_ratio_low
            )
            if congested and self._degree < self.policy.max_degree:
                self._degree += 1
            elif relaxed and self._degree > 1:
                self._degree -= 1
            if self._degree != old:
                self.adjustments += 1
                self.history.append((self.env.now, self._degree))
                if self.obs is not None:
                    self.obs.tracer.instant(
                        "compound_degree",
                        "daemon",
                        node=self.node,
                        actor="compound-controller",
                        degree=self._degree,
                        old=old,
                    )
                    self.obs.registry.counter("compound.adjustments").inc()
