"""Adaptive RPC compound-degree control (§IV.B).

"The compound degree changes periodically with the knowledge of the
network traffic in the cluster and the workload on the MDS.  The compound
degree increases as the network is congested or the MDS is busy enough,
so as to reduce the RPC requests."

A client cannot read the MDS's queue directly; like real systems it infers
load from what it can observe: its own uplink backlog (local NIC queue)
and the round-trip latency of recent commit RPCs (an EWMA compared
against the uncongested baseline).  The controller re-evaluates every
``period`` seconds and moves the degree one step at a time within
``[1, max_degree]``.

A ``fixed_degree`` short-circuits adaptation -- used by the Fig. 7 sweep,
which compares fixed degrees 1 / 3 / 6.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.net.link import Link

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


@dataclass(frozen=True)
class CompoundPolicy:
    """Tunables for the adaptive compound controller."""

    max_degree: int = 8
    period: float = 0.25
    #: Uplink backlog (seconds of queued serialisation) deemed congested.
    backlog_high: float = 0.0005
    #: RPC latency ratio over baseline deemed "MDS busy".
    latency_ratio_high: float = 2.0
    #: Ratio below which the controller relaxes the degree.
    latency_ratio_low: float = 1.3
    #: EWMA smoothing for observed RPC latency.
    ewma_alpha: float = 0.2


class CompoundController:
    """Chooses how many commit ops ride in one RPC."""

    def __init__(
        self,
        env: "Effects",
        uplink: Link,
        policy: CompoundPolicy = CompoundPolicy(),
        fixed_degree: _t.Optional[int] = None,
        obs: _t.Optional[_t.Any] = None,
        node: str = "",
    ) -> None:
        if fixed_degree is not None and fixed_degree <= 0:
            raise ValueError(f"fixed_degree must be positive: {fixed_degree}")
        self.env = env
        self.uplink = uplink
        self.policy = policy
        self.fixed_degree = fixed_degree
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self.node = node
        self._degree = fixed_degree if fixed_degree is not None else 1
        #: Per-destination-shard latency estimates: each metadata shard
        #: is an independent server, so its round-trip EWMA and
        #: uncongested baseline are tracked separately.  A single-MDS
        #: deployment only ever populates shard 0, making the math
        #: identical to the scalar version.
        self._latency_ewma: _t.Dict[int, float] = {}
        self._latency_baseline: _t.Dict[int, float] = {}
        self.adjustments = 0
        #: (time, degree) history for diagnostics.
        self.history: _t.List[_t.Tuple[float, int]] = []
        if fixed_degree is None:
            env.process(self._control_loop(), name="compound-controller")

    @property
    def degree(self) -> int:
        """Current compound degree (ops per commit RPC)."""
        return self._degree

    def observe_rpc_latency(self, latency: float, shard: int = 0) -> None:
        """Feed one commit round-trip into ``shard``'s load estimate."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        ewma = self._latency_ewma.get(shard)
        if ewma is None:
            self._latency_ewma[shard] = latency
            self._latency_baseline[shard] = latency
        else:
            a = self.policy.ewma_alpha
            ewma = (1 - a) * ewma + a * latency
            self._latency_ewma[shard] = ewma
            # The baseline tracks the smallest smoothed latency seen.
            self._latency_baseline[shard] = min(
                self._latency_baseline[shard], ewma
            )

    def _latency_ratio(self) -> float:
        """Worst latency inflation across shards (the busiest server)."""
        worst = 1.0
        for shard, ewma in self._latency_ewma.items():
            baseline = self._latency_baseline.get(shard)
            if not ewma or not baseline:
                continue
            worst = max(worst, ewma / baseline)
        return worst

    def _control_loop(self) -> _t.Generator:
        while True:
            yield self.env.timeout(self.policy.period)
            old = self._degree
            congested = (
                self.uplink.backlog > self.policy.backlog_high
                or self._latency_ratio() > self.policy.latency_ratio_high
            )
            relaxed = (
                self.uplink.backlog == 0.0
                and self._latency_ratio() < self.policy.latency_ratio_low
            )
            if congested and self._degree < self.policy.max_degree:
                self._degree += 1
            elif relaxed and self._degree > 1:
                self._degree -= 1
            if self._degree != old:
                self.adjustments += 1
                self.history.append((self.env.now, self._degree))
                if self.obs is not None:
                    self.obs.tracer.instant(
                        "compound_degree",
                        "daemon",
                        node=self.node,
                        actor="compound-controller",
                        degree=self._degree,
                        old=old,
                    )
                    self.obs.registry.counter("compound.adjustments").inc()
