"""Space delegation: the client-side double-space-pool (§IV.A).

"We maintain a double-space-pool in each client to manage the delegated
space.  The two pools are used exchangeably, one active, and the other
standby.  The active pool serves the current space allocation requests
until the free space is not large enough for the running request.  Then,
the standby pool turns to be the active one, and the former active pool
changes to the standby with the space-need flag set.  The next layout-get
operation will get the new delegated space for the client."

Small-file allocations are served locally from the active chunk --
consecutive writes therefore receive *adjacent* volume addresses, which
is what drives the Fig. 4 merge-ratio gain and the Fig. 5c/5f sequential
traces.  Requests larger than the chunk size bypass the pool and go to
the MDS directly.
"""

from __future__ import annotations

import typing as _t

from repro.mds.extent import Chunk


class _PoolSlot:
    """One half of the double pool: a chunk and a bump cursor."""

    __slots__ = ("chunk", "cursor")

    def __init__(self) -> None:
        self.chunk: _t.Optional[Chunk] = None
        self.cursor = 0

    @property
    def remaining(self) -> int:
        if self.chunk is None:
            return 0
        return self.chunk.volume_end - self.cursor

    def install(self, chunk: Chunk) -> None:
        self.chunk = chunk
        self.cursor = chunk.volume_offset

    def take(self, length: int) -> int:
        if length > self.remaining:
            raise RuntimeError(f"slot cannot serve {length} bytes")
        offset = self.cursor
        self.cursor += length
        return offset

    def abandon(self) -> _t.Optional[_t.Tuple[int, int]]:
        """Give up the slot's leftover space; returns (offset, length)."""
        leftover = None
        if self.chunk is not None and self.remaining > 0:
            leftover = (self.cursor, self.remaining)
        self.chunk = None
        self.cursor = 0
        return leftover


class DoubleSpacePool:
    """Active/standby delegated chunks with local bump allocation."""

    def __init__(self, chunk_size: int = 16 * 1024 * 1024) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self._active = _PoolSlot()
        self._standby = _PoolSlot()
        #: Set when the standby slot needs a fresh delegated chunk.
        self.space_need_flag = True  # Both slots start empty.
        #: Leftover scraps abandoned at swaps, released to the MDS later.
        self.abandoned: _t.List[_t.Tuple[int, int]] = []
        #: Chunks that arrived while both slots were charged (rare race
        #: between a piggybacked and an explicit delegation); consumed at
        #: the next swap before raising the space-need flag.
        self._spares: _t.List[Chunk] = []
        self.local_allocs = 0
        self.swaps = 0
        self.bytes_allocated = 0

    # -- queries -----------------------------------------------------------

    def can_serve(self, length: int) -> bool:
        """Whether a request of this size is eligible for local allocation.

        "Large file requests, whose request size is larger than the chunk
        size, apply for the physical space directly from the MDS."
        """
        return 0 < length <= self.chunk_size

    @property
    def needs_refill(self) -> bool:
        return self.space_need_flag

    @property
    def free_bytes(self) -> int:
        return self._active.remaining + self._standby.remaining

    # -- allocation -----------------------------------------------------------

    def alloc(self, length: int) -> _t.Optional[int]:
        """Locally allocate ``length`` bytes; ``None`` if a refill is due.

        Sets the space-need flag whenever a swap leaves the standby slot
        empty, so the caller can piggyback a delegation request on its
        next RPC.
        """
        if not self.can_serve(length):
            raise ValueError(
                f"request of {length} bytes is not a small-file allocation"
            )
        if self._active.remaining < length:
            self._swap()
        if self._active.remaining < length:
            self.space_need_flag = True
            return None
        offset = self._active.take(length)
        self.local_allocs += 1
        self.bytes_allocated += length
        if self._active.remaining < length and self._standby.remaining == 0:
            # Running low: raise the flag proactively so the refill rides
            # on the next layout-get instead of stalling a future write.
            self.space_need_flag = True
        return offset

    def _swap(self) -> None:
        leftover = self._active.abandon()
        if leftover is not None:
            self.abandoned.append(leftover)
        self._active, self._standby = self._standby, self._active
        if self._spares:
            self._standby.install(self._spares.pop())
            self.space_need_flag = False
        else:
            self.space_need_flag = True
        self.swaps += 1

    def refill(self, chunk: Chunk) -> None:
        """Install a freshly delegated chunk into an empty slot.

        If both slots are still charged (a piggybacked chunk raced an
        explicit one), the chunk is kept as a spare for the next swap.
        """
        if self._active.chunk is None or self._active.remaining == 0:
            self._active.install(chunk)
        elif self._standby.chunk is None or self._standby.remaining == 0:
            self._standby.install(chunk)
        else:
            self._spares.append(chunk)
            return
        self.space_need_flag = (
            self._active.remaining == 0 or self._standby.remaining == 0
        ) and not self._spares

    # -- shutdown / recovery ----------------------------------------------------

    def drain(self) -> _t.List[_t.Tuple[int, int]]:
        """Give back all unused space (client shutdown): (offset, length)."""
        out = list(self.abandoned)
        self.abandoned.clear()
        for slot in (self._active, self._standby):
            leftover = slot.abandon()
            if leftover is not None:
                out.append(leftover)
        for chunk in self._spares:
            out.append((chunk.volume_offset, chunk.length))
        self._spares.clear()
        self.space_need_flag = True
        return out
