"""Filebench personalities (§V.B): fileserver, varmail, webproxy.

"Fileserver, varmail, webproxy are three typical workloads emulating file
servers hosting files, the mail server, and the web proxy server."

Each class follows the published Filebench flowlet structure, scaled down
(fewer seed files, shorter runs) so a simulation finishes in seconds; the
*ratios* between operations match the personality definitions.
"""

from __future__ import annotations

import typing as _t

from repro.workloads.spec import Workload, WorkloadContext, timed


class FileserverWorkload(Workload):
    """Filebench *fileserver*: whole-file writes/reads, appends, deletes.

    Flowlet: create+write a whole file, open+append, open+read a whole
    file, delete a file, stat -- weighted toward data operations.
    """

    name = "fileserver"
    threads_per_client = 4
    think_time = 0.0003

    def __init__(
        self,
        mean_file_size: int = 64 * 1024,
        append_size: int = 16 * 1024,
        seed_files_per_client: int = 30,
    ) -> None:
        self.mean_file_size = mean_file_size
        self.append_size = append_size
        self.seed_files_per_client = seed_files_per_client
        # The real personality's file set dwarfs node memory; scale the
        # caches so the hit rate, not the namespace, is what carries over.
        self.recommended_cache_capacity = max(
            4 * mean_file_size,
            seed_files_per_client * mean_file_size // 4,
        )

    def _draw_size(self, ctx: WorkloadContext) -> int:
        # Filebench uses a gamma-ish distribution; a clipped lognormal
        # reproduces the "mostly small, occasionally large" shape.
        size = int(ctx.rng.lognormal(0.0, 0.8) * self.mean_file_size)
        return max(4096, min(size, 8 * self.mean_file_size))

    def setup(self, ctx: WorkloadContext) -> _t.Generator:
        for _ in range(self.seed_files_per_client):
            size = self._draw_size(ctx)
            file_id = yield from ctx.fs.create(ctx.unique_name("fsrv"))
            yield from ctx.fs.write(file_id, 0, size, scattered=True)
            yield from ctx.fs.fsync(file_id)
            self.register_file(ctx, file_id, size)
        ctx.fs.cache.drop_volatile()

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        roll = ctx.rng.random()
        if roll < 0.33:
            yield from self._create_write(ctx)
        elif roll < 0.55:
            yield from self._append(ctx)
        elif roll < 0.85:
            yield from self._read_whole(ctx)
        elif roll < 0.93:
            yield from self._delete(ctx)
        else:
            yield from self._stat(ctx)
        yield from self.think(ctx)

    def _create_write(self, ctx: WorkloadContext) -> _t.Generator:
        size = self._draw_size(ctx)
        file_id = yield from timed(
            ctx, "create", ctx.fs.create(ctx.unique_name("fsrv"))
        )
        yield from timed(
            ctx, "write", ctx.fs.write(file_id, 0, size), nbytes=size
        )
        yield from timed(ctx, "close", ctx.fs.close(file_id))
        self.register_file(ctx, file_id, size)

    def _append(self, ctx: WorkloadContext) -> _t.Generator:
        entry = self.pick_file(ctx)
        if entry is None:
            return
        _, file_id, size = entry
        yield from timed(
            ctx,
            "append",
            ctx.fs.write(file_id, size, self.append_size),
            nbytes=self.append_size,
        )

    def _read_whole(self, ctx: WorkloadContext) -> _t.Generator:
        # Whole-file reads sample the personality's large cold file set.
        entry = self.pick_file(ctx, seeds_only=True)
        if entry is None:
            return
        _, file_id, size = entry
        yield from timed(
            ctx, "read", ctx.fs.read(file_id, 0, size), nbytes=size
        )

    def _delete(self, ctx: WorkloadContext) -> _t.Generator:
        mine = [
            e for e in self.registry(ctx) if e[0] == ctx.client_index
        ]
        if not mine:
            return
        entry = ctx.rng.choice(mine)
        self.unregister_file(ctx, entry)
        yield from timed(ctx, "delete", ctx.fs.unlink(entry[1]))

    def _stat(self, ctx: WorkloadContext) -> _t.Generator:
        entry = self.pick_file(ctx)
        if entry is None:
            return
        yield from timed(ctx, "stat", ctx.fs.stat(entry[1]))


class VarmailWorkload(Workload):
    """Filebench *varmail*: the fsync-heavy mail-server personality.

    Flowlet per iteration: delete an old mail, compose (create + write +
    fsync), re-read a mail then append-and-fsync (marking it read), and a
    plain read -- /var/mail semantics where durability matters.
    """

    name = "varmail"
    threads_per_client = 4
    think_time = 0.0003

    def __init__(
        self,
        mean_mail_size: int = 16 * 1024,
        seed_files_per_client: int = 30,
    ) -> None:
        self.mean_mail_size = mean_mail_size
        self.seed_files_per_client = seed_files_per_client
        self.recommended_cache_capacity = max(
            4 * mean_mail_size,
            seed_files_per_client * mean_mail_size // 4,
        )

    def _draw_size(self, ctx: WorkloadContext) -> int:
        size = int(ctx.rng.lognormal(0.0, 0.6) * self.mean_mail_size)
        return max(2048, min(size, 4 * self.mean_mail_size))

    def setup(self, ctx: WorkloadContext) -> _t.Generator:
        for _ in range(self.seed_files_per_client):
            size = self._draw_size(ctx)
            file_id = yield from ctx.fs.create(ctx.unique_name("mail"))
            yield from ctx.fs.write(file_id, 0, size, scattered=True)
            yield from ctx.fs.fsync(file_id)
            self.register_file(ctx, file_id, size)
        ctx.fs.cache.drop_volatile()

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        yield from self._delete_one(ctx)
        yield from self._compose(ctx)
        yield from self._read_append_sync(ctx)
        yield from self._read_one(ctx)
        yield from self.think(ctx)

    def _delete_one(self, ctx: WorkloadContext) -> _t.Generator:
        registry = self.registry(ctx)
        # Only reap runtime mail; the seeded corpus stands in for the
        # huge long-lived mail store and must survive.
        seeds = set(id(e) for e in self.seed_registry(ctx))
        mine = [
            e
            for e in registry
            if e[0] == ctx.client_index and id(e) not in seeds
        ]
        if len(mine) <= self.seed_files_per_client // 2:
            return  # keep the mailbox from draining
        entry = ctx.rng.choice(mine)
        self.unregister_file(ctx, entry)
        yield from timed(ctx, "delete", ctx.fs.unlink(entry[1]))

    def _compose(self, ctx: WorkloadContext) -> _t.Generator:
        size = self._draw_size(ctx)
        file_id = yield from timed(
            ctx, "create", ctx.fs.create(ctx.unique_name("mail"))
        )
        yield from timed(
            ctx, "write", ctx.fs.write(file_id, 0, size), nbytes=size
        )
        yield from timed(ctx, "fsync", ctx.fs.fsync(file_id))
        yield from timed(ctx, "close", ctx.fs.close(file_id))
        self.register_file(ctx, file_id, size)

    def _read_append_sync(self, ctx: WorkloadContext) -> _t.Generator:
        # Re-reading an arbitrary mailbox: the mail store is far larger
        # than memory, so sample the cold corpus.
        entry = self.pick_file(ctx, seeds_only=True)
        if entry is None:
            return
        _, file_id, size = entry
        yield from timed(
            ctx, "read", ctx.fs.read(file_id, 0, size), nbytes=size
        )
        append = 2048
        yield from timed(
            ctx,
            "append",
            ctx.fs.write(file_id, size, append),
            nbytes=append,
        )
        yield from timed(ctx, "fsync", ctx.fs.fsync(file_id))

    def _read_one(self, ctx: WorkloadContext) -> _t.Generator:
        entry = self.pick_file(ctx, seeds_only=True)
        if entry is None:
            return
        _, file_id, size = entry
        yield from timed(
            ctx, "read", ctx.fs.read(file_id, 0, size), nbytes=size
        )


class WebproxyWorkload(Workload):
    """Filebench *webproxy*: read-dominated with steady small ingest.

    Flowlet: delete + create + write one cached object, then five reads
    of random objects -- the classic 5:1 read bias of the personality.
    """

    name = "webproxy"
    threads_per_client = 4
    think_time = 0.0003

    def __init__(
        self,
        mean_object_size: int = 16 * 1024,
        seed_files_per_client: int = 40,
        reads_per_write: int = 5,
    ) -> None:
        self.mean_object_size = mean_object_size
        self.seed_files_per_client = seed_files_per_client
        self.reads_per_write = reads_per_write
        self.recommended_cache_capacity = max(
            4 * mean_object_size,
            seed_files_per_client * mean_object_size // 4,
        )

    def _draw_size(self, ctx: WorkloadContext) -> int:
        size = int(ctx.rng.lognormal(0.0, 0.7) * self.mean_object_size)
        return max(2048, min(size, 4 * self.mean_object_size))

    def setup(self, ctx: WorkloadContext) -> _t.Generator:
        for _ in range(self.seed_files_per_client):
            size = self._draw_size(ctx)
            file_id = yield from ctx.fs.create(ctx.unique_name("proxy"))
            yield from ctx.fs.write(file_id, 0, size, scattered=True)
            yield from ctx.fs.fsync(file_id)
            self.register_file(ctx, file_id, size)
        ctx.fs.cache.drop_volatile()

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        # Replace one cache entry (runtime objects only; the seed corpus
        # models the long tail and persists).
        seeds = set(id(e) for e in self.seed_registry(ctx))
        mine = [
            e
            for e in self.registry(ctx)
            if e[0] == ctx.client_index and id(e) not in seeds
        ]
        if len(mine) > self.seed_files_per_client:
            entry = ctx.rng.choice(mine)
            self.unregister_file(ctx, entry)
            yield from timed(ctx, "delete", ctx.fs.unlink(entry[1]))
        size = self._draw_size(ctx)
        file_id = yield from timed(
            ctx, "create", ctx.fs.create(ctx.unique_name("proxy"))
        )
        yield from timed(
            ctx, "write", ctx.fs.write(file_id, 0, size), nbytes=size
        )
        yield from timed(ctx, "close", ctx.fs.close(file_id))
        self.register_file(ctx, file_id, size)
        # Serve five objects from the cold proxy corpus.
        for _ in range(self.reads_per_write):
            entry = self.pick_file(ctx, prefer_remote=True, seeds_only=True)
            if entry is None:
                continue
            _, fid, fsize = entry
            yield from timed(
                ctx, "read", ctx.fs.read(fid, 0, fsize), nbytes=fsize
            )
        yield from self.think(ctx)
