"""The xcdn benchmark (§V.B).

"Xcdn is a benchmark emulating the read/write operations of the servers
in the CDN (Content Delivery Network) environment."  The paper runs it
with file sizes 32 KB, 64 KB and 1 MB; the 32 KB variant is the headline
2.6x speedup case, with "small file writes randomly scattered over the
whole namespace" making the client cache useless.

Model: each thread iteration either

- *ingests* a new object: create + write ``file_size`` + close (the
  origin-fetch-and-store path), or
- *serves* a miss: read a random object from the shared namespace --
  preferring objects stored by other clients, so the read always leaves
  the local cache cold, exactly the scattered-namespace effect.
"""

from __future__ import annotations

import typing as _t

from repro.workloads.spec import Workload, WorkloadContext, timed


class XcdnWorkload(Workload):
    """CDN edge-server read/write mix over a scattered namespace."""

    name = "xcdn"
    threads_per_client = 4
    think_time = 0.0004

    def __init__(
        self,
        file_size: int = 32 * 1024,
        write_fraction: float = 0.65,
        seed_files_per_client: int = 40,
        threads_per_client: _t.Optional[int] = None,
    ) -> None:
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(f"bad write_fraction {write_fraction}")
        if file_size <= 0:
            raise ValueError(f"bad file_size {file_size}")
        self.file_size = file_size
        self.write_fraction = write_fraction
        self.seed_files_per_client = seed_files_per_client
        if threads_per_client is not None:
            self.threads_per_client = threads_per_client
        self.name = f"xcdn-{file_size // 1024}K"
        # Keep the cache small relative to the namespace: the paper's
        # point is that scattered small files defeat client caching.
        self.recommended_cache_capacity = max(
            4 * file_size, seed_files_per_client * file_size // 4
        )

    def setup(self, ctx: WorkloadContext) -> _t.Generator:
        """Seed the shared namespace with committed objects."""
        for _ in range(self.seed_files_per_client):
            name = ctx.unique_name("cdn")
            file_id = yield from ctx.fs.create(name)
            yield from ctx.fs.write(
                file_id, 0, self.file_size, scattered=True
            )
            yield from ctx.fs.fsync(file_id)
            self.register_file(ctx, file_id, self.file_size)
        # Seed data must not sit in the local cache when measurement
        # starts -- a CDN's namespace dwarfs client memory.
        ctx.fs.cache.drop_volatile()

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        if ctx.rng.random() < self.write_fraction:
            yield from self._ingest(ctx)
        else:
            yield from self._serve(ctx)
        yield from self.think(ctx)

    def _ingest(self, ctx: WorkloadContext) -> _t.Generator:
        name = ctx.unique_name("cdn")
        file_id = yield from timed(ctx, "create", ctx.fs.create(name))
        yield from timed(
            ctx,
            "write",
            ctx.fs.write(file_id, 0, self.file_size),
            nbytes=self.file_size,
        )
        yield from timed(ctx, "close", ctx.fs.close(file_id))
        self.register_file(ctx, file_id, self.file_size)

    def _serve(self, ctx: WorkloadContext) -> _t.Generator:
        # Serve from the long-tail corpus: in a real CDN the namespace
        # dwarfs every cache, so reads land on cold objects.
        entry = self.pick_file(ctx, prefer_remote=True, seeds_only=True)
        if entry is None:
            return
        _, file_id, size = entry
        yield from timed(
            ctx, "read", ctx.fs.read(file_id, 0, size), nbytes=size
        )
