"""An NPB BT-IO-like parallel workload (§V.B / §V.C).

"NPB (NAS Parallel Benchmarks) consists of several scientific
applications using MPI.  We use BT (Block-Tridiagonal) for evaluating
parallel I/O. ...  For NPB benchmark, written data is read out into
memory to verify the correctness at the end of the program.  The read
operations may include those requests that haven't been committed, and
these read operations are known as conflict operations."

Model: every client is one MPI rank.  Each iteration performs a compute
phase (think time standing in for the BT solver step), then appends one
large slab to the rank's output file; every ``steps_per_barrier``
iterations the ranks synchronise on a barrier (MPI collective I/O
rhythm).  At the end of the run the rank reads its entire output back --
the conflict reads: under delayed commit some of that data may still be
awaiting its metadata commit, and the read must still return correct
data (served from the client cache / after commit) with no performance
cliff.
"""

from __future__ import annotations

import typing as _t

from repro.sim.events import Event
from repro.workloads.spec import Workload, WorkloadContext, timed


class _Barrier:
    """A reusable MPI-style barrier across all participating ranks."""

    def __init__(self, parties: int) -> None:
        self.parties = parties
        self._waiting: _t.List[Event] = []

    def arrive(self, env) -> Event:
        ev = Event(env)
        self._waiting.append(ev)
        if len(self._waiting) >= self.parties:
            waiters, self._waiting = self._waiting, []
            for w in waiters:
                w.succeed()
        return ev


class NpbBtIoWorkload(Workload):
    """BT-IO-like: compute, append large slabs, barrier, verify."""

    name = "npb-bt"
    threads_per_client = 1  # one MPI rank per node
    # Ranks synchronise on an all-parties barrier: multiplexing two
    # ranks onto one thread would park one inside the other's collective
    # wait and deadlock it, so BT-IO refuses aggregate nodes.
    aggregatable = False
    think_time = 0.0

    def __init__(
        self,
        slab_size: int = 1024 * 1024,
        steps_per_barrier: int = 2,
        compute_time: float = 0.050,
        verify_read_size: int = 1024 * 1024,
        strided_pieces: int = 2,
    ) -> None:
        self.slab_size = slab_size
        self.steps_per_barrier = steps_per_barrier
        self.compute_time = compute_time
        self.verify_read_size = verify_read_size
        #: On systems without MPI-IO collective buffering, each slab is
        #: issued as this many separate sub-writes (BT's output is
        #: strided; only a collective driver aggregates it).
        self.strided_pieces = strided_pieces

    def setup(self, ctx: WorkloadContext) -> _t.Generator:
        file_id = yield from ctx.fs.create(
            f"npb/rank{ctx.client_index}.out"
        )
        ctx.state["file_id"] = file_id
        ctx.state["offset"] = 0
        ctx.state["step"] = 0
        ctx.shared.setdefault("barrier", _Barrier(ctx.num_clients))

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        # Compute phase (the BT solver step).
        if self.compute_time > 0:
            start = ctx.env.now
            yield ctx.env.timeout(self.compute_time)
            if ctx.measuring:
                ctx.metrics.record(
                    "compute", ctx.env.now - start, 0, now=ctx.env.now
                )
        # Append one slab.  A collective MPI-IO driver aggregates the
        # rank's strided records into one large write; other systems see
        # the records individually.
        file_id = ctx.state["file_id"]
        offset = ctx.state["offset"]
        if getattr(ctx.fs, "supports_collective_io", False):
            yield from timed(
                ctx,
                "write",
                ctx.fs.write(file_id, offset, self.slab_size),
                nbytes=self.slab_size,
            )
        else:
            piece = self.slab_size // self.strided_pieces
            for j in range(self.strided_pieces):
                yield from timed(
                    ctx,
                    "write",
                    ctx.fs.write(file_id, offset + j * piece, piece),
                    nbytes=piece,
                )
        ctx.state["offset"] = offset + self.slab_size
        ctx.state["step"] += 1
        # Collective rhythm: barrier, MPI_File_sync (the written epoch
        # must be durable), then the verification read-back.
        if ctx.state["step"] % self.steps_per_barrier == 0:
            barrier: _Barrier = ctx.shared["barrier"]
            yield from timed(ctx, "barrier", self._wait(ctx, barrier))
            yield from timed(ctx, "sync", ctx.fs.fsync(file_id))
            yield from self.verify(ctx)

    @staticmethod
    def _wait(ctx: WorkloadContext, barrier: _Barrier) -> _t.Generator:
        yield barrier.arrive(ctx.env)

    def verify(self, ctx: WorkloadContext) -> _t.Generator:
        """Read the written data back (the conflict operations)."""
        file_id = ctx.state["file_id"]
        end = ctx.state["offset"]
        read = 0
        cursor = max(0, end - self.steps_per_barrier * self.slab_size)
        while cursor < end:
            chunk = min(self.verify_read_size, end - cursor)
            yield from timed(
                ctx,
                "verify-read",
                ctx.fs.read(file_id, cursor, chunk),
                nbytes=chunk,
            )
            cursor += chunk
            read += chunk
        return read
