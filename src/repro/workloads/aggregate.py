"""Aggregate client processes: many personalities, few nodes.

The legacy runner builds one simulated client node (NIC pair, RPC
client, page cache, commit queue, application threads) per workload
client.  That couples the client *population* to the process count, and
the process count to the event rate -- 10 000 clients means 40 000
application threads and a calendar that never drains.

This module decouples them.  A run with ``client_processes = P`` and
``num_clients = N`` (P < N) still creates **N workload personalities**
-- each with its own RNG substream, metrics, private state and share of
the namespace, exactly as before -- but maps them onto only **P
simulated nodes** (personality ``p`` lives on node ``p % P``).  Each
node runs the workload's usual ``threads_per_client`` application
threads, and every thread *statistically multiplexes* the node's
personalities: each op iteration first draws which resident personality
issues it, then runs the personality's own ``op`` with the personality's
own RNG.  One node thus presents the interleaved request stream of
``N / P`` clients while costing one client's worth of processes.

Determinism contract
--------------------
- Personality substreams are unchanged: personality ``p`` draws from
  ``root_rng.stream("workload", p)`` whether aggregated or not.
- The multiplexer draws from dedicated ``("aggregate", node, tid)``
  streams that exist only in aggregated runs -- legacy runs consume no
  extra randomness, which is why ``client_processes=None`` (and the
  degenerate ``client_processes == num_clients``) stays byte-identical
  to pre-aggregation builds.
- Same seed, same (N, P): identical trace, ops and blktrace digest.

Not every personality can be multiplexed: NPB BT-IO's ranks block on an
``num_clients``-party barrier, so parking one rank while another waits
would deadlock the collective.  Such workloads declare
``aggregatable = False`` and the runner rejects aggregation up front.
"""

from __future__ import annotations

import typing as _t

from repro.sim.rng import StreamRNG
from repro.workloads.spec import Workload, WorkloadContext


def assign_personalities(
    num_clients: int, nodes: int
) -> _t.List[_t.List[int]]:
    """Round-robin personality -> node map: personality p on node p % nodes.

    Round-robin (rather than contiguous blocks) keeps every node's
    resident set statistically alike even when ``nodes`` does not divide
    ``num_clients``.
    """
    if not 1 <= nodes <= num_clients:
        raise ValueError(
            f"nodes must be in [1, num_clients={num_clients}], got {nodes}"
        )
    return [
        list(range(node, num_clients, nodes)) for node in range(nodes)
    ]


def aggregate_thread(
    workload: Workload,
    contexts: _t.List[WorkloadContext],
    mux_rng: StreamRNG,
    thread_id: int,
    deadline: float,
) -> _t.Generator:
    """One aggregate application thread multiplexing ``contexts``.

    Every iteration draws the issuing personality from ``mux_rng`` (a
    per-(node, thread) stream), then runs one op of the workload under
    that personality's context -- its RNG, metrics and file handles --
    so the op stream is an unbiased interleaving of the resident
    personalities.
    """
    env = contexts[0].env
    n = len(contexts)
    if n == 1:
        ctx = contexts[0]
        while env.now < deadline:
            yield from workload.op(ctx, thread_id)
        return
    while env.now < deadline:
        ctx = contexts[int(mux_rng.integers(0, n))]
        yield from workload.op(ctx, thread_id)
