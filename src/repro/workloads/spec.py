"""The workload abstraction.

A workload personality defines, per client:

- :meth:`Workload.setup` -- pre-populate the namespace (seed files) before
  measurement starts; setup time is excluded from the metrics;
- :meth:`Workload.op` -- one logical operation iteration (possibly a
  multi-step flowlet like varmail's create-write-fsync); the runner loops
  it on every application thread until the measurement deadline.

Cross-client coordination (the shared file registry readers draw from,
NPB's barrier) happens through :attr:`WorkloadContext.shared`, a dict the
cluster runner passes to every client's context.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.analysis.metrics import OpMetrics
from repro.client.filesystem import FileSystemAPI
from repro.sim.rng import StreamRNG

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


@dataclass
class WorkloadContext:
    """Everything a workload needs on one client node."""

    env: "Environment"
    fs: FileSystemAPI
    rng: StreamRNG
    client_index: int
    num_clients: int
    metrics: OpMetrics
    #: Cross-client shared state (one dict per run, same object for all).
    shared: _t.Dict[str, _t.Any]
    #: Per-client private state, populated by setup().
    state: _t.Dict[str, _t.Any] = field(default_factory=dict)
    #: True while inside the measured window (setup leaves this False).
    measuring: bool = False
    #: True during the setup phase only; distinguishes seed files from
    #: warmup-time runtime files (which must not join the seed corpus).
    in_setup: bool = True

    _name_counter: int = 0

    def unique_name(self, prefix: str) -> str:
        """A cluster-unique file name."""
        self._name_counter += 1
        return f"{prefix}/c{self.client_index}/{self._name_counter}"


def timed(
    ctx: WorkloadContext,
    op_name: str,
    gen: _t.Generator,
    nbytes: int = 0,
) -> _t.Generator:
    """Run ``gen`` and record its latency under ``op_name``.

    Outside the measured window the operation still runs but is not
    recorded, so setup traffic never pollutes the results.
    """
    start = ctx.env.now
    result = yield from gen
    if ctx.measuring:
        ctx.metrics.record(
            op_name, ctx.env.now - start, nbytes, now=ctx.env.now
        )
    return result


class Workload:
    """Base class for benchmark personalities."""

    #: Display name used in reports.
    name = "base"
    #: Application threads spawned per client node.
    threads_per_client = 4
    #: Whether personalities of this workload may be statistically
    #: multiplexed onto shared aggregate nodes (see
    #: :mod:`repro.workloads.aggregate`).  Personalities that block on
    #: cross-client collectives (NPB's barrier) must opt out: parking
    #: one rank while a co-resident rank waits on the collective would
    #: deadlock it.
    aggregatable = True
    #: Mean think time between op iterations (seconds; exponential).
    think_time = 0.0005
    #: Client page-cache capacity this personality recommends (bytes);
    #: ``None`` keeps the cluster default.
    recommended_cache_capacity: _t.Optional[int] = None

    def setup(self, ctx: WorkloadContext) -> _t.Generator:
        """Pre-measurement population; default: nothing."""
        return
        yield  # pragma: no cover - makes this a generator

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        """One operation iteration on one application thread."""
        raise NotImplementedError

    def think(self, ctx: WorkloadContext) -> _t.Generator:
        """Inter-op computation time (the app's own work)."""
        if self.think_time > 0:
            yield ctx.env.timeout(ctx.rng.exponential(self.think_time))

    # -- shared-registry helpers ------------------------------------------------

    @staticmethod
    def registry(ctx: WorkloadContext) -> _t.List[_t.Tuple[int, int, int]]:
        """The shared list of readable files: (client_index, file_id, size)."""
        return ctx.shared.setdefault("registry", [])

    @staticmethod
    def seed_registry(
        ctx: WorkloadContext,
    ) -> _t.List[_t.Tuple[int, int, int]]:
        """Files seeded during setup -- the cold long-tail namespace."""
        return ctx.shared.setdefault("seed_registry", [])

    @classmethod
    def register_file(
        cls, ctx: WorkloadContext, file_id: int, size: int
    ) -> None:
        entry = (ctx.client_index, file_id, size)
        cls.registry(ctx).append(entry)
        if ctx.in_setup:
            cls.seed_registry(ctx).append(entry)

    @classmethod
    def unregister_file(
        cls, ctx: WorkloadContext, entry: _t.Tuple[int, int, int]
    ) -> None:
        """Remove a deleted file from every registry view."""
        registry = cls.registry(ctx)
        if entry in registry:
            registry.remove(entry)
        seeds = cls.seed_registry(ctx)
        if entry in seeds:
            seeds.remove(entry)

    @classmethod
    def pick_file(
        cls,
        ctx: WorkloadContext,
        prefer_remote: bool = False,
        seeds_only: bool = False,
    ) -> _t.Optional[_t.Tuple[int, int, int]]:
        """Pick a random registered file.

        ``prefer_remote`` biases to files seeded by other clients
        (guaranteed local-cache misses); ``seeds_only`` restricts to the
        setup-time namespace, modelling reads scattered over a corpus far
        larger than any cache (the paper's 32 KB xcdn observation).
        """
        registry = (
            cls.seed_registry(ctx) if seeds_only else cls.registry(ctx)
        )
        if not registry:
            return None
        if prefer_remote:
            remote = [
                entry
                for entry in registry
                if entry[0] != ctx.client_index
            ]
            if remote:
                return ctx.rng.choice(remote)
        return ctx.rng.choice(registry)
