"""Workload generators for the paper's evaluation (§V.B).

- :mod:`repro.workloads.spec` -- the workload abstraction and timing
  helpers.
- :mod:`repro.workloads.filebench` -- the three Filebench personalities
  the paper uses: **fileserver**, **varmail**, **webproxy**.
- :mod:`repro.workloads.xcdn` -- the CDN benchmark: small-file writes
  scattered over a large namespace, parameterised by file size.
- :mod:`repro.workloads.npb` -- an NPB BT-IO-like parallel writer with
  read-back verification (the paper's conflict-operation test).
- :mod:`repro.workloads.aggregate` -- aggregate client nodes: N workload
  personalities statistically multiplexed onto P < N simulated nodes, so
  10k-client populations run on a handful of processes.
"""

from repro.workloads.aggregate import aggregate_thread, assign_personalities
from repro.workloads.filebench import (
    FileserverWorkload,
    VarmailWorkload,
    WebproxyWorkload,
)
from repro.workloads.npb import NpbBtIoWorkload
from repro.workloads.spec import Workload, WorkloadContext, timed
from repro.workloads.xcdn import XcdnWorkload

__all__ = [
    "FileserverWorkload",
    "aggregate_thread",
    "assign_personalities",
    "NpbBtIoWorkload",
    "VarmailWorkload",
    "WebproxyWorkload",
    "Workload",
    "WorkloadContext",
    "XcdnWorkload",
    "timed",
]
