"""Typed RPC messages between clients and the metadata server.

The wire-size model matters for the Fig. 7 reproduction: a compound RPC
of *k* commit operations costs one message overhead plus *k* op bodies,
versus *k* full messages when sent individually.  Sizes below follow the
rough proportions of ONC-RPC-style metadata protocols (small fixed
header, a couple hundred bytes per operation).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.kernel.events import Event

#: Fixed RPC header/credential bytes per message.
MESSAGE_HEADER_BYTES = 96
#: Encoded size of one operation body (arguments, extent descriptors).
OP_BODY_BYTES = 208
#: Encoded size of one reply body.
REPLY_BODY_BYTES = 112


@dataclass
class CreatePayload:
    """Create a file in the namespace."""

    name: str


@dataclass
class GetattrPayload:
    """Stat a file."""

    file_id: int


@dataclass
class LayoutGetPayload:
    """Request the layout (extents) for a byte range of a file.

    ``allocate`` asks the MDS to allocate backing space for any holes
    (new writes); ``delegation_hint`` carries the client's space-need
    flag so a fresh delegated chunk can ride back on the reply (§IV.A).
    """

    file_id: int
    offset: int
    length: int
    allocate: bool = False
    delegation_hint: bool = False
    #: Place any new allocation at a random volume position (used when
    #: seeding aged namespaces).
    scattered: bool = False


@dataclass
class DelegationPayload:
    """Explicitly request a delegated space chunk."""

    chunk_size: int
    #: Destination metadata shard (space is delegated per shard; a
    #: single-MDS deployment always uses shard 0).
    shard: int = 0


@dataclass
class CommitOp:
    """Commit one file's new extents to the MDS (metadata update).

    This is the remote sub-operation of the ordered write: it must not be
    *sent* before the extents' data is stable on disk.
    """

    file_id: int
    extents: _t.List[_t.Any]
    #: Virtual time the originating update entered the commit queue.
    enqueue_time: float = 0.0
    #: Causal-trace ids of the logical updates this op commits (empty
    #: when tracing is off); carries no wire weight -- sizes derive from
    #: the op count alone.
    trace_ids: _t.Tuple[int, ...] = ()
    #: Client-unique commit id: the MDS keys its duplicate-suppression
    #: table on ``(client_id, op_id)`` so a retried or re-compounded
    #: commit applies exactly once.  ``None`` (legacy/hand-built ops)
    #: skips suppression.  Always assigned on real clients -- a plain
    #: counter, so it never perturbs scheduling or RNG state.
    op_id: _t.Optional[int] = None


@dataclass
class CommitPayload:
    """One or more commit operations travelling in a single RPC.

    ``len(ops) > 1`` is the *compound RPC* of §IV.B; the compound degree
    is simply ``len(ops)``.
    """

    ops: _t.List[CommitOp] = field(default_factory=list)

    @property
    def degree(self) -> int:
        return len(self.ops)


@dataclass
class ReleasePayload:
    """Return an unused delegated chunk (client shutdown / recovery)."""

    chunks: _t.List[_t.Tuple[int, int]]
    #: Shard whose allocator the chunks came from (see
    #: :class:`DelegationPayload`).
    shard: int = 0


@dataclass
class UnlinkPayload:
    """Remove a file and free its extents."""

    file_id: int


Payload = _t.Union[
    CreatePayload,
    GetattrPayload,
    LayoutGetPayload,
    DelegationPayload,
    CommitPayload,
    ReleasePayload,
    UnlinkPayload,
]


@dataclass
class RpcMessage:
    """An RPC in flight: request payload plus reply plumbing.

    ``data_bytes`` / ``reply_data_bytes`` model bulk payloads riding the
    RPC (NFS WRITE carries the file data to the server; NFS READ replies
    carry it back).  Redbud metadata RPCs leave both at zero -- its data
    path is the FC network, not Ethernet.
    """

    kind: str
    payload: Payload
    client_id: int
    reply_event: Event
    send_time: float
    #: Bulk data bytes attached to the request (NFS3/PVFS2 writes).
    data_bytes: int = 0
    #: Bulk data bytes the reply will carry (NFS3/PVFS2 reads).
    reply_data_bytes: int = 0
    #: Filled by the server with the reply value before reply delivery.
    result: _t.Any = None
    #: Virtual time the request landed in the server inbox (set by the
    #: transport; the server's queue-wait accounting reads it).
    arrive_time: float = 0.0
    #: Causal tracing: update ids this RPC works for and the client-side
    #: RPC span id (both empty/None when tracing is off).
    trace_ids: _t.Tuple[int, ...] = ()
    trace_span_id: _t.Optional[int] = None
    #: Per-client transaction id (NFS-style xid).  The server's reply
    #: cache keys on ``(client_id, xid)`` to recognise retransmissions
    #: of the same request.  ``0`` (hand-built messages) disables it.
    xid: int = 0

    def op_count(self) -> int:
        """Number of logical operations carried (compound degree)."""
        if isinstance(self.payload, CommitPayload):
            return max(1, len(self.payload.ops))
        return 1

    def request_size(self) -> int:
        """Wire size of the request in bytes."""
        return (
            MESSAGE_HEADER_BYTES
            + self.op_count() * OP_BODY_BYTES
            + self.data_bytes
        )

    def reply_size(self) -> int:
        """Wire size of the reply in bytes."""
        return (
            MESSAGE_HEADER_BYTES
            + self.op_count() * REPLY_BODY_BYTES
            + self.reply_data_bytes
        )
