"""Length-prefixed JSON wire codec for the real-socket substrate.

The simulator never serialises anything -- RPC payloads are shared Python
objects riding :class:`~repro.net.messages.RpcMessage` through modelled
links.  The asyncio substrate (``repro.rt``) sends the same messages over
real TCP, so it needs a wire format.  This module is that format:

* **Framing** -- each frame is a 4-byte big-endian unsigned length
  followed by that many bytes of UTF-8 JSON (the classic clusterIO /
  ONC-RPC record-marking shape).  Frames above :data:`MAX_FRAME` are
  rejected before buffering so a corrupt or hostile peer cannot balloon
  memory; truncated frames simply wait in the decoder until the rest of
  the bytes arrive (or the connection drops).
* **Payload codec** -- every request payload type in
  :mod:`repro.net.messages` and every reply type the metadata server
  produces (``None``/``bool``/``list[bool]``/:class:`FileMeta`/
  :class:`LayoutReply`/:class:`Chunk`) round-trips through plain JSON
  dicts tagged with a ``"type"`` discriminator.

The codec is substrate-independent pure code (no asyncio imports), so the
Hypothesis round-trip tests exercise it without an event loop.
"""

from __future__ import annotations

import json
import struct
import typing as _t

from repro.mds.extent import Chunk, Extent
from repro.mds.namespace import FileMeta
from repro.net.messages import (
    CommitOp,
    CommitPayload,
    CreatePayload,
    DelegationPayload,
    GetattrPayload,
    LayoutGetPayload,
    Payload,
    ReleasePayload,
    RpcMessage,
    UnlinkPayload,
)

__all__ = [
    "MAX_FRAME",
    "FrameError",
    "FrameDecoder",
    "encode_frame",
    "payload_to_wire",
    "payload_from_wire",
    "result_to_wire",
    "result_from_wire",
    "request_to_wire",
    "request_from_wire",
]

#: Upper bound on one frame's JSON body.  Generous for metadata RPCs (a
#: maximal compound commit is a few hundred KiB) while still bounding a
#: bad length prefix.
MAX_FRAME = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """A malformed frame: oversized length prefix or undecodable body."""


def encode_frame(obj: _t.Any) -> bytes:
    """Serialise ``obj`` to one length-prefixed JSON frame."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame body {len(body)} exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser for a TCP byte stream.

    Feed it whatever ``recv`` returned; it yields every complete frame
    and buffers the tail.  A length prefix above :data:`MAX_FRAME`
    raises :class:`FrameError` immediately -- the connection should be
    dropped, the buffered bytes are garbage from then on.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> _t.List[_t.Any]:
        self._buf.extend(data)
        frames: _t.List[_t.Any] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME:
                raise FrameError(
                    f"frame length {length} exceeds {MAX_FRAME}"
                )
            if len(self._buf) < _LEN.size + length:
                return frames
            body = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            try:
                frames.append(json.loads(body.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buf)


# -- extents and chunks ------------------------------------------------------


def _extent_to_wire(e: Extent) -> _t.List[_t.Any]:
    return [e.file_offset, e.length, e.device_id, e.volume_offset, e.state]


def _extent_from_wire(obj: _t.Sequence[_t.Any]) -> Extent:
    file_offset, length, device_id, volume_offset, state = obj
    return Extent(
        file_offset=file_offset,
        length=length,
        device_id=device_id,
        volume_offset=volume_offset,
        state=state,
    )


def _chunk_to_wire(c: _t.Optional[Chunk]) -> _t.Optional[_t.List[int]]:
    return None if c is None else [c.volume_offset, c.length]


def _chunk_from_wire(obj: _t.Optional[_t.Sequence[int]]) -> _t.Optional[Chunk]:
    return None if obj is None else Chunk(volume_offset=obj[0], length=obj[1])


# -- request payloads --------------------------------------------------------


def payload_to_wire(payload: Payload) -> _t.Dict[str, _t.Any]:
    """Encode one request payload to a JSON-safe dict."""
    if isinstance(payload, CreatePayload):
        return {"type": "create", "name": payload.name}
    if isinstance(payload, GetattrPayload):
        return {"type": "getattr", "file_id": payload.file_id}
    if isinstance(payload, LayoutGetPayload):
        return {
            "type": "layout_get",
            "file_id": payload.file_id,
            "offset": payload.offset,
            "length": payload.length,
            "allocate": payload.allocate,
            "delegation_hint": payload.delegation_hint,
            "scattered": payload.scattered,
        }
    if isinstance(payload, DelegationPayload):
        return {
            "type": "delegation",
            "chunk_size": payload.chunk_size,
            "shard": payload.shard,
        }
    if isinstance(payload, CommitPayload):
        return {
            "type": "commit",
            "ops": [
                {
                    "file_id": op.file_id,
                    "extents": [_extent_to_wire(e) for e in op.extents],
                    "enqueue_time": op.enqueue_time,
                    "trace_ids": list(op.trace_ids),
                    "op_id": op.op_id,
                }
                for op in payload.ops
            ],
        }
    if isinstance(payload, ReleasePayload):
        return {
            "type": "release",
            "chunks": [list(pair) for pair in payload.chunks],
            "shard": payload.shard,
        }
    if isinstance(payload, UnlinkPayload):
        return {"type": "unlink", "file_id": payload.file_id}
    raise TypeError(f"unknown payload {payload!r}")


def payload_from_wire(obj: _t.Dict[str, _t.Any]) -> Payload:
    """Decode a request payload dict back into its dataclass."""
    kind = obj["type"]
    if kind == "create":
        return CreatePayload(name=obj["name"])
    if kind == "getattr":
        return GetattrPayload(file_id=obj["file_id"])
    if kind == "layout_get":
        return LayoutGetPayload(
            file_id=obj["file_id"],
            offset=obj["offset"],
            length=obj["length"],
            allocate=obj["allocate"],
            delegation_hint=obj["delegation_hint"],
            scattered=obj["scattered"],
        )
    if kind == "delegation":
        return DelegationPayload(
            chunk_size=obj["chunk_size"], shard=obj["shard"]
        )
    if kind == "commit":
        return CommitPayload(
            ops=[
                CommitOp(
                    file_id=op["file_id"],
                    extents=[_extent_from_wire(e) for e in op["extents"]],
                    enqueue_time=op["enqueue_time"],
                    trace_ids=tuple(op["trace_ids"]),
                    op_id=op["op_id"],
                )
                for op in obj["ops"]
            ]
        )
    if kind == "release":
        return ReleasePayload(
            chunks=[(pair[0], pair[1]) for pair in obj["chunks"]],
            shard=obj["shard"],
        )
    if kind == "unlink":
        return UnlinkPayload(file_id=obj["file_id"])
    raise FrameError(f"unknown payload type {kind!r}")


# -- reply results -----------------------------------------------------------

# Imported lazily to avoid a cycle: mds.server imports net.messages.
def _layout_reply_cls() -> type:
    from repro.mds.server import LayoutReply

    return LayoutReply


def result_to_wire(result: _t.Any) -> _t.Dict[str, _t.Any]:
    """Encode one reply value to a JSON-safe tagged dict."""
    if result is None:
        return {"type": "none"}
    if isinstance(result, bool):
        return {"type": "bool", "value": result}
    if isinstance(result, list) and all(
        isinstance(x, bool) for x in result
    ):
        return {"type": "bools", "value": result}
    if isinstance(result, FileMeta):
        return {
            "type": "filemeta",
            "file_id": result.file_id,
            "name": result.name,
            "ctime": result.ctime,
            "mtime": result.mtime,
            "size": result.size,
            "extents": [_extent_to_wire(e) for e in result.extents],
        }
    if isinstance(result, Chunk):
        return {"type": "chunk", "value": _chunk_to_wire(result)}
    if isinstance(result, _layout_reply_cls()):
        return {
            "type": "layout_reply",
            "extents": [_extent_to_wire(e) for e in result.extents],
            "chunk": _chunk_to_wire(result.chunk),
        }
    raise TypeError(f"unencodable result {result!r}")


def result_from_wire(obj: _t.Dict[str, _t.Any]) -> _t.Any:
    """Decode a reply dict back into the server's native value."""
    kind = obj["type"]
    if kind == "none":
        return None
    if kind == "bool":
        return obj["value"]
    if kind == "bools":
        return list(obj["value"])
    if kind == "filemeta":
        return FileMeta(
            file_id=obj["file_id"],
            name=obj["name"],
            ctime=obj["ctime"],
            mtime=obj["mtime"],
            size=obj["size"],
            extents=[_extent_from_wire(e) for e in obj["extents"]],
        )
    if kind == "chunk":
        return _chunk_from_wire(obj["value"])
    if kind == "layout_reply":
        return _layout_reply_cls()(
            extents=[_extent_from_wire(e) for e in obj["extents"]],
            chunk=_chunk_from_wire(obj["chunk"]),
        )
    raise FrameError(f"unknown result type {kind!r}")


# -- whole requests ----------------------------------------------------------


def request_to_wire(message: RpcMessage) -> _t.Dict[str, _t.Any]:
    """Encode an in-flight request (reply plumbing stays local)."""
    return {
        "frame": "request",
        "kind": message.kind,
        "payload": payload_to_wire(message.payload),
        "client_id": message.client_id,
        "xid": message.xid,
        "send_time": message.send_time,
        "data_bytes": message.data_bytes,
        "reply_data_bytes": message.reply_data_bytes,
    }


def request_from_wire(obj: _t.Dict[str, _t.Any], reply_event: _t.Any) -> RpcMessage:
    """Rebuild a server-side :class:`RpcMessage` from a request frame.

    ``reply_event`` is substrate-supplied (the server port triggers it
    to emit the reply frame back down the originating connection).
    """
    return RpcMessage(
        kind=obj["kind"],
        payload=payload_from_wire(obj["payload"]),
        client_id=obj["client_id"],
        reply_event=reply_event,
        send_time=obj["send_time"],
        data_bytes=obj["data_bytes"],
        reply_data_bytes=obj["reply_data_bytes"],
        xid=obj["xid"],
    )
