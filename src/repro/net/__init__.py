"""Network substrate: the cluster Ethernet and the metadata RPC layer.

In the paper's testbed all metadata traffic (layout-get, commit,
delegation) crosses a 1000 Mbps Ethernet to the MDS, while file data goes
straight to the disk array over Fibre Channel.  This package models the
Ethernet side:

- :mod:`repro.net.link` -- an analytic FIFO link: serialisation at link
  bandwidth plus propagation delay, with queueing (congestion) when
  messages pile up.
- :mod:`repro.net.messages` -- typed RPC payloads, including the
  **compound RPC** envelope of §IV.B that carries several commit
  operations in one message.
- :mod:`repro.net.rpc` -- client call stubs and the server inbox the MDS
  daemons consume.
"""

from repro.net.link import Link, LinkStats
from repro.net.messages import (
    CommitOp,
    CommitPayload,
    CreatePayload,
    DelegationPayload,
    LayoutGetPayload,
    RpcMessage,
)
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport

__all__ = [
    "CommitOp",
    "CommitPayload",
    "CreatePayload",
    "DelegationPayload",
    "LayoutGetPayload",
    "Link",
    "LinkStats",
    "RpcClient",
    "RpcMessage",
    "RpcServerPort",
    "RpcTransport",
]
