"""RPC plumbing: client call stubs, server inbox, reply routing.

A call crosses the uplink (client -> MDS), waits in the server's inbox
until a daemon thread picks it up, is processed, and its reply crosses
the downlink back.  The caller simply ``yield``\\ s the event returned by
:meth:`RpcClient.call`.

The inbox is shared by all clients of a server (it is the MDS's request
queue); per-client uplinks model each client's NIC while a single shared
downlink pair can model the server's NIC if desired.
"""

from __future__ import annotations

import typing as _t

from repro.net.link import Link
from repro.net.messages import Payload, RpcMessage
from repro.sim.events import Event
from repro.sim.resources import Store

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class RpcServerPort:
    """The server side: an inbox of delivered requests.

    The MDS daemon threads loop on :meth:`next_request` and answer with
    :meth:`reply`.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.inbox: Store = Store(env)
        self.requests_received = 0
        self.replies_sent = 0

    def next_request(self):
        """Event yielding the next queued :class:`RpcMessage`."""
        return self.inbox.get()

    @property
    def queue_length(self) -> int:
        return len(self.inbox)

    def deliver(self, message: RpcMessage) -> None:
        """Called by the transport when a request arrives off the wire."""
        self.requests_received += 1
        message.arrive_time = self.env.now
        self.inbox.put(message)

    def reply(self, message: RpcMessage, result: _t.Any, downlink: Link) -> None:
        """Send the reply for ``message`` back over ``downlink``."""
        message.result = result
        self.replies_sent += 1
        delivery = downlink.send(message.reply_size())
        delivery.callbacks.append(
            lambda _ev, msg=message: msg.reply_event.succeed(msg.result)
        )


class RpcTransport:
    """A client's two-way connection to a server port."""

    def __init__(
        self,
        env: "Environment",
        uplink: Link,
        downlink: Link,
        port: RpcServerPort,
    ) -> None:
        self.env = env
        self.uplink = uplink
        self.downlink = downlink
        self.port = port

    def send_request(self, message: RpcMessage) -> None:
        delivery = self.uplink.send(message.request_size())
        delivery.callbacks.append(
            lambda _ev, msg=message: self.port.deliver(msg)
        )


class RpcClient:
    """Client-side stub issuing calls over a transport.

    ``call`` returns the reply event; its value is whatever the server
    passed to :meth:`RpcServerPort.reply`.
    """

    def __init__(
        self,
        env: "Environment",
        client_id: int,
        transport: RpcTransport,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.transport = transport
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self.calls_sent = 0
        self.ops_sent = 0

    def call(
        self,
        kind: str,
        payload: Payload,
        data_bytes: int = 0,
        reply_data_bytes: int = 0,
        trace_ids: _t.Tuple[int, ...] = (),
    ) -> Event:
        message = RpcMessage(
            kind=kind,
            payload=payload,
            client_id=self.client_id,
            reply_event=Event(self.env),
            send_time=self.env.now,
            data_bytes=data_bytes,
            reply_data_bytes=reply_data_bytes,
        )
        self.calls_sent += 1
        self.ops_sent += message.op_count()
        if self.obs is not None:
            # Span covering uplink + server queue/service + downlink;
            # closed by a reply-event callback (recording only, so the
            # extra callback cannot perturb event ordering).
            span = self.obs.tracer.begin(
                f"rpc:{kind}",
                "rpc",
                node=f"client-{self.client_id}",
                actor="rpc",
                update_ids=tuple(trace_ids),
                ops=message.op_count(),
                request_bytes=message.request_size(),
            )
            message.trace_ids = tuple(trace_ids)
            message.trace_span_id = span.span_id
            tracer = self.obs.tracer
            message.reply_event.callbacks.append(
                lambda _ev, s=span: tracer.end(s)
            )
            self.obs.registry.counter(f"rpc.calls.{kind}").inc()
        self.transport.send_request(message)
        return message.reply_event
