"""RPC plumbing: client call stubs, server inbox, reply routing.

A call crosses the uplink (client -> MDS), waits in the server's inbox
until a daemon thread picks it up, is processed, and its reply crosses
the downlink back.  The caller simply ``yield``\\ s the event returned by
:meth:`RpcClient.call`.

The inbox is shared by all clients of a server (it is the MDS's request
queue); per-client uplinks model each client's NIC while a single shared
downlink pair can model the server's NIC if desired.

Fault tolerance (``repro.faults``) hooks in at two points:

- Replies route through the sending client's :class:`RpcTransport`
  (registered with the port at client construction), so reply loss and
  delay faults on the downlink intercept them like any other message.
- When a :class:`RetryPolicy` is configured, :meth:`RpcClient.call`
  wraps the exchange in a timeout/retransmit loop with capped
  exponential backoff and jitter drawn from a dedicated sim RNG stream.
  Retransmissions reuse the *same* :class:`RpcMessage` (same xid, same
  commit op ids), which is what makes server-side duplicate suppression
  possible.  Without a policy the call path is byte-for-byte the
  original fire-and-forget behaviour.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.net.link import Link
from repro.net.messages import Payload, RpcMessage
from repro.core.kernel.events import Event
from repro.core.kernel.resources import Store

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


class RpcTimeoutError(Exception):
    """A call exhausted ``RetryPolicy.max_attempts`` without a reply."""


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retransmit parameters for :class:`RpcClient`.

    The timeout for attempt *n* (0-based) is::

        min(max_timeout, base_timeout * multiplier**n) * (1 +- jitter)

    with the jitter factor drawn uniformly from ``[-jitter, +jitter]``
    on the client's dedicated RNG stream (so retry schedules are
    deterministic per seed and independent of all other model RNG).
    """

    #: First-attempt timeout in seconds.
    base_timeout: float = 0.05
    #: Backoff ceiling in seconds.
    max_timeout: float = 1.0
    #: Exponential backoff multiplier per failed attempt.
    multiplier: float = 2.0
    #: Uniform jitter fraction applied to each timeout (0 disables).
    jitter: float = 0.2
    #: Give up (raise :class:`RpcTimeoutError`) after this many attempts;
    #: ``None`` retries forever -- the right model for a client that must
    #: eventually reach a restarting MDS.
    max_attempts: _t.Optional[int] = None

    def timeout_for(self, attempt: int, rng: _t.Optional[_t.Any]) -> float:
        timeout = min(
            self.max_timeout, self.base_timeout * self.multiplier**attempt
        )
        if self.jitter > 0 and rng is not None:
            timeout *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return timeout


class RpcServerPort:
    """The server side: an inbox of delivered requests.

    The MDS daemon threads loop on :meth:`next_request` and answer with
    :meth:`reply`.  While ``down`` (server crashed), arriving requests
    are dropped on the floor exactly like messages lost on the wire --
    the sender's retry machinery is what recovers them.
    """

    def __init__(self, env: "Effects") -> None:
        self.env = env
        self.inbox: Store = Store(env)
        self.requests_received = 0
        self.replies_sent = 0
        #: Server crashed: drop arriving requests instead of queueing.
        self.down = False
        self.dropped_while_down = 0
        #: Shard-partition windows ``[(start, end), ...]``: while the
        #: clock is inside one, the port is unreachable -- arriving
        #: requests and outgoing replies are dropped as if this server's
        #: network segment were cut (``repro.faults`` shard_partition).
        self.partition_windows: _t.List[_t.Tuple[float, float]] = []
        self.partition_drops = 0
        #: Client transports by client id; replies route through these so
        #: downlink faults can intercept them (see :meth:`reply`).
        self.transports: _t.Dict[int, "RpcTransport"] = {}

    def register(self, client_id: int, transport: "RpcTransport") -> None:
        """Attach the reply path for ``client_id``."""
        self.transports[client_id] = transport

    def next_request(self):
        """Event yielding the next queued :class:`RpcMessage`."""
        return self.inbox.get()

    @property
    def queue_length(self) -> int:
        return len(self.inbox)

    def partitioned(self) -> bool:
        """True while the clock sits inside a partition window."""
        now = self.env.now
        for start, end in self.partition_windows:
            if start <= now < end:
                return True
        return False

    def deliver(self, message: RpcMessage) -> None:
        """Called by the transport when a request arrives off the wire."""
        if self.down:
            self.dropped_while_down += 1
            return
        if self.partition_windows and self.partitioned():
            self.partition_drops += 1
            return
        self.requests_received += 1
        message.arrive_time = self.env.now
        self.inbox.put(message)

    def fail(self) -> int:
        """Crash: lose all queued requests and abandon parked consumers.

        Returns the number of in-inbox requests lost.  Waiting gets are
        cancelled because the daemon processes parked on them are being
        interrupted; leaving them behind would let a post-restart request
        complete an orphaned get nobody consumes.
        """
        self.down = True
        lost = len(self.inbox.drain())
        self.inbox.cancel_gets()
        return lost

    def resume(self) -> None:
        """Restart: accept requests again."""
        self.down = False

    def reply(
        self,
        message: RpcMessage,
        result: _t.Any,
        downlink: _t.Optional[Link] = None,
    ) -> None:
        """Send the reply for ``message`` back to its sender.

        Routes through the client's registered transport so downlink
        faults (loss/delay) apply to replies too.  ``downlink`` is the
        legacy direct path, kept for hand-assembled test servers that
        never register a transport.
        """
        message.result = result
        if self.partition_windows and self.partitioned():
            # Outbound direction of a shard partition: the reply is
            # produced but never reaches the wire.  The client's retry
            # machinery recovers it after the window closes.
            self.partition_drops += 1
            return
        self.replies_sent += 1
        transport = self.transports.get(message.client_id)
        if transport is not None:
            transport.send_reply(message)
            return
        if downlink is None:
            raise ValueError(
                f"no transport registered for client {message.client_id} "
                "and no fallback downlink given"
            )
        delivery = downlink.send(message.reply_size())
        delivery.callbacks.append(
            lambda _ev, msg=message: _deliver_reply(msg)
        )


def _deliver_reply(message: RpcMessage) -> None:
    """Complete ``message``'s reply event, ignoring duplicate replies.

    Retransmitted requests can produce several replies for one xid (the
    server answers each copy it sees); only the first to arrive wins.
    """
    if not message.reply_event.triggered:
        message.reply_event.succeed(message.result)


class RpcTransport:
    """A client's two-way connection to a server port."""

    def __init__(
        self,
        env: "Effects",
        uplink: Link,
        downlink: Link,
        port: RpcServerPort,
    ) -> None:
        self.env = env
        self.uplink = uplink
        self.downlink = downlink
        self.port = port

    def register_client(self, client_id: int) -> None:
        """Attach this client's reply path on the server port.

        A routing transport (``repro.mds.sharding``) overrides this to
        register with every shard's port; the stub calls it so it never
        needs to know how many servers exist.
        """
        self.port.register(client_id, self)

    def send_request(self, message: RpcMessage) -> None:
        delivery = self.uplink.send(message.request_size())
        delivery.callbacks.append(
            lambda _ev, msg=message: self.port.deliver(msg)
        )

    def send_reply(self, message: RpcMessage) -> None:
        delivery = self.downlink.send(message.reply_size())
        delivery.callbacks.append(
            lambda _ev, msg=message: _deliver_reply(msg)
        )


class RpcClient:
    """Client-side stub issuing calls over a transport.

    ``call`` returns an event whose value is whatever the server passed
    to :meth:`RpcServerPort.reply`: the raw reply event when no retry
    policy is set, or a process wrapping the timeout/retransmit loop
    when one is (a :class:`~repro.core.kernel.process.Process` is itself an
    event, so callers are oblivious).
    """

    def __init__(
        self,
        env: "Effects",
        client_id: int,
        transport: RpcTransport,
        obs: _t.Optional[_t.Any] = None,
        retry: _t.Optional[RetryPolicy] = None,
        retry_rng: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.transport = transport
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self.retry = retry
        self.retry_rng = retry_rng
        self.calls_sent = 0
        self.ops_sent = 0
        #: Retransmissions issued / timeouts observed over the run.
        self.retries = 0
        self.timeouts = 0
        #: Timeouts since the last successful reply -- the client's
        #: degradation logic watches this to detect an unreachable MDS.
        self.consecutive_timeouts = 0
        #: Node died: in-flight retry loops park forever (a dead node
        #: sends nothing), and new calls never complete.
        self.stopped = False
        self._next_xid = 1
        self._next_op_id = 1
        transport.register_client(client_id)

    def next_op_id(self) -> int:
        """Allocate a client-unique commit-op id (duplicate suppression)."""
        op_id = self._next_op_id
        self._next_op_id += 1
        return op_id

    def stop(self) -> None:
        """Silence this stub permanently (single-node death)."""
        self.stopped = True

    def call(
        self,
        kind: str,
        payload: Payload,
        data_bytes: int = 0,
        reply_data_bytes: int = 0,
        trace_ids: _t.Tuple[int, ...] = (),
    ) -> Event:
        message = RpcMessage(
            kind=kind,
            payload=payload,
            client_id=self.client_id,
            reply_event=Event(self.env),
            send_time=self.env.now,
            data_bytes=data_bytes,
            reply_data_bytes=reply_data_bytes,
            xid=self._next_xid,
        )
        self._next_xid += 1
        self.calls_sent += 1
        self.ops_sent += message.op_count()
        if self.obs is not None:
            # Span covering uplink + server queue/service + downlink;
            # closed by a reply-event callback (recording only, so the
            # extra callback cannot perturb event ordering).
            span = self.obs.tracer.begin(
                f"rpc:{kind}",
                "rpc",
                node=f"client-{self.client_id}",
                actor="rpc",
                update_ids=tuple(trace_ids),
                ops=message.op_count(),
                request_bytes=message.request_size(),
            )
            message.trace_ids = tuple(trace_ids)
            message.trace_span_id = span.span_id
            tracer = self.obs.tracer
            message.reply_event.callbacks.append(
                lambda _ev, s=span: tracer.end(s)
            )
            self.obs.registry.counter(f"rpc.calls.{kind}").inc()
        if self.retry is None:
            self.transport.send_request(message)
            return message.reply_event
        return self.env.process(
            self._call_with_retry(message),
            name=f"rpc-retry-c{self.client_id}-x{message.xid}",
        )

    def _call_with_retry(self, message: RpcMessage):
        """Send, arm a timeout, retransmit on expiry with backoff."""
        env = self.env
        policy = self.retry
        assert policy is not None
        attempt = 0
        while True:
            if self.stopped:
                # Dead node: never transmits again, never returns.
                yield Event(env)
            self.transport.send_request(message)
            timer = env.timeout(policy.timeout_for(attempt, self.retry_rng))
            yield env.any_of([message.reply_event, timer])
            if message.reply_event.triggered:
                # The reply won the race: cancel the losing timer
                # explicitly.  The calendar entry holds a reference to
                # the timeout, so the condition's orphan-refcount sweep
                # can never reclaim it -- without the cancel every
                # successful call left a live timer on the calendar
                # until its deadline (unbounded under retry churn, and
                # a leaked real timer on the asyncio substrate).
                timer.cancel()
                self.consecutive_timeouts = 0
                return message.reply_event.value
            attempt += 1
            self.timeouts += 1
            self.consecutive_timeouts += 1
            if self.obs is not None:
                self.obs.tracer.instant(
                    "rpc_timeout",
                    "fault",
                    node=f"client-{self.client_id}",
                    actor="rpc",
                    update_ids=message.trace_ids,
                    kind=message.kind,
                    xid=message.xid,
                    attempt=attempt,
                )
                self.obs.registry.counter("rpc.timeouts").inc()
                self.obs.registry.counter("rpc.retries").inc()
            if (
                policy.max_attempts is not None
                and attempt >= policy.max_attempts
            ):
                raise RpcTimeoutError(
                    f"{message.kind} xid={message.xid} from client "
                    f"{self.client_id}: no reply after {attempt} attempts"
                )
            self.retries += 1
