"""Analytic FIFO network link.

A message of ``size`` bytes sent at time *t* on a link with bandwidth *B*
and propagation delay *d* is delivered at::

    max(t, link_busy_until) + size/B + d

with ``link_busy_until`` advanced to the end of serialisation.  This is
the standard store-and-forward FIFO model; the queueing term is what the
paper calls network congestion ("the cluster network becomes congested"),
and it is the quantity adaptive RPC compounding reduces by sending fewer,
larger messages.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.kernel.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


@dataclass
class LinkStats:
    """Aggregate traffic counters for one link direction."""

    messages: int = 0
    bytes: int = 0
    total_queue_delay: float = 0.0
    max_queue_delay: float = 0.0

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_delay / self.messages if self.messages else 0.0


class Link:
    """One direction of a point-to-point (or shared) Ethernet segment.

    Parameters
    ----------
    env:
        Simulation environment.
    bandwidth:
        Serialisation rate in bytes/second (1 Gbps Ethernet = 125e6).
    propagation:
        One-way propagation + stack latency in seconds.
    per_message_overhead:
        Fixed wire bytes added per message (frame + IP/TCP headers).
    """

    def __init__(
        self,
        env: "Effects",
        bandwidth: float = 125e6,
        propagation: float = 60e-6,
        per_message_overhead: int = 78,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if propagation < 0:
            raise ValueError(f"propagation must be >= 0, got {propagation}")
        self.env = env
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.per_message_overhead = per_message_overhead
        self.name = name
        self._busy_until = 0.0
        self.stats = LinkStats()
        #: Optional per-message fault model (see :mod:`repro.faults`).
        #: ``None`` in fault-free runs -- the send path is then exactly
        #: the analytic model above, consuming no RNG draws, so a run
        #: without faults is event-for-event identical to the pre-fault
        #: code.  When set, the model is consulted once per message and
        #: may drop it (the delivery event then never fires) or add an
        #: extra in-flight delay (which also reorders deliveries, since
        #: each message's delivery is an independent timeout).
        self.faults: _t.Optional[_t.Any] = None

    def send(self, size: int) -> Event:
        """Transmit ``size`` payload bytes; returns the delivery event."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        now = self.env.now
        wire_bytes = size + self.per_message_overhead
        start = max(now, self._busy_until)
        queue_delay = start - now
        serialisation = wire_bytes / self.bandwidth
        self._busy_until = start + serialisation
        delivery_delay = (start - now) + serialisation + self.propagation

        self.stats.messages += 1
        self.stats.bytes += wire_bytes
        self.stats.total_queue_delay += queue_delay
        self.stats.max_queue_delay = max(
            self.stats.max_queue_delay, queue_delay
        )
        if self.faults is not None:
            dropped, extra_delay = self.faults.verdict(self)
            if dropped:
                # Lost on the wire: the bytes occupied the link (they
                # were serialised before being lost) but delivery never
                # happens -- the event stays pending forever and any
                # retransmission is the sender's (RPC-layer) job.
                return Event(self.env)
            delivery_delay += extra_delay
        return self.env.timeout(delivery_delay)

    @property
    def backlog(self) -> float:
        """Seconds of serialisation work currently queued."""
        return max(0.0, self._busy_until - self.env.now)
