"""Trace and metric exporters: JSONL, Chrome ``trace_event``, ASCII.

Three consumers, three formats:

- **JSONL** -- one JSON object per line, ``{"type": "span" | "instant",
  ...}``; trivially greppable and machine-readable
  (:func:`write_jsonl` / :func:`read_jsonl` round-trip).
- **Chrome trace_event JSON** -- loadable in Perfetto or
  ``chrome://tracing``; virtual-time seconds are exported as
  microseconds (the format's native unit), node names become processes
  and actor names become threads via metadata events.
- **Plain text** -- a metric table plus an ASCII span-density plot
  reusing :mod:`repro.analysis.asciiplot`, for terminal eyeballing.
"""

from __future__ import annotations

import json
import typing as _t

from repro.analysis.asciiplot import scatter
from repro.analysis.report import Table
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Span, TraceEvent, Tracer, complete_chains

# -- JSONL ------------------------------------------------------------------


def span_to_dict(span: Span) -> _t.Dict[str, _t.Any]:
    return {
        "type": "span",
        "span_id": span.span_id,
        "name": span.name,
        "cat": span.cat,
        "start": span.start,
        "end": span.end,
        "node": span.node,
        "actor": span.actor,
        "parent_id": span.parent_id,
        "update_ids": list(span.update_ids),
        "args": span.args,
    }


def event_to_dict(event: TraceEvent) -> _t.Dict[str, _t.Any]:
    return {
        "type": "instant",
        "name": event.name,
        "cat": event.cat,
        "time": event.time,
        "node": event.node,
        "actor": event.actor,
        "update_ids": list(event.update_ids),
        "args": event.args,
    }


def to_jsonl_records(tracer: Tracer) -> _t.List[_t.Dict[str, _t.Any]]:
    """Every span and instant as JSON-ready dicts, in recording order."""
    records = [span_to_dict(span) for span in tracer.spans]
    records.extend(event_to_dict(event) for event in tracer.events)
    return records


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace as JSON Lines; returns the record count."""
    records = to_jsonl_records(tracer)
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
    return len(records)


def read_jsonl(path: str) -> _t.List[_t.Dict[str, _t.Any]]:
    """Parse a JSONL trace back into dicts (round-trip of write_jsonl)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- Chrome trace_event ------------------------------------------------------

#: Virtual seconds -> trace_event microseconds.
_US = 1e6


def to_chrome_trace(
    tracer: Tracer,
    extra_events: _t.Optional[_t.Sequence[_t.Dict[str, _t.Any]]] = None,
) -> _t.Dict[str, _t.Any]:
    """Build a Chrome ``trace_event`` JSON object (Perfetto-loadable).

    Nodes map to processes and actors to threads; durations use complete
    events (``ph: "X"``) and instants use ``ph: "i"``.  Update ids ride
    in ``args.update_ids`` so a span's causal chain can be followed by
    searching the id in the UI.  ``extra_events`` are appended verbatim
    -- e.g. the SLO timeline's counter tracks
    (:func:`repro.obs.slo.timeline_counter_events`).
    """
    pids: _t.Dict[str, int] = {}
    tids: _t.Dict[_t.Tuple[str, str], int] = {}
    events: _t.List[_t.Dict[str, _t.Any]] = []

    def pid_of(node: str) -> int:
        if node not in pids:
            pids[node] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[node],
                    "tid": 0,
                    "args": {"name": node or "unnamed"},
                }
            )
        return pids[node]

    def tid_of(node: str, actor: str) -> int:
        key = (node, actor)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid_of(node),
                    "tid": tids[key],
                    "args": {"name": actor or "main"},
                }
            )
        return tids[key]

    for span in tracer.spans:
        if not span.finished:
            continue
        args = dict(span.args)
        args["update_ids"] = list(span.update_ids)
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": pid_of(span.node),
                "tid": tid_of(span.node, span.actor),
                "args": args,
            }
        )
    for event in tracer.events:
        args = dict(event.args)
        args["update_ids"] = list(event.update_ids)
        events.append(
            {
                "name": event.name,
                "cat": event.cat,
                "ph": "i",
                "s": "t",
                "ts": event.time * _US,
                "pid": pid_of(event.node),
                "tid": tid_of(event.node, event.actor),
                "args": args,
            }
        )
    if extra_events:
        events.extend(extra_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "unit": "us of virtual time"},
    }


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    extra_events: _t.Optional[_t.Sequence[_t.Dict[str, _t.Any]]] = None,
) -> int:
    """Write a Chrome trace JSON file; returns the event count."""
    trace = to_chrome_trace(tracer, extra_events=extra_events)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])


def load_chrome_trace(path: str) -> _t.Dict[str, _t.Any]:
    """Load a Chrome trace JSON file back (round-trip check)."""
    with open(path) as fh:
        return json.load(fh)


# -- plain text --------------------------------------------------------------


def stats_table(registry: MetricsRegistry, title: str = "metrics") -> Table:
    """The registry snapshot as a printable table."""
    table = Table(["metric", "kind", "value"], title=title)
    for name, kind, value in registry.rows():
        table.add_row(name, kind, value)
    return table


def trace_summary(tracer: Tracer) -> str:
    """Plain-text trace overview: per-stage counts and a density plot."""
    by_name: _t.Dict[str, _t.List[Span]] = {}
    for span in tracer.finished_spans():
        by_name.setdefault(span.name, []).append(span)
    table = Table(
        ["span", "count", "total s", "mean ms"], title="trace summary"
    )
    for name in sorted(by_name):
        spans = by_name[name]
        total = sum(s.duration for s in spans)
        table.add_row(
            name,
            len(spans),
            f"{total:.4f}",
            f"{1000.0 * total / len(spans):.4f}",
        )
    instants: _t.Dict[str, int] = {}
    for event in tracer.events:
        instants[event.name] = instants.get(event.name, 0) + 1
    for name in sorted(instants):
        table.add_row(name, instants[name], "-", "-")
    lines = [table.render()]
    chains = complete_chains(tracer)
    merged = complete_chains(tracer, require_merge=True)
    lines.append(
        f"complete enqueue->dispatch chains: {len(chains)} "
        f"(with dedup merge: {len(merged)})"
    )
    dispatches = [s for s in tracer.spans_named("disk_dispatch") if s.finished]
    if dispatches:
        lines.append(
            scatter(
                [s.start for s in dispatches],
                [float(s.args.get("start", 0)) for s in dispatches],
                title="disk dispatches (address over virtual time)",
                x_label="time",
                y_label="volume address",
            )
        )
    return "\n".join(lines)
