"""Tail-latency SLOs: quantile evaluation, critical-path attribution,
and a time-windowed telemetry timeline.

The paper's argument is about latency *removed from the critical path*;
this module is where the reproduction judges that claim the way
production systems are judged -- on tails, not means (ROADMAP 4c).
Three pieces on top of the PR 1 substrate:

**SLO specs** (:class:`SloSpec`) -- a tiny declarative language,
``write:p99<=0.05,*:p999<=0.5``: per op-type (or ``*`` for all ops
pooled) bounds on a latency statistic.  Rules evaluate against the
log-bucketed histograms in :class:`repro.analysis.metrics.OpMetrics`,
so every quantile carries the documented < 1% relative-error bound.

**Critical-path attribution** (:func:`decompose_updates`) -- for every
update with a complete causal chain (:func:`~repro.obs.tracer.
complete_chains`), the end-to-end pipeline latency is decomposed into
*exclusive* per-stage time by interval subtraction, deepest stage
first: ``disk`` > ``mds_service`` > ``rpc`` > ``compound_assembly`` >
``dedup_merge`` > ``queue_wait``; whatever no stage claims is
``client_other``.  "Exclusive" means a second spent both inside the
commit RPC and on a spindle is charged to the spindle only, so the
stage columns of one update sum to its end-to-end latency exactly.
:func:`critical_path_table` then contrasts where the slowest decile
spends its time against the median cohort -- the "where do the p99 ops
go" table.

**Timeline** (:class:`Timeline`) -- fixed-width virtual-time windows
(:attr:`OpMetrics.window`) of throughput, latency quantiles, commit
queue depth, dedup merge ratio, and per-stage time, each annotated
*fault-active* from the injector's ``cat="fault"`` trace events (the
tracked-nemesis idea, ROADMAP 4b).  A point fault marks its own
window; a fault carrying ``until`` in its args (partitions, MDS
downtime) marks the whole range.  SLO evaluation can then *excuse*
fault-active windows: the excused value re-aggregates only the clean
windows' histograms (bucket merges are associative), separating "the
protocol is slow" from "the nemesis was biting".

Everything here is a *pure read* of already-recorded state: building
timelines or evaluating SLOs schedules no events and consumes no RNG,
so the zero-perturbation contract of :mod:`repro.obs` holds.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass, field

from repro.analysis.report import Table
from repro.obs.registry import Histogram
from repro.obs.tracer import Tracer, complete_chains

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.metrics import OpMetrics

__all__ = [
    "STAGES",
    "SloRule",
    "SloResult",
    "SloSpec",
    "Timeline",
    "TimelineWindow",
    "UpdateBreakdown",
    "critical_path_table",
    "decompose_updates",
    "excused_histogram",
    "slo_table",
    "timeline_counter_events",
]


# -- exclusive-stage decomposition -------------------------------------------

#: Attribution priority, deepest stage first.  A time slice covered by
#: several stages is charged to the deepest; ``client_other`` is the
#: remainder no stage claims (writeback, local queueing, app think).
STAGE_PRIORITY: _t.Tuple[str, ...] = (
    "disk",
    "mds_service",
    "rpc",
    "compound_assembly",
    "dedup_merge",
    "queue_wait",
)

#: All stage columns of a breakdown, in report order.
STAGES: _t.Tuple[str, ...] = STAGE_PRIORITY + ("client_other",)

_Interval = _t.Tuple[float, float]


def _union(intervals: _t.List[_Interval]) -> _t.List[_Interval]:
    """Coalesce intervals into a sorted, disjoint union."""
    out: _t.List[_Interval] = []
    for lo, hi in sorted(i for i in intervals if i[1] > i[0]):
        if out and lo <= out[-1][1]:
            if hi > out[-1][1]:
                out[-1] = (out[-1][0], hi)
        else:
            out.append((lo, hi))
    return out


def _subtract(
    intervals: _t.List[_Interval], cover: _t.List[_Interval]
) -> _t.List[_Interval]:
    """``intervals`` minus the (disjoint, sorted) ``cover`` union."""
    out: _t.List[_Interval] = []
    for lo, hi in _union(intervals):
        cursor = lo
        for clo, chi in cover:
            if chi <= cursor:
                continue
            if clo >= hi:
                break
            if clo > cursor:
                out.append((cursor, clo))
            cursor = max(cursor, chi)
            if cursor >= hi:
                break
        if cursor < hi:
            out.append((cursor, hi))
    return out


def _length(intervals: _t.List[_Interval]) -> float:
    return sum(hi - lo for lo, hi in intervals)


@dataclass
class UpdateBreakdown:
    """One update's end-to-end latency split into exclusive stage time."""

    update_id: int
    start: float
    end: float
    #: End-to-end pipeline latency (write issued -> final disk dispatch).
    total: float
    #: Exclusive seconds per stage; keys are :data:`STAGES`, values sum
    #: to ``total`` (within float rounding).
    stages: _t.Dict[str, float] = field(default_factory=dict)


def decompose_updates(tracer: Tracer) -> _t.List[UpdateBreakdown]:
    """Critical-path attribution over every complete causal chain.

    Only updates whose enqueue -> dispatch chain completed are
    decomposed (an in-flight update has no end-to-end latency yet).
    Returns breakdowns in update-id order.
    """
    by_uid: _t.Dict[int, _t.Dict[str, _t.List[_Interval]]] = {}
    for span in tracer.spans:
        if not span.finished:
            continue
        for uid in span.update_ids:
            by_uid.setdefault(uid, {}).setdefault(span.name, []).append(
                (span.start, span.end)
            )
    merge_at: _t.Dict[int, float] = {}
    for event in tracer.events_named("commit_merge"):
        uid = event.args.get("merged_update")
        if uid is not None and uid not in merge_at:
            merge_at[uid] = event.time
    checkout_at: _t.Dict[int, float] = {}
    for event in tracer.events_named("commit_checkout"):
        for uid in event.update_ids:
            if uid not in checkout_at:
                checkout_at[uid] = event.time

    breakdowns: _t.List[UpdateBreakdown] = []
    for uid in complete_chains(tracer):
        spans = by_uid.get(uid)
        if not spans:
            continue
        t0 = min(lo for ivs in spans.values() for lo, _ in ivs)
        t1 = max(hi for ivs in spans.values() for _, hi in ivs)
        if t1 <= t0:
            continue

        raw: _t.Dict[str, _t.List[_Interval]] = {
            "disk": spans.get("disk_dispatch", []),
            "mds_service": spans.get("mds_handle", []),
            "rpc": spans.get("rpc:commit", []),
        }
        # Compound assembly: the checked-out record sits with the commit
        # daemon between queue checkout and the commit RPC going out.
        rpc_starts = sorted(lo for lo, _ in raw["rpc"])
        if uid in checkout_at and rpc_starts:
            co = checkout_at[uid]
            send = next((s for s in rpc_starts if s >= co), None)
            if send is not None and send > co:
                raw["compound_assembly"] = [(co, send)]
        # Dedup merge: a merged update rides the resident record from
        # the merge instant to the shared queue span's end.
        queue = spans.get("commit_queued", [])
        if uid in merge_at and queue:
            queue_end = max(hi for _, hi in queue)
            if queue_end > merge_at[uid]:
                raw["dedup_merge"] = [(merge_at[uid], queue_end)]
        raw["queue_wait"] = queue

        claimed: _t.List[_Interval] = []
        stage_time: _t.Dict[str, float] = {}
        for stage in STAGE_PRIORITY:
            intervals = _union(raw.get(stage, []))
            stage_time[stage] = _length(_subtract(intervals, claimed))
            claimed = _union(claimed + intervals)
        stage_time["client_other"] = (t1 - t0) - _length(claimed)
        breakdowns.append(
            UpdateBreakdown(
                update_id=uid,
                start=t0,
                end=t1,
                total=t1 - t0,
                stages=stage_time,
            )
        )
    return breakdowns


def critical_path_table(
    breakdowns: _t.Sequence[UpdateBreakdown],
    title: str = "critical path: slowest decile vs median cohort",
) -> Table:
    """Mean exclusive stage time, median cohort vs the slowest decile.

    The median cohort is the middle quintile by end-to-end latency; the
    tail cohort is the slowest decile (ceil(n/10), at least one).  The
    ``share`` column is each stage's fraction of the tail cohort's
    end-to-end time -- the "where do the p99 ops go" answer.
    """
    table = Table(
        ["stage", "median ms", "p90+ ms", "tail share"], title=title
    )
    if not breakdowns:
        return table
    ordered = sorted(breakdowns, key=lambda b: b.total)
    n = len(ordered)
    mid_lo, mid_hi = (2 * n) // 5, max((3 * n) // 5, (2 * n) // 5 + 1)
    median_cohort = ordered[mid_lo:mid_hi]
    tail_cohort = ordered[n - max(1, math.ceil(n / 10)):]

    def mean_stage(cohort: _t.Sequence[UpdateBreakdown], stage: str) -> float:
        return sum(b.stages.get(stage, 0.0) for b in cohort) / len(cohort)

    tail_total = sum(b.total for b in tail_cohort) / len(tail_cohort)
    for stage in STAGES:
        tail_mean = mean_stage(tail_cohort, stage)
        table.add_row(
            stage,
            f"{1000.0 * mean_stage(median_cohort, stage):.4f}",
            f"{1000.0 * tail_mean:.4f}",
            f"{tail_mean / tail_total:.1%}" if tail_total > 0 else "-",
        )
    table.add_row(
        "total",
        f"{1000.0 * sum(b.total for b in median_cohort) / len(median_cohort):.4f}",
        f"{1000.0 * tail_total:.4f}",
        "100.0%",
    )
    return table


# -- the windowed timeline ---------------------------------------------------


@dataclass
class TimelineWindow:
    """One fixed-width virtual-time window of telemetry."""

    index: int
    start: float
    end: float
    ops: int = 0
    throughput: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    p999: float = 0.0
    #: Peak number of simultaneously-open commit-queue records.
    queue_depth: int = 0
    enqueues: int = 0
    merges: int = 0
    fault_active: bool = False
    #: Names of the fault events live in this window.
    faults: _t.Tuple[str, ...] = ()
    #: Exclusive stage seconds of the updates *completing* here.
    stage_seconds: _t.Dict[str, float] = field(default_factory=dict)

    @property
    def merge_ratio(self) -> float:
        inserts = self.enqueues + self.merges
        return self.merges / inserts if inserts else 0.0


class Timeline:
    """Windowed telemetry assembled from metrics + trace, post-run."""

    def __init__(self, window: float, windows: _t.List[TimelineWindow]):
        self.window = window
        self.windows = windows

    @property
    def fault_window_indexes(self) -> _t.FrozenSet[int]:
        return frozenset(
            w.index for w in self.windows if w.fault_active
        )

    @classmethod
    def build(
        cls,
        metrics: "OpMetrics",
        tracer: _t.Optional[Tracer] = None,
        breakdowns: _t.Optional[_t.Sequence[UpdateBreakdown]] = None,
    ) -> "Timeline":
        width = metrics.window
        whists = dict(metrics.window_histograms())

        # The fault registry is the shared tracked-nemesis bookkeeping
        # (repro.faults.tracking): rebuilt from the trace here, and the
        # same structure the soak harness maintains live.
        from repro.faults.tracking import FaultTracker

        tracker = (
            FaultTracker.from_tracer(tracer)
            if tracer is not None
            else FaultTracker()
        )
        queue_edges: _t.List[_t.Tuple[float, int]] = []
        merges: _t.Dict[int, int] = {}
        enqueues: _t.Dict[int, int] = {}
        if tracer is not None:
            for event in tracer.events:
                if event.name == "commit_merge":
                    merges[int(event.time / width)] = (
                        merges.get(int(event.time / width), 0) + 1
                    )
            for span in tracer.spans:
                if span.name != "commit_queued":
                    continue
                wi = int(span.start / width)
                enqueues[wi] = enqueues.get(wi, 0) + 1
                queue_edges.append((span.start, 1))
                queue_edges.append(
                    (span.end if span.end is not None else math.inf, -1)
                )
            queue_edges.sort()

        stage_by_window: _t.Dict[int, _t.Dict[str, float]] = {}
        for b in breakdowns or ():
            acc = stage_by_window.setdefault(int(b.end / width), {})
            for stage, secs in b.stages.items():
                acc[stage] = acc.get(stage, 0.0) + secs

        indexes: _t.Set[int] = set(whists)
        indexes.update(merges)
        indexes.update(enqueues)
        indexes.update(stage_by_window)
        indexes.update(int(r.start / width) for r in tracker.records)
        if not indexes:
            return cls(width, [])
        lo, hi = min(indexes), max(indexes)
        # A ranged fault (partition, MDS downtime) extends the fault
        # annotation but never the timeline past the last data window.
        fault_points = tracker.window_annotations(width, cap_index=hi)

        windows: _t.List[TimelineWindow] = []
        edge_i = 0
        depth = 0
        for index in range(lo, hi + 1):
            ws, we = index * width, (index + 1) * width
            # Drain queue edges before this window (depth carries over).
            while edge_i < len(queue_edges) and queue_edges[edge_i][0] < ws:
                depth += queue_edges[edge_i][1]
                edge_i += 1
            peak = depth
            while edge_i < len(queue_edges) and queue_edges[edge_i][0] < we:
                depth += queue_edges[edge_i][1]
                peak = max(peak, depth)
                edge_i += 1
            pooled = Histogram("window")
            for hist in whists.get(index, {}).values():
                pooled.merge_from(hist)
            faults = tuple(sorted(fault_points.get(index, ())))
            windows.append(
                TimelineWindow(
                    index=index,
                    start=ws,
                    end=we,
                    ops=pooled.count,
                    throughput=pooled.count / width,
                    p50=pooled.quantile(0.50),
                    p99=pooled.quantile(0.99),
                    p999=pooled.quantile(0.999),
                    queue_depth=peak,
                    enqueues=enqueues.get(index, 0),
                    merges=merges.get(index, 0),
                    fault_active=bool(faults),
                    faults=faults,
                    stage_seconds=stage_by_window.get(index, {}),
                )
            )
        return cls(width, windows)

    def table(self, title: str = "timeline") -> Table:
        table = Table(
            [
                "t", "ops", "ops/s", "p50 ms", "p99 ms", "p999 ms",
                "qdepth", "merge%", "faults",
            ],
            title=f"{title} ({self.window:g}s windows)",
        )
        for w in self.windows:
            table.add_row(
                f"{w.start:.2f}",
                w.ops,
                f"{w.throughput:.0f}",
                f"{1000.0 * w.p50:.3f}",
                f"{1000.0 * w.p99:.3f}",
                f"{1000.0 * w.p999:.3f}",
                w.queue_depth,
                f"{100.0 * w.merge_ratio:.0f}",
                ",".join(w.faults) if w.faults else "-",
            )
        return table

    def as_dicts(self) -> _t.List[_t.Dict[str, _t.Any]]:
        return [
            {
                "index": w.index,
                "start": w.start,
                "end": w.end,
                "ops": w.ops,
                "throughput": w.throughput,
                "p50": w.p50,
                "p99": w.p99,
                "p999": w.p999,
                "queue_depth": w.queue_depth,
                "merge_ratio": w.merge_ratio,
                "fault_active": w.fault_active,
                "faults": list(w.faults),
                "stage_seconds": dict(w.stage_seconds),
            }
            for w in self.windows
        ]


def timeline_counter_events(
    timeline: Timeline, pid: int = 9999
) -> _t.List[_t.Dict[str, _t.Any]]:
    """Chrome ``ph: "C"`` counter-track events for a Perfetto trace.

    Pass the result as ``extra_events`` to
    :func:`repro.obs.export.to_chrome_trace` /
    :func:`~repro.obs.export.write_chrome_trace`; Perfetto renders each
    counter name as a track under the ``slo-timeline`` process.
    """
    events: _t.List[_t.Dict[str, _t.Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "slo-timeline"},
        }
    ]
    us = 1e6
    for w in timeline.windows:
        ts = w.start * us

        def counter(name: str, series: _t.Dict[str, float]) -> None:
            events.append(
                {
                    "name": name,
                    "cat": "slo",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": series,
                }
            )

        counter("slo.throughput", {"ops_per_s": w.throughput})
        counter(
            "slo.latency_ms",
            {
                "p50": 1000.0 * w.p50,
                "p99": 1000.0 * w.p99,
                "p999": 1000.0 * w.p999,
            },
        )
        counter("slo.queue_depth", {"records": w.queue_depth})
        counter("slo.merge_ratio", {"ratio": w.merge_ratio})
        counter("slo.fault_active", {"active": 1 if w.fault_active else 0})
        if w.stage_seconds:
            counter(
                "slo.stage_ms",
                {
                    stage: 1000.0 * w.stage_seconds.get(stage, 0.0)
                    for stage in STAGES
                },
            )
    return events


# -- SLO specs and evaluation ------------------------------------------------

#: Statistics an SLO rule may bound, name -> reader over a histogram.
SLO_METRICS: _t.Dict[str, _t.Callable[[Histogram], float]] = {
    "p50": lambda h: h.quantile(0.50),
    "p90": lambda h: h.quantile(0.90),
    "p95": lambda h: h.quantile(0.95),
    "p99": lambda h: h.quantile(0.99),
    "p999": lambda h: h.quantile(0.999),
    "mean": lambda h: h.mean,
    "max": lambda h: float(h.max) if h.max is not None else 0.0,
}


@dataclass(frozen=True)
class SloRule:
    """One bound: ``op:metric<=threshold`` (op ``*`` pools all types)."""

    op: str
    metric: str
    threshold: float

    def describe(self) -> str:
        return f"{self.op}:{self.metric}<={self.threshold:g}"


@dataclass(frozen=True)
class SloResult:
    """One rule's verdict against one run."""

    rule: SloRule
    #: The statistic over every window.
    value: float
    #: The statistic over fault-free windows only.
    excused_value: float
    count: int
    excused_count: int
    #: Judged on the excused value: a system is not in breach for
    #: windows where the nemesis was biting.
    passed: bool

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "rule": self.rule.describe(),
            "op": self.rule.op,
            "metric": self.rule.metric,
            "threshold": self.rule.threshold,
            "value": self.value,
            "excused_value": self.excused_value,
            "count": self.count,
            "excused_count": self.excused_count,
            "passed": self.passed,
        }


class SloSpec:
    """A parsed set of SLO rules.

    Grammar: comma-separated ``[op:]metric<=seconds``; ``op`` defaults
    to ``*`` (all op types pooled).  Example::

        write:p99<=0.05,write:p999<=0.2,*:mean<=0.01
    """

    def __init__(self, rules: _t.Sequence[SloRule]) -> None:
        self.rules = tuple(rules)

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        rules: _t.List[SloRule] = []
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "<=" not in clause:
                raise ValueError(
                    f"bad SLO clause {clause!r}: expected "
                    "'[op:]metric<=seconds'"
                )
            lhs, _, rhs = clause.partition("<=")
            try:
                threshold = float(rhs)
            except ValueError:
                raise ValueError(
                    f"bad SLO threshold {rhs!r} in {clause!r}"
                ) from None
            if threshold < 0:
                raise ValueError(f"negative SLO threshold in {clause!r}")
            op, sep, metric = lhs.rpartition(":")
            if not sep:
                op = "*"
            metric = metric.strip()
            if metric not in SLO_METRICS:
                raise ValueError(
                    f"unknown SLO metric {metric!r} in {clause!r}; "
                    f"choose from {sorted(SLO_METRICS)}"
                )
            rules.append(SloRule(op=op.strip() or "*", metric=metric,
                                 threshold=threshold))
        if not rules:
            raise ValueError(f"empty SLO spec {text!r}")
        return cls(rules)

    def describe(self) -> str:
        return ",".join(rule.describe() for rule in self.rules)

    def evaluate(
        self,
        metrics: "OpMetrics",
        exclude_windows: _t.AbstractSet[int] = frozenset(),
    ) -> _t.List[SloResult]:
        """Judge every rule; ``exclude_windows`` are fault-excused."""
        results: _t.List[SloResult] = []
        for rule in self.rules:
            op = None if rule.op == "*" else rule.op
            full = metrics.histogram(op)
            excused = (
                excused_histogram(metrics, op, exclude_windows)
                if exclude_windows
                else full
            )
            reader = SLO_METRICS[rule.metric]
            value = reader(full) if full.count else 0.0
            excused_value = reader(excused) if excused.count else 0.0
            results.append(
                SloResult(
                    rule=rule,
                    value=value,
                    excused_value=excused_value,
                    count=full.count,
                    excused_count=excused.count,
                    # No observations means nothing breached the bound
                    # (the table still shows n=0 for eyeballing).
                    passed=(
                        excused.count == 0
                        or excused_value <= rule.threshold
                    ),
                )
            )
        return results


def excused_histogram(
    metrics: "OpMetrics",
    op: _t.Optional[str],
    exclude_windows: _t.AbstractSet[int],
) -> Histogram:
    """Re-aggregate an op's histogram over non-excluded windows only."""
    pooled = Histogram(op or "all")
    for index, per_op in metrics.window_histograms():
        if index in exclude_windows:
            continue
        if op is None:
            for hist in per_op.values():
                pooled.merge_from(hist)
        elif op in per_op:
            pooled.merge_from(per_op[op])
    return pooled


def slo_table(
    results: _t.Sequence[SloResult],
    title: str = "SLO",
    excused_windows: int = 0,
) -> Table:
    """Render SLO verdicts (``value`` vs ``excused`` vs threshold)."""
    suffix = (
        f" ({excused_windows} fault-active window"
        f"{'s' if excused_windows != 1 else ''} excused)"
        if excused_windows
        else ""
    )
    table = Table(
        ["rule", "n", "value", "excused", "limit", "verdict"],
        title=title + suffix,
    )
    for r in results:
        table.add_row(
            r.rule.describe(),
            r.excused_count,
            f"{r.value:.6f}",
            f"{r.excused_value:.6f}",
            f"{r.rule.threshold:g}",
            "PASS" if r.passed else "FAIL",
        )
    return table
